"""Tuple-compressed record linkage.

All three linkage attacks compare records only through their
quasi-identifier *value tuples*: the distance, agreement pattern and
rank compatibility of a pair ``(i, j)`` depend solely on the category
tuples of original record ``i`` and masked record ``j``.  With three
protected attributes, a 1000-record file typically holds just a few
hundred distinct tuples, so linkage over the ``u_o x u_m`` distinct-tuple
grid plus per-record lookups is several times cheaper than the naive
``n x n`` pair sweep — and produces *identical* results, which the test
suite asserts against the reference implementations in
:mod:`repro.linkage.dbrl` / :mod:`~repro.linkage.prl` /
:mod:`~repro.linkage.rsrl`.

The paper singles out fitness evaluation as the dominant cost of the
whole approach (its §3.2 timing paragraph and §4 "major drawback"), so
this module is the reproduction's main answer to that bottleneck; the
measures in :mod:`repro.metrics.linkage_risk` route through it.

Two layers of sharing keep repeated evaluations cheap:

* an :class:`OriginalIndex` holds everything that depends only on the
  original file and the attribute set — the distinct original tuples,
  the per-record inverse, per-tuple record counts, and the rank-position
  tables — computed once per (original, attributes) and reused by every
  candidate of a run (the GA scores thousands against one original);
* a bounded, thread-local memo keyed by the (original, masked,
  attributes) fingerprints lets the three linkage measures of one
  evaluation — and all candidates of one evaluation batch — share their
  :class:`CompressedPair` objects.  Thread-locality makes the memo safe
  under the batch evaluator's thread executor without any locking.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError
from repro.linkage.distance import rank_positions
from repro.linkage.prl import fit_fellegi_sunter


def _encode_tuples(codes: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Mixed-radix encoding of each row's category tuple into one int64."""
    n_cells = 1
    for size in sizes:
        n_cells *= int(size)
    if n_cells > 2**62:
        raise LinkageError("attribute domains too large for tuple encoding")
    flat = np.zeros(codes.shape[0], dtype=np.int64)
    for column in range(codes.shape[1]):
        flat = flat * sizes[column] + codes[:, column]
    return flat


def _decode_tuples(keys: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`_encode_tuples`: int64 keys back to code tuples."""
    out = np.empty((keys.shape[0], len(sizes)), dtype=np.int64)
    remaining = keys.copy()
    for column in range(len(sizes) - 1, -1, -1):
        out[:, column] = remaining % sizes[column]
        remaining //= sizes[column]
    return out


class OriginalIndex:
    """Original-side linkage geometry of one (original, attributes) binding.

    Everything here depends only on the original file: the distinct
    quasi-identifier tuples, each record's tuple index, how many records
    carry each tuple, and the rank-position table of every attribute.
    The GA evaluates thousands of candidates against one original, so
    computing this once per run instead of once per candidate removes a
    per-evaluation ``np.unique`` over the original plus one
    ``rank_positions`` pass per attribute per candidate.
    """

    def __init__(self, original: CategoricalDataset, attributes: Sequence[str]) -> None:
        columns = require_attributes(original, attributes)
        if not columns:
            raise LinkageError("linkage needs at least one attribute")
        self.original = original
        self.attributes = tuple(attributes)
        self.columns = tuple(columns)
        self.domains = [original.schema.domain(c) for c in columns]
        self.sizes = [d.size for d in self.domains]
        keys_original = _encode_tuples(original.codes[:, columns], self.sizes)
        unique_keys_o, self.inverse_original = np.unique(keys_original, return_inverse=True)
        self.unique_original = _decode_tuples(unique_keys_o, self.sizes)
        #: Records per distinct original tuple (PRL's pattern weighting).
        self.counts_original = np.bincount(self.inverse_original).astype(np.float64)
        #: Rank-position table per attribute, in ``columns`` order.
        self.rank_tables = [rank_positions(original, d.name) for d in self.domains]


#: Bound on cached original indexes; distinct originals per process are
#: few (one per dataset under evaluation), so this is a leak guard.
_INDEX_CAPACITY = 8
_INDEX_LOCK = threading.Lock()
_INDEX_MEMO: OrderedDict[tuple, OriginalIndex] = OrderedDict()


def get_original_index(
    original: CategoricalDataset, attributes: Sequence[str]
) -> OriginalIndex:
    """The shared, memoized :class:`OriginalIndex` for this binding."""
    key = (original.fingerprint(), tuple(attributes))
    with _INDEX_LOCK:
        index = _INDEX_MEMO.get(key)
        if index is not None:
            _INDEX_MEMO.move_to_end(key)
            return index
    index = OriginalIndex(original, attributes)
    with _INDEX_LOCK:
        _INDEX_MEMO[key] = index
        while len(_INDEX_MEMO) > _INDEX_CAPACITY:
            _INDEX_MEMO.popitem(last=False)
    return index


class CompressedPair:
    """Distinct-tuple view of an (original, masked) file pair.

    Attributes
    ----------
    unique_original / unique_masked:
        ``(u, a)`` matrices of the distinct quasi-identifier tuples.
    inverse_original / inverse_masked:
        Per-record index into the distinct-tuple matrices.
    counts_masked:
        Number of masked records carrying each distinct masked tuple.
    """

    def __init__(
        self,
        original: CategoricalDataset,
        masked: CategoricalDataset,
        attributes: Sequence[str],
        index: OriginalIndex | None = None,
    ) -> None:
        require_masked_pair(original, masked)
        if index is None:
            index = OriginalIndex(original, attributes)
        self.index = index
        self.original = original
        self.masked = masked
        self.attributes = tuple(attributes)
        self.columns = index.columns
        self.domains = index.domains
        sizes = index.sizes

        self.inverse_original = index.inverse_original
        self.unique_original = index.unique_original

        keys_masked = _encode_tuples(masked.codes[:, list(self.columns)], sizes)
        unique_keys_m, self.inverse_masked, counts = np.unique(
            keys_masked, return_inverse=True, return_counts=True
        )
        self.counts_masked = counts.astype(np.float64)
        self.unique_masked = _decode_tuples(unique_keys_m, sizes)

    @property
    def n_records(self) -> int:
        return self.original.n_records

    # -- grids over distinct tuples --------------------------------------

    def distance_grid(self) -> np.ndarray:
        """Mean categorical distance between distinct tuple pairs, (u_o, u_m)."""
        total = np.zeros((self.unique_original.shape[0], self.unique_masked.shape[0]))
        for slot, domain in enumerate(self.domains):
            x = self.unique_original[:, slot][:, None]
            y = self.unique_masked[:, slot][None, :]
            if domain.ordinal and domain.size > 1:
                total += np.abs(x - y) / (domain.size - 1)
            else:
                total += (x != y).astype(np.float64)
        total /= len(self.domains)
        return total

    def pattern_grid(self) -> np.ndarray:
        """Agreement-pattern index between distinct tuple pairs, (u_o, u_m).

        Cached on the pair because the PRL path needs it twice
        (aggregating the pattern counts, then scoring under the fitted
        weights); the second consumer releases it — see
        :meth:`probabilistic_linkage_from_weights` — so pairs parked in
        the memo don't pin an O(u_o * u_m) grid each.
        """
        cached = getattr(self, "_pattern_grid", None)
        if cached is not None:
            return cached
        patterns = np.zeros(
            (self.unique_original.shape[0], self.unique_masked.shape[0]), dtype=np.int64
        )
        for bit in range(len(self.domains)):
            agree = self.unique_original[:, bit][:, None] == self.unique_masked[:, bit][None, :]
            patterns |= agree.astype(np.int64) << bit
        self._pattern_grid = patterns
        return patterns

    def rank_score_grid(self, window: float) -> np.ndarray:
        """Rank-compatible attribute count between distinct tuple pairs."""
        if not 0 < window <= 1:
            raise LinkageError(f"window must be in (0, 1], got {window}")
        scores = np.zeros(
            (self.unique_original.shape[0], self.unique_masked.shape[0]), dtype=np.int64
        )
        for slot in range(len(self.domains)):
            positions = self.index.rank_tables[slot]
            x = positions[self.unique_original[:, slot]][:, None]
            y = positions[self.unique_masked[:, slot]][None, :]
            scores += (np.abs(x - y) <= window).astype(np.int64)
        return scores

    # -- fractional-credit linkage over a grid ----------------------------

    def fractional_correct(self, grid: np.ndarray, best_is_max: bool) -> float:
        """Expected correct links for a per-tuple score grid.

        Mirrors :func:`repro.linkage.dbrl.fractional_correct_links` on the
        compressed representation: for each original record, the tie set
        size is the number of masked *records* (not tuples) achieving the
        row optimum, and the record scores ``1/ties`` if its own masked
        tuple is in the tie set.
        """
        best = grid.max(axis=1) if best_is_max else grid.min(axis=1)
        at_best = grid == best[:, None]
        tie_counts = at_best @ self.counts_masked
        hits = at_best[self.inverse_original, self.inverse_masked]
        credits = hits / tie_counts[self.inverse_original]
        return float(credits.sum())

    # -- the three attacks -------------------------------------------------

    def distance_linkage(self) -> float:
        """DBRL re-identification percentage (identical to the n^2 path)."""
        correct = self.fractional_correct(self.distance_grid(), best_is_max=False)
        return 100.0 * correct / self.n_records

    def pattern_counts(self) -> np.ndarray:
        """Aggregated agreement-pattern counts over all record pairs."""
        patterns = self.pattern_grid()
        weights = np.outer(self.index.counts_original, self.counts_masked)
        return np.bincount(
            patterns.ravel(), weights=weights.ravel(), minlength=2 ** len(self.domains)
        )

    def probabilistic_linkage(self) -> float:
        """PRL re-identification percentage (identical to the n^2 path)."""
        model = fit_fellegi_sunter(self.pattern_counts(), len(self.domains))
        return self.probabilistic_linkage_from_weights(model.pattern_weights)

    def probabilistic_linkage_from_weights(self, pattern_weights: np.ndarray) -> float:
        """PRL percentage under an already-fitted weight table.

        The batch evaluator fits one EM over the whole candidate batch
        (see :func:`repro.linkage.prl.fit_fellegi_sunter_many`) and then
        scores each pair with its own weight row through here.  This is
        the pattern grid's last consumer in an evaluation, so the cached
        grid is released — a pair living on in the memo keeps only its
        small distinct-tuple matrices.
        """
        grid = pattern_weights[self.pattern_grid()]
        self._pattern_grid = None
        correct = self.fractional_correct(grid, best_is_max=True)
        return 100.0 * correct / self.n_records

    def rank_linkage(self, window: float = 0.1) -> float:
        """RSRL re-identification percentage (identical to the n^2 path)."""
        grid = self.rank_score_grid(window).astype(np.float64)
        correct = self.fractional_correct(grid, best_is_max=True)
        return 100.0 * correct / self.n_records


#: Per-thread pair memo bound — large enough that one evaluation batch's
#: candidates survive all three linkage measures' passes over the batch.
_PAIR_CAPACITY = 256
_PAIR_MEMO = threading.local()


def clear_pair_memo() -> None:
    """Drop this thread's pair memo (benchmark/test hook for cold timings)."""
    if getattr(_PAIR_MEMO, "pairs", None) is not None:
        _PAIR_MEMO.pairs = OrderedDict()


def get_compressed_pair(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> CompressedPair:
    """Bounded thread-local memo so measures share :class:`CompressedPair` objects.

    Within one candidate evaluation the three linkage measures hit the
    same pair; within one evaluation batch each measure's pass over the
    candidates re-hits the pairs the first measure built.  Thread-local
    storage keeps the memo coherent under the batch evaluator's thread
    executor without locking (each worker thread evaluates disjoint
    candidates, so sharing across threads would buy nothing).
    """
    memo: OrderedDict[tuple, CompressedPair] | None
    memo = getattr(_PAIR_MEMO, "pairs", None)
    if memo is None:
        memo = _PAIR_MEMO.pairs = OrderedDict()
    key = (original.fingerprint(), masked.fingerprint(), tuple(attributes))
    pair = memo.get(key)
    if pair is not None:
        memo.move_to_end(key)
        return pair
    pair = CompressedPair(
        original, masked, attributes, index=get_original_index(original, attributes)
    )
    memo[key] = pair
    while len(memo) > _PAIR_CAPACITY:
        memo.popitem(last=False)
    return pair
