"""Tuple-compressed record linkage.

All three linkage attacks compare records only through their
quasi-identifier *value tuples*: the distance, agreement pattern and
rank compatibility of a pair ``(i, j)`` depend solely on the category
tuples of original record ``i`` and masked record ``j``.  With three
protected attributes, a 1000-record file typically holds just a few
hundred distinct tuples, so linkage over the ``u_o x u_m`` distinct-tuple
grid plus per-record lookups is several times cheaper than the naive
``n x n`` pair sweep — and produces *identical* results, which the test
suite asserts against the reference implementations in
:mod:`repro.linkage.dbrl` / :mod:`~repro.linkage.prl` /
:mod:`~repro.linkage.rsrl`.

The paper singles out fitness evaluation as the dominant cost of the
whole approach (its §3.2 timing paragraph and §4 "major drawback"), so
this module is the reproduction's main answer to that bottleneck; the
measures in :mod:`repro.metrics.linkage_risk` route through it.

A one-slot memo keyed by the (original, masked, attributes) fingerprints
lets the three measures of one evaluation share a single
:class:`CompressedPair`.  The memo is deliberately tiny (the GA evaluates
one candidate at a time) and not thread-safe.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError
from repro.linkage.distance import rank_positions
from repro.linkage.prl import fit_fellegi_sunter


def _encode_tuples(codes: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Mixed-radix encoding of each row's category tuple into one int64."""
    n_cells = 1
    for size in sizes:
        n_cells *= int(size)
    if n_cells > 2**62:
        raise LinkageError("attribute domains too large for tuple encoding")
    flat = np.zeros(codes.shape[0], dtype=np.int64)
    for column in range(codes.shape[1]):
        flat = flat * sizes[column] + codes[:, column]
    return flat


class CompressedPair:
    """Distinct-tuple view of an (original, masked) file pair.

    Attributes
    ----------
    unique_original / unique_masked:
        ``(u, a)`` matrices of the distinct quasi-identifier tuples.
    inverse_original / inverse_masked:
        Per-record index into the distinct-tuple matrices.
    counts_masked:
        Number of masked records carrying each distinct masked tuple.
    """

    def __init__(
        self,
        original: CategoricalDataset,
        masked: CategoricalDataset,
        attributes: Sequence[str],
    ) -> None:
        require_masked_pair(original, masked)
        columns = require_attributes(original, attributes)
        if not columns:
            raise LinkageError("linkage needs at least one attribute")
        self.original = original
        self.masked = masked
        self.attributes = tuple(attributes)
        self.columns = tuple(columns)
        self.domains = [original.schema.domain(c) for c in columns]
        sizes = [d.size for d in self.domains]

        codes_original = original.codes[:, columns]
        codes_masked = masked.codes[:, columns]
        keys_original = _encode_tuples(codes_original, sizes)
        keys_masked = _encode_tuples(codes_masked, sizes)

        unique_keys_o, self.inverse_original = np.unique(keys_original, return_inverse=True)
        unique_keys_m, self.inverse_masked, counts = np.unique(
            keys_masked, return_inverse=True, return_counts=True
        )
        self.counts_masked = counts.astype(np.float64)
        self.unique_original = self._decode(unique_keys_o, sizes)
        self.unique_masked = self._decode(unique_keys_m, sizes)

    @staticmethod
    def _decode(keys: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
        out = np.empty((keys.shape[0], len(sizes)), dtype=np.int64)
        remaining = keys.copy()
        for column in range(len(sizes) - 1, -1, -1):
            out[:, column] = remaining % sizes[column]
            remaining //= sizes[column]
        return out

    @property
    def n_records(self) -> int:
        return self.original.n_records

    # -- grids over distinct tuples --------------------------------------

    def distance_grid(self) -> np.ndarray:
        """Mean categorical distance between distinct tuple pairs, (u_o, u_m)."""
        total = np.zeros((self.unique_original.shape[0], self.unique_masked.shape[0]))
        for slot, domain in enumerate(self.domains):
            x = self.unique_original[:, slot][:, None]
            y = self.unique_masked[:, slot][None, :]
            if domain.ordinal and domain.size > 1:
                total += np.abs(x - y) / (domain.size - 1)
            else:
                total += (x != y).astype(np.float64)
        total /= len(self.domains)
        return total

    def pattern_grid(self) -> np.ndarray:
        """Agreement-pattern index between distinct tuple pairs, (u_o, u_m)."""
        patterns = np.zeros(
            (self.unique_original.shape[0], self.unique_masked.shape[0]), dtype=np.int64
        )
        for bit in range(len(self.domains)):
            agree = self.unique_original[:, bit][:, None] == self.unique_masked[:, bit][None, :]
            patterns |= agree.astype(np.int64) << bit
        return patterns

    def rank_score_grid(self, window: float) -> np.ndarray:
        """Rank-compatible attribute count between distinct tuple pairs."""
        if not 0 < window <= 1:
            raise LinkageError(f"window must be in (0, 1], got {window}")
        scores = np.zeros(
            (self.unique_original.shape[0], self.unique_masked.shape[0]), dtype=np.int64
        )
        for slot, domain in enumerate(self.domains):
            positions = rank_positions(self.original, domain.name)
            x = positions[self.unique_original[:, slot]][:, None]
            y = positions[self.unique_masked[:, slot]][None, :]
            scores += (np.abs(x - y) <= window).astype(np.int64)
        return scores

    # -- fractional-credit linkage over a grid ----------------------------

    def fractional_correct(self, grid: np.ndarray, best_is_max: bool) -> float:
        """Expected correct links for a per-tuple score grid.

        Mirrors :func:`repro.linkage.dbrl.fractional_correct_links` on the
        compressed representation: for each original record, the tie set
        size is the number of masked *records* (not tuples) achieving the
        row optimum, and the record scores ``1/ties`` if its own masked
        tuple is in the tie set.
        """
        best = grid.max(axis=1) if best_is_max else grid.min(axis=1)
        at_best = grid == best[:, None]
        tie_counts = at_best @ self.counts_masked
        hits = at_best[self.inverse_original, self.inverse_masked]
        credits = hits / tie_counts[self.inverse_original]
        return float(credits.sum())

    # -- the three attacks -------------------------------------------------

    def distance_linkage(self) -> float:
        """DBRL re-identification percentage (identical to the n^2 path)."""
        correct = self.fractional_correct(self.distance_grid(), best_is_max=False)
        return 100.0 * correct / self.n_records

    def probabilistic_linkage(self) -> float:
        """PRL re-identification percentage (identical to the n^2 path)."""
        patterns = self.pattern_grid()
        weights = np.outer(
            np.bincount(self.inverse_original).astype(np.float64), self.counts_masked
        )
        n_attributes = len(self.domains)
        pattern_counts = np.bincount(
            patterns.ravel(), weights=weights.ravel(), minlength=2**n_attributes
        )
        model = fit_fellegi_sunter(pattern_counts, n_attributes)
        grid = model.pattern_weights[patterns]
        correct = self.fractional_correct(grid, best_is_max=True)
        return 100.0 * correct / self.n_records

    def rank_linkage(self, window: float = 0.1) -> float:
        """RSRL re-identification percentage (identical to the n^2 path)."""
        grid = self.rank_score_grid(window).astype(np.float64)
        correct = self.fractional_correct(grid, best_is_max=True)
        return 100.0 * correct / self.n_records


_MEMO: dict[str, object] = {"key": None, "pair": None}


def get_compressed_pair(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> CompressedPair:
    """One-slot memo so one evaluation's measures share a CompressedPair."""
    key = (original.fingerprint(), masked.fingerprint(), tuple(attributes))
    if _MEMO["key"] == key:
        return _MEMO["pair"]  # type: ignore[return-value]
    pair = CompressedPair(original, masked, attributes)
    _MEMO["key"] = key
    _MEMO["pair"] = pair
    return pair
