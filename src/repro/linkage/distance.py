"""Distances and rank geometry for categorical record linkage.

Two notions of per-attribute dissimilarity are used across the library:

* **categorical distance** — 0/1 for nominal attributes, normalized code
  difference ``|x - y| / (k - 1)`` for ordinal attributes;
* **rank position** — each category is placed at the midpoint of its
  block in the cumulative frequency order of the *original* file, mapped
  to ``[0, 1]``.  Rank positions drive interval disclosure and
  rank-swapping record linkage, both of which reason about how far a
  masked value moved in rank terms.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError


def attribute_distance_columns(
    original: CategoricalDataset, masked: CategoricalDataset, attributes: Sequence[str]
) -> np.ndarray:
    """Per-record, per-attribute distances, shape ``(n_records, n_attrs)``.

    Entry ``[r, a]`` is the categorical distance between the original and
    masked value of record ``r`` on attribute ``a``.
    """
    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    out = np.empty((original.n_records, len(columns)), dtype=np.float64)
    for slot, col in enumerate(columns):
        domain = original.schema.domain(col)
        x = original.column(col)
        y = masked.column(col)
        if domain.ordinal and domain.size > 1:
            out[:, slot] = np.abs(x - y) / (domain.size - 1)
        else:
            out[:, slot] = (x != y).astype(np.float64)
    return out


def attribute_distance_tensor(
    original: CategoricalDataset,
    batch: Sequence[CategoricalDataset],
    attributes: Sequence[str],
) -> np.ndarray:
    """Per-candidate, per-record, per-attribute distances, ``(B, n, a)``.

    The batch form of :func:`attribute_distance_columns`: slice ``[b]``
    equals ``attribute_distance_columns(original, batch[b], attributes)``
    exactly, but the original-side columns and domain normalizations are
    set up once per batch and each attribute is one vectorized pass over
    all candidates.
    """
    columns = require_attributes(original, attributes)
    for masked in batch:
        require_masked_pair(original, masked)
    out = np.empty((len(batch), original.n_records, len(columns)), dtype=np.float64)
    if not batch:
        return out
    for slot, col in enumerate(columns):
        domain = original.schema.domain(col)
        x = original.column(col)[None, :]
        stacked = np.stack([masked.column(col) for masked in batch])
        if domain.ordinal and domain.size > 1:
            out[:, :, slot] = np.abs(x - stacked) / (domain.size - 1)
        else:
            out[:, :, slot] = (x != stacked).astype(np.float64)
    return out


def cross_distance_matrix(
    original: CategoricalDataset, masked: CategoricalDataset, attributes: Sequence[str]
) -> np.ndarray:
    """All-pairs record distance matrix, shape ``(n_records, n_records)``.

    Entry ``[i, j]`` is the mean per-attribute categorical distance
    between original record ``i`` and masked record ``j``.
    """
    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    if not columns:
        raise LinkageError("cross_distance_matrix needs at least one attribute")
    n = original.n_records
    total = np.zeros((n, n), dtype=np.float64)
    for col in columns:
        domain = original.schema.domain(col)
        x = original.column(col)[:, None]
        y = masked.column(col)[None, :]
        if domain.ordinal and domain.size > 1:
            total += np.abs(x - y) / (domain.size - 1)
        else:
            total += (x != y).astype(np.float64)
    total /= len(columns)
    return total


def rank_positions(original: CategoricalDataset, attribute: str) -> np.ndarray:
    """Midpoint rank position in ``[0, 1]`` for every category of ``attribute``.

    Categories are ordered by code (the domain order; for ordinal domains
    this is the semantic order) and each category occupies a block of the
    cumulative frequency mass proportional to its count in the original
    file.  Zero-frequency categories collapse to the boundary point
    between their neighbours.
    """
    counts = original.value_counts(attribute).astype(np.float64)
    n = counts.sum()
    if n <= 0:
        raise LinkageError(f"attribute {attribute!r} has no records")
    cumulative = np.concatenate(([0.0], np.cumsum(counts)))
    midpoints = (cumulative[:-1] + cumulative[1:]) / 2.0
    return midpoints / n


def rank_position_columns(
    original: CategoricalDataset,
    dataset: CategoricalDataset,
    attributes: Sequence[str],
) -> np.ndarray:
    """Rank position of every cell of ``dataset``, using the original's geometry.

    Shape ``(n_records, n_attrs)``.  The original file defines the rank
    geometry (category block positions); ``dataset`` may be the original
    itself or a masked pair of it.
    """
    original.schema.require_compatible(dataset.schema)
    columns = require_attributes(original, attributes)
    out = np.empty((dataset.n_records, len(columns)), dtype=np.float64)
    for slot, col in enumerate(columns):
        positions = rank_positions(original, original.schema.domain(col).name)
        out[:, slot] = positions[dataset.column(col)]
    return out
