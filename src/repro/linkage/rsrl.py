"""Rank-swapping record linkage (Nin, Herranz & Torra, 2008).

Plain distance-based linkage underestimates the risk of rank-swapped
files: the intruder *knows* rank swapping moves a value at most ``p``
percent of ranks away, so for each masked value only the original
records whose value rank lies inside that window are plausible matches.
RSRL exploits this: a pair is *compatible* on an attribute when the rank
positions of its two values differ by at most the window, the pair's
score is the number of compatible attributes, and each original record
links to the masked record with the highest score (fractional credit on
ties, as everywhere in :mod:`repro.linkage`).

The measure takes the window as a parameter; an intruder who does not
know the exact swap parameter uses a conservative default.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError
from repro.linkage.dbrl import fractional_correct_links
from repro.linkage.distance import rank_positions


def rank_compatibility_scores(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
    window: float,
) -> np.ndarray:
    """Number of rank-compatible attributes for every pair, shape ``(n, n)``."""
    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    if not columns:
        raise LinkageError("rank compatibility needs at least one attribute")
    if not 0 < window <= 1:
        raise LinkageError(f"window must be in (0, 1], got {window}")
    n = original.n_records
    scores = np.zeros((n, n), dtype=np.int64)
    for col in columns:
        positions = rank_positions(original, original.schema.domain(col).name)
        x = positions[original.column(col)][:, None]
        y = positions[masked.column(col)][None, :]
        scores += (np.abs(x - y) <= window).astype(np.int64)
    return scores


def rank_swapping_record_linkage(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
    window: float = 0.1,
) -> float:
    """Percentage of records re-identified by rank-window linkage (0..100)."""
    scores = rank_compatibility_scores(original, masked, attributes, window)
    correct = fractional_correct_links(scores.astype(np.float64), best_is_max=True)
    return 100.0 * correct / original.n_records
