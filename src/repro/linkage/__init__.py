"""Record-linkage substrate used by the disclosure-risk measures."""

from repro.linkage.blocking import blocked_candidate_pairs, blocked_linkage_rate, blocking_recall
from repro.linkage.dbrl import distance_based_record_linkage, fractional_correct_links
from repro.linkage.distance import (
    attribute_distance_columns,
    attribute_distance_tensor,
    cross_distance_matrix,
    rank_position_columns,
    rank_positions,
)
from repro.linkage.prl import (
    BatchFellegiSunterModel,
    FellegiSunterModel,
    agreement_pattern_matrix,
    fit_fellegi_sunter,
    fit_fellegi_sunter_many,
    probabilistic_record_linkage,
)
from repro.linkage.rsrl import rank_compatibility_scores, rank_swapping_record_linkage

__all__ = [
    "attribute_distance_columns",
    "attribute_distance_tensor",
    "cross_distance_matrix",
    "rank_positions",
    "rank_position_columns",
    "distance_based_record_linkage",
    "fractional_correct_links",
    "agreement_pattern_matrix",
    "fit_fellegi_sunter",
    "fit_fellegi_sunter_many",
    "FellegiSunterModel",
    "BatchFellegiSunterModel",
    "probabilistic_record_linkage",
    "rank_compatibility_scores",
    "rank_swapping_record_linkage",
    "blocked_candidate_pairs",
    "blocking_recall",
    "blocked_linkage_rate",
]
