"""Probabilistic record linkage (Fellegi–Sunter with EM estimation).

The intruder compares every (original, masked) record pair on the
quasi-identifier attributes, producing a binary *agreement pattern*.
Under the Fellegi–Sunter model, attribute ``k`` agrees with probability
``m_k`` among true matches and ``u_k`` among non-matches; the matching
weight of a pattern is the log-likelihood ratio

    w(pattern) = sum_k  log(m_k / u_k)            if attribute k agrees
                      + log((1-m_k) / (1-u_k))    if it disagrees.

``m``, ``u`` and the match proportion are estimated by EM over the
pattern counts (the intruder does not know the true matching), then each
original record is linked to the masked record with the highest weight.
The measure is the percentage of records whose true match wins, with
fractional credit on ties as in :mod:`repro.linkage.dbrl`.

Since the weight of a pair depends only on its agreement pattern, all
computations aggregate over the ``2^a`` patterns instead of the ``n^2``
pairs, which keeps EM instant even for thousands of records.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError
from repro.linkage.dbrl import fractional_correct_links
from repro.obs.registry import get_registry

_EPS = 1e-9


def agreement_pattern_matrix(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> np.ndarray:
    """Pattern index of every record pair, shape ``(n, n)``, dtype int.

    Attribute ``k`` (in ``attributes`` order) contributes bit ``k``:
    the bit is set when the pair *agrees* on that attribute.
    """
    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    if not columns:
        raise LinkageError("agreement patterns need at least one attribute")
    if len(columns) > 20:
        raise LinkageError(f"too many attributes for pattern encoding: {len(columns)}")
    n = original.n_records
    patterns = np.zeros((n, n), dtype=np.int64)
    for bit, col in enumerate(columns):
        agree = original.column(col)[:, None] == masked.column(col)[None, :]
        patterns |= agree.astype(np.int64) << bit
    return patterns


@dataclass(frozen=True)
class FellegiSunterModel:
    """Estimated Fellegi–Sunter parameters and per-pattern weights."""

    m: np.ndarray
    u: np.ndarray
    match_proportion: float
    pattern_weights: np.ndarray

    @property
    def n_attributes(self) -> int:
        return self.m.shape[0]


def _pattern_bits(n_attributes: int) -> np.ndarray:
    """Bit matrix: ``bits[p, k]`` is 1 iff pattern ``p`` agrees on attr ``k``."""
    patterns = np.arange(2**n_attributes)
    return (patterns[:, None] >> np.arange(n_attributes)[None, :]) & 1


def _bits_dot(bits: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``out[b, p] = sum_k bits[p, k] * values[b, k]``, candidate-independent.

    Deliberately einsum, not matmul: BLAS is free to reorder the
    accumulation per call shape, so a batched matmul need not reproduce
    its own single-row result bit for bit.  einsum's default (non-BLAS)
    kernel computes each output element from its own row with a fixed
    summation order, whatever the batch size.
    """
    return np.einsum("pk,bk->bp", bits, values)


def _counts_dot_bits(counts: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """``out[b, k] = sum_p counts[b, p] * bits[p, k]``, candidate-independent."""
    return np.einsum("bp,pk->bk", counts, bits)


def _pattern_logliks(bits: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """Per-pattern log-likelihoods ``(B, P)`` under agree-probabilities ``(B, a)``."""
    return _bits_dot(bits, np.log(probabilities + _EPS)) + _bits_dot(
        1 - bits, np.log(1 - probabilities + _EPS)
    )


@dataclass(frozen=True)
class BatchFellegiSunterModel:
    """Fellegi–Sunter parameters for a whole batch of candidate files."""

    m: np.ndarray  # (B, a)
    u: np.ndarray  # (B, a)
    match_proportion: np.ndarray  # (B,)
    pattern_weights: np.ndarray  # (B, 2^a)

    def __len__(self) -> int:
        return self.m.shape[0]

    def single(self, index: int) -> FellegiSunterModel:
        """The scalar view of one batch member."""
        return FellegiSunterModel(
            m=self.m[index],
            u=self.u[index],
            match_proportion=float(self.match_proportion[index]),
            pattern_weights=self.pattern_weights[index],
        )


def fit_fellegi_sunter_many(
    pattern_counts: np.ndarray,
    n_attributes: int,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
) -> BatchFellegiSunterModel:
    """EM fit over a ``(B, 2^a)`` batch of aggregated pattern counts.

    This is the primary implementation — :func:`fit_fellegi_sunter` is
    its ``B == 1`` wrapper.  Every operation is elementwise over the
    batch or a per-row reduction, and converged/degenerate candidates
    are frozen by mask instead of dropping out of the loop, so each
    candidate's parameter trajectory is exactly what a one-candidate
    fit would produce: batching changes throughput, never results.
    """
    counts = np.asarray(pattern_counts, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[1] != 2**n_attributes:
        raise LinkageError(
            f"expected (B, {2**n_attributes}) pattern counts, got shape {counts.shape}"
        )
    # The EM fit dominates fresh-evaluation time, so it gets its own
    # latency series; the clock is only read when telemetry is on.
    registry = get_registry()
    em_start = time.perf_counter() if registry.enabled else 0.0
    totals = counts.sum(axis=-1)
    if counts.shape[0] and totals.min() <= 0:
        raise LinkageError("no record pairs to fit")
    bits = _pattern_bits(n_attributes).astype(np.float64)
    unbits = 1 - bits

    batch = counts.shape[0]
    # Initialization: matches agree often, non-matches rarely.
    m = np.full((batch, n_attributes), 0.9)
    u = np.full((batch, n_attributes), 0.1)
    match_proportion = np.full(batch, 0.01)

    previous_loglik = np.full(batch, -np.inf)
    active = np.ones(batch, dtype=bool)
    all_active = True
    for _ in range(max_iterations):
        # Compute every row, write back only active non-degenerate ones:
        # the per-iteration arrays are tiny (numpy call overhead, not
        # volume, is the cost), so recomputing frozen rows is cheaper
        # than gather/scatter — and discarded work cannot move results.
        # The m- and u-side likelihoods ride through one stacked call
        # per ufunc for the same reason.
        mu = np.concatenate([m, u], axis=0)
        log_mu = _bits_dot(bits, np.log(mu + _EPS)) + _bits_dot(
            unbits, np.log((1 - mu) + _EPS)
        )
        likelihood = np.exp(log_mu)
        match_term = match_proportion[:, None] * likelihood[:batch]
        nonmatch_term = (1 - match_proportion)[:, None] * likelihood[batch:]
        denominator = match_term + nonmatch_term + _EPS
        responsibility = match_term / denominator

        weighted = counts * responsibility
        weight_total = weighted.sum(axis=-1)
        rest_total = totals - weight_total
        # A degenerate mixture stops before updating, like the scalar
        # ``break``; everyone else updates and then checks convergence.
        degenerate = (weight_total <= _EPS) | (rest_total <= _EPS)
        has_degenerate = bool(degenerate.any())
        if has_degenerate:
            update = active & ~degenerate
            weight_total = np.where(weight_total <= _EPS, 1.0, weight_total)
            rest_total = np.where(rest_total <= _EPS, 1.0, rest_total)
        else:
            update = active

        new_mu = np.clip(
            _counts_dot_bits(
                np.concatenate([weighted, counts - weighted], axis=0), bits
            )
            / np.concatenate([weight_total, rest_total])[:, None],
            _EPS,
            1 - _EPS,
        )
        new_mp = np.clip(weight_total / totals, _EPS, 1 - _EPS)
        loglik = np.einsum("bp,bp->b", counts, np.log(denominator))
        if all_active and not has_degenerate:
            m = new_mu[:batch]
            u = new_mu[batch:]
            match_proportion = new_mp
            converged = np.abs(loglik - previous_loglik) < tolerance * (
                1 + np.abs(previous_loglik)
            )
            previous_loglik = loglik
            active = ~converged
        else:
            m = np.where(update[:, None], new_mu[:batch], m)
            u = np.where(update[:, None], new_mu[batch:], u)
            match_proportion = np.where(update, new_mp, match_proportion)
            converged = np.abs(loglik - previous_loglik) < tolerance * (
                1 + np.abs(previous_loglik)
            )
            previous_loglik = np.where(update, loglik, previous_loglik)
            active = update & ~converged
        all_active = bool(active.all())
        if not active.any():
            break

    weights = _bits_dot(bits, np.log(m + _EPS) - np.log(u + _EPS)) + _bits_dot(
        1 - bits, np.log(1 - m + _EPS) - np.log(1 - u + _EPS)
    )
    if registry.enabled:
        registry.observe("repro_em_fit_seconds", time.perf_counter() - em_start)
    return BatchFellegiSunterModel(
        m=m, u=u, match_proportion=match_proportion, pattern_weights=weights
    )


def fit_fellegi_sunter(
    pattern_counts: np.ndarray,
    n_attributes: int,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
) -> FellegiSunterModel:
    """EM fit of the Fellegi–Sunter mixture from aggregated pattern counts.

    Thin wrapper over :func:`fit_fellegi_sunter_many` with a batch of
    one, so the scalar and batch evaluation paths share one numerical
    trajectory.
    """
    counts = np.asarray(pattern_counts, dtype=np.float64)
    if counts.shape != (2**n_attributes,):
        raise LinkageError(
            f"expected {2**n_attributes} pattern counts, got shape {counts.shape}"
        )
    model = fit_fellegi_sunter_many(
        counts[None, :], n_attributes, max_iterations=max_iterations, tolerance=tolerance
    )
    return model.single(0)


def probabilistic_record_linkage(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> float:
    """Percentage of records re-identified by Fellegi–Sunter linkage (0..100)."""
    patterns = agreement_pattern_matrix(original, masked, attributes)
    n_attributes = len(attributes)
    counts = np.bincount(patterns.ravel(), minlength=2**n_attributes)
    model = fit_fellegi_sunter(counts, n_attributes)
    weights = model.pattern_weights[patterns]
    correct = fractional_correct_links(weights, best_is_max=True)
    return 100.0 * correct / original.n_records
