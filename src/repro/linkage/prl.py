"""Probabilistic record linkage (Fellegi–Sunter with EM estimation).

The intruder compares every (original, masked) record pair on the
quasi-identifier attributes, producing a binary *agreement pattern*.
Under the Fellegi–Sunter model, attribute ``k`` agrees with probability
``m_k`` among true matches and ``u_k`` among non-matches; the matching
weight of a pattern is the log-likelihood ratio

    w(pattern) = sum_k  log(m_k / u_k)            if attribute k agrees
                      + log((1-m_k) / (1-u_k))    if it disagrees.

``m``, ``u`` and the match proportion are estimated by EM over the
pattern counts (the intruder does not know the true matching), then each
original record is linked to the masked record with the highest weight.
The measure is the percentage of records whose true match wins, with
fractional credit on ties as in :mod:`repro.linkage.dbrl`.

Since the weight of a pair depends only on its agreement pattern, all
computations aggregate over the ``2^a`` patterns instead of the ``n^2``
pairs, which keeps EM instant even for thousands of records.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError
from repro.linkage.dbrl import fractional_correct_links

_EPS = 1e-9


def agreement_pattern_matrix(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> np.ndarray:
    """Pattern index of every record pair, shape ``(n, n)``, dtype int.

    Attribute ``k`` (in ``attributes`` order) contributes bit ``k``:
    the bit is set when the pair *agrees* on that attribute.
    """
    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    if not columns:
        raise LinkageError("agreement patterns need at least one attribute")
    if len(columns) > 20:
        raise LinkageError(f"too many attributes for pattern encoding: {len(columns)}")
    n = original.n_records
    patterns = np.zeros((n, n), dtype=np.int64)
    for bit, col in enumerate(columns):
        agree = original.column(col)[:, None] == masked.column(col)[None, :]
        patterns |= agree.astype(np.int64) << bit
    return patterns


@dataclass(frozen=True)
class FellegiSunterModel:
    """Estimated Fellegi–Sunter parameters and per-pattern weights."""

    m: np.ndarray
    u: np.ndarray
    match_proportion: float
    pattern_weights: np.ndarray

    @property
    def n_attributes(self) -> int:
        return self.m.shape[0]


def _pattern_bits(n_attributes: int) -> np.ndarray:
    """Bit matrix: ``bits[p, k]`` is 1 iff pattern ``p`` agrees on attr ``k``."""
    patterns = np.arange(2**n_attributes)
    return (patterns[:, None] >> np.arange(n_attributes)[None, :]) & 1


def fit_fellegi_sunter(
    pattern_counts: np.ndarray,
    n_attributes: int,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
) -> FellegiSunterModel:
    """EM fit of the Fellegi–Sunter mixture from aggregated pattern counts."""
    counts = np.asarray(pattern_counts, dtype=np.float64)
    if counts.shape != (2**n_attributes,):
        raise LinkageError(
            f"expected {2**n_attributes} pattern counts, got shape {counts.shape}"
        )
    total = counts.sum()
    if total <= 0:
        raise LinkageError("no record pairs to fit")
    bits = _pattern_bits(n_attributes).astype(np.float64)

    # Initialization: matches agree often, non-matches rarely.
    m = np.full(n_attributes, 0.9)
    u = np.full(n_attributes, 0.1)
    match_proportion = 0.01

    previous_loglik = -np.inf
    for _ in range(max_iterations):
        log_m = bits @ np.log(m + _EPS) + (1 - bits) @ np.log(1 - m + _EPS)
        log_u = bits @ np.log(u + _EPS) + (1 - bits) @ np.log(1 - u + _EPS)
        match_term = match_proportion * np.exp(log_m)
        nonmatch_term = (1 - match_proportion) * np.exp(log_u)
        denominator = match_term + nonmatch_term + _EPS
        responsibility = match_term / denominator

        weighted = counts * responsibility
        weight_total = weighted.sum()
        if weight_total <= _EPS or total - weight_total <= _EPS:
            break
        m = np.clip((weighted @ bits) / weight_total, _EPS, 1 - _EPS)
        u = np.clip(((counts - weighted) @ bits) / (total - weight_total), _EPS, 1 - _EPS)
        match_proportion = float(np.clip(weight_total / total, _EPS, 1 - _EPS))

        loglik = float((counts * np.log(denominator)).sum())
        if abs(loglik - previous_loglik) < tolerance * (1 + abs(previous_loglik)):
            break
        previous_loglik = loglik

    weights = (
        bits @ (np.log(m + _EPS) - np.log(u + _EPS))
        + (1 - bits) @ (np.log(1 - m + _EPS) - np.log(1 - u + _EPS))
    )
    return FellegiSunterModel(m=m, u=u, match_proportion=match_proportion, pattern_weights=weights)


def probabilistic_record_linkage(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> float:
    """Percentage of records re-identified by Fellegi–Sunter linkage (0..100)."""
    patterns = agreement_pattern_matrix(original, masked, attributes)
    n_attributes = len(attributes)
    counts = np.bincount(patterns.ravel(), minlength=2**n_attributes)
    model = fit_fellegi_sunter(counts, n_attributes)
    weights = model.pattern_weights[patterns]
    correct = fractional_correct_links(weights, best_is_max=True)
    return 100.0 * correct / original.n_records
