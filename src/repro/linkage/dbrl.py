"""Distance-based record linkage (Domingo-Ferrer & Torra, 2002).

The intruder holds the original file (or an external file sharing the
quasi-identifier attributes) and links each original record to the
*nearest* masked record under the categorical distance of
:mod:`repro.linkage.distance`.  The measure is the percentage of records
whose nearest masked record is their own masked version.

Ties are credited fractionally: if record ``i``'s true match is among
``t`` equally-nearest masked records, the intruder linking uniformly at
random among them succeeds with probability ``1/t``, so the record
contributes ``1/t`` correct links.  This avoids the index-order bias a
plain ``argmin`` would introduce (categorical distances tie massively).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.linkage.distance import cross_distance_matrix


def fractional_correct_links(score: np.ndarray, best_is_max: bool) -> float:
    """Expected number of correct links from a pairwise score matrix.

    ``score[i, j]`` rates linking original ``i`` to masked ``j``; the
    true match is the diagonal.  Each row credits ``1/t`` if the diagonal
    belongs to the ``t``-way tie at the row optimum, 0 otherwise.
    """
    if score.ndim != 2 or score.shape[0] != score.shape[1]:
        raise ValueError(f"score matrix must be square, got shape {score.shape}")
    best = score.max(axis=1) if best_is_max else score.min(axis=1)
    at_best = score == best[:, None]
    ties = at_best.sum(axis=1)
    diagonal_hit = at_best[np.arange(score.shape[0]), np.arange(score.shape[0])]
    return float((diagonal_hit / ties).sum())


def distance_based_record_linkage(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
) -> float:
    """Percentage of records re-identified by nearest-record linkage (0..100)."""
    distances = cross_distance_matrix(original, masked, attributes)
    correct = fractional_correct_links(distances, best_is_max=False)
    return 100.0 * correct / original.n_records
