"""Blocking: restricting linkage to candidate pairs sharing a block key.

All-pairs linkage is quadratic in the record count.  Real linkage
systems first partition records into *blocks* (records agreeing on a
blocking attribute) and only compare pairs within a block.  The library's
risk measures default to exhaustive comparison (the paper's setting, at
paper-scale files), but :func:`blocked_candidate_pairs` lets users run
the same measures on much larger files, trading a little recall for a
large speedup; :func:`blocking_recall` quantifies that trade.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import LinkageError


def blocked_candidate_pairs(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    blocking_attribute: str,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(original_rows, masked_rows)`` index arrays per block.

    A block is one category of ``blocking_attribute``; the yielded pair
    lists the original and masked records carrying that category.  Blocks
    empty on either side are skipped.
    """
    require_masked_pair(original, masked)
    (column,) = require_attributes(original, [blocking_attribute])
    domain = original.schema.domain(column)
    x = original.column(column)
    y = masked.column(column)
    for category in range(domain.size):
        original_rows = np.where(x == category)[0]
        masked_rows = np.where(y == category)[0]
        if original_rows.size and masked_rows.size:
            yield original_rows, masked_rows


def blocking_recall(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    blocking_attribute: str,
) -> float:
    """Fraction of true matches surviving blocking (0..1).

    A true match (record ``i`` with its own masked version) survives iff
    both copies fall in the same block, i.e. the masked file kept the
    blocking attribute's value.
    """
    require_masked_pair(original, masked)
    (column,) = require_attributes(original, [blocking_attribute])
    agree = original.column(column) == masked.column(column)
    return float(agree.mean())


def blocked_linkage_rate(
    original: CategoricalDataset,
    masked: CategoricalDataset,
    attributes: Sequence[str],
    blocking_attribute: str,
) -> float:
    """Distance-based linkage run block-by-block (0..100).

    Within each block, each original record links to the nearest masked
    record of the same block (fractional tie credit); records whose true
    match fell outside their block can never link correctly, so the rate
    is bounded by ``100 * blocking_recall``.
    """
    from repro.linkage.distance import cross_distance_matrix  # local: avoid cycle

    require_masked_pair(original, masked)
    columns = require_attributes(original, attributes)
    if not columns:
        raise LinkageError("blocked linkage needs at least one attribute")

    full_distances = cross_distance_matrix(original, masked, attributes)
    correct = 0.0
    for original_rows, masked_rows in blocked_candidate_pairs(original, masked, blocking_attribute):
        sub = full_distances[np.ix_(original_rows, masked_rows)]
        best = sub.min(axis=1)
        at_best = sub == best[:, None]
        ties = at_best.sum(axis=1)
        for slot, row in enumerate(original_rows):
            matches = masked_rows[at_best[slot]]
            if row in matches:
                correct += 1.0 / ties[slot]
    return 100.0 * correct / original.n_records
