"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DomainError(ReproError):
    """A category label or code is not valid for an attribute domain."""


class SchemaError(ReproError):
    """Two datasets (or a dataset and a schema) are structurally incompatible."""


class DataFormatError(ReproError):
    """A file being read is malformed (bad CSV shape, unknown labels, ...)."""


class ProtectionError(ReproError):
    """A protection method received invalid parameters or data."""


class MetricError(ReproError):
    """An information-loss or disclosure-risk measure cannot be computed."""


class LinkageError(ReproError):
    """A record-linkage computation received invalid inputs."""


class EvolutionError(ReproError):
    """The evolutionary engine was misconfigured or reached an invalid state."""


class HierarchyError(ReproError):
    """A value generalization hierarchy is malformed or incomplete."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ServiceError(ReproError):
    """The job-orchestration service hit an invalid job, cache, or checkpoint."""


class WorkerError(ServiceError):
    """A queue worker hit an invalid claim or job-state transition."""


class StoreUnavailableError(ServiceError):
    """A network job store could not be reached after retries."""
