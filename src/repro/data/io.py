"""CSV input/output for categorical microdata files.

Statistical agencies exchange microdata as flat delimited text; this
module reads and writes that format.  Reading can either validate labels
against a known schema (the normal case for protected files, which must
stay inside the original domains) or infer domains from the file contents.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Sequence

from repro.data.dataset import CategoricalDataset
from repro.data.schema import DatasetSchema
from repro.exceptions import DataFormatError, DomainError


def write_csv(dataset: CategoricalDataset, path: str | Path, delimiter: str = ",") -> None:
    """Write ``dataset`` as a delimited text file with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.attribute_names)
        writer.writerows(dataset.to_labels())


def read_csv(
    path: str | Path,
    schema: DatasetSchema,
    name: str | None = None,
    delimiter: str = ",",
) -> CategoricalDataset:
    """Read a delimited file whose labels must conform to ``schema``.

    The header row must list exactly the schema's attribute names in
    order; any label outside its attribute's domain raises
    :class:`DataFormatError`.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFormatError(f"{path}: file is empty") from None
        if tuple(header) != schema.attribute_names:
            raise DataFormatError(
                f"{path}: header {tuple(header)} does not match schema {schema.attribute_names}"
            )
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != schema.n_attributes:
                raise DataFormatError(
                    f"{path}:{line_no}: expected {schema.n_attributes} fields, got {len(row)}"
                )
            rows.append(row)
    try:
        return CategoricalDataset.from_labels(rows, schema, name=name or path.stem)
    except DomainError as exc:
        raise DataFormatError(f"{path}: {exc}") from exc


def read_csv_inferring_schema(
    path: str | Path,
    ordinal: Sequence[str] = (),
    name: str | None = None,
    delimiter: str = ",",
) -> CategoricalDataset:
    """Read a delimited file, inferring each attribute's domain from its values."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFormatError(f"{path}: file is empty") from None
        if len(set(header)) != len(header):
            raise DataFormatError(f"{path}: duplicate attribute names in header")
        columns: dict[str, list[str]] = {attr: [] for attr in header}
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise DataFormatError(
                    f"{path}:{line_no}: expected {len(header)} fields, got {len(row)}"
                )
            for attr, value in zip(header, row):
                columns[attr].append(value)
    if not next(iter(columns.values()), []):
        raise DataFormatError(f"{path}: no data rows")
    return CategoricalDataset.from_columns(columns, ordinal=ordinal, name=name or path.stem)
