"""Attribute domains for categorical microdata.

A :class:`CategoricalDomain` is the closed, ordered set of labels one
attribute may take.  Categorical SDC methods are only allowed to exchange
values *inside* a domain (the paper, §2.1: partial string modifications
"can generate categories out of our domain"), so the domain object is the
single authority on which codes are valid and how labels map to integer
codes.

Domains distinguish *nominal* attributes (no meaningful order; distance
between distinct categories is 0/1) from *ordinal* attributes (categories
carry a rank; top/bottom coding and rank-based measures use it).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import DomainError


class CategoricalDomain:
    """Closed ordered set of category labels for one attribute.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"EDUCATION"``.
    categories:
        Unique labels in domain order.  For ordinal domains the order is
        the rank order (smallest first).
    ordinal:
        Whether category order is semantically meaningful.
    """

    __slots__ = ("name", "categories", "ordinal", "_code_of")

    def __init__(self, name: str, categories: Sequence[str], ordinal: bool = False) -> None:
        if not name:
            raise DomainError("domain name must be non-empty")
        labels = tuple(str(c) for c in categories)
        if not labels:
            raise DomainError(f"domain {name!r} must have at least one category")
        if len(set(labels)) != len(labels):
            raise DomainError(f"domain {name!r} has duplicate categories")
        self.name = name
        self.categories = labels
        self.ordinal = bool(ordinal)
        self._code_of = {label: code for code, label in enumerate(labels)}

    @property
    def size(self) -> int:
        """Number of categories in the domain."""
        return len(self.categories)

    def code(self, label: str) -> int:
        """Integer code of ``label``; raises :class:`DomainError` if unknown."""
        try:
            return self._code_of[label]
        except KeyError:
            raise DomainError(f"label {label!r} is not in domain {self.name!r}") from None

    def label(self, code: int) -> str:
        """Label for integer ``code``; raises :class:`DomainError` if out of range."""
        if not 0 <= code < self.size:
            raise DomainError(f"code {code} out of range for domain {self.name!r} (size {self.size})")
        return self.categories[int(code)]

    def encode(self, labels: Iterable[str]) -> np.ndarray:
        """Vectorized :meth:`code` over an iterable of labels."""
        return np.fromiter((self.code(label) for label in labels), dtype=np.int64)

    def decode(self, codes: Iterable[int]) -> list[str]:
        """Vectorized :meth:`label` over an iterable of codes."""
        return [self.label(code) for code in codes]

    def contains_label(self, label: str) -> bool:
        """Whether ``label`` is a valid category of this domain."""
        return label in self._code_of

    def contains_code(self, code: int) -> bool:
        """Whether integer ``code`` addresses a category of this domain."""
        return 0 <= code < self.size

    def validate_codes(self, codes: np.ndarray) -> None:
        """Raise :class:`DomainError` unless every entry of ``codes`` is valid."""
        arr = np.asarray(codes)
        if arr.size and (arr.min() < 0 or arr.max() >= self.size):
            bad = arr[(arr < 0) | (arr >= self.size)][0]
            raise DomainError(f"code {int(bad)} out of range for domain {self.name!r} (size {self.size})")

    def as_ordinal(self) -> "CategoricalDomain":
        """Return a copy of this domain flagged ordinal (same categories)."""
        return CategoricalDomain(self.name, self.categories, ordinal=True)

    def renamed(self, name: str) -> "CategoricalDomain":
        """Return a copy of this domain with a different attribute name."""
        return CategoricalDomain(name, self.categories, ordinal=self.ordinal)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalDomain):
            return NotImplemented
        return (
            self.name == other.name
            and self.categories == other.categories
            and self.ordinal == other.ordinal
        )

    def __hash__(self) -> int:
        return hash((self.name, self.categories, self.ordinal))

    def __repr__(self) -> str:
        kind = "ordinal" if self.ordinal else "nominal"
        return f"CategoricalDomain({self.name!r}, {self.size} categories, {kind})"
