"""The categorical microdata file.

:class:`CategoricalDataset` is the value type the whole library moves
around: an ``(n_records, n_attributes)`` matrix of integer category codes
plus a :class:`~repro.data.schema.DatasetSchema`.  The paper's GA keeps
whole protected files in memory as chromosomes (its §2.1 genotype
encoding); we keep them as code matrices, which makes every measure a
vectorized numpy computation instead of a string comparison loop.

Datasets are *logically immutable*: the code matrix is flagged
read-only and all transformations return new objects.  Genetic operators
that need scratch space take an explicit writable copy via
:meth:`CategoricalDataset.codes_copy`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.domain import CategoricalDomain
from repro.data.schema import DatasetSchema
from repro.exceptions import SchemaError


class CategoricalDataset:
    """An integer-coded categorical microdata file.

    Parameters
    ----------
    codes:
        ``(n_records, n_attributes)`` integer array; ``codes[r, a]`` is
        the category code of record ``r`` for attribute ``a``.
    schema:
        Domains for each column, in order.
    name:
        Human-readable name carried through reports.
    """

    __slots__ = ("codes", "schema", "name")

    def __init__(self, codes: np.ndarray, schema: DatasetSchema, name: str = "dataset") -> None:
        arr = np.asarray(codes, dtype=np.int64)
        if arr.ndim != 2:
            raise SchemaError(f"codes must be 2-D (records x attributes), got shape {arr.shape}")
        if arr.shape[1] != schema.n_attributes:
            raise SchemaError(
                f"codes have {arr.shape[1]} columns but schema has {schema.n_attributes} attributes"
            )
        for col, domain in enumerate(schema):
            domain.validate_codes(arr[:, col])
        arr = arr.copy()
        arr.setflags(write=False)
        self.codes = arr
        self.schema = schema
        self.name = name

    # -- construction -------------------------------------------------

    @classmethod
    def from_labels(
        cls,
        rows: Sequence[Sequence[str]],
        schema: DatasetSchema,
        name: str = "dataset",
    ) -> "CategoricalDataset":
        """Build a dataset from rows of string labels."""
        n_attrs = schema.n_attributes
        codes = np.empty((len(rows), n_attrs), dtype=np.int64)
        for r, row in enumerate(rows):
            if len(row) != n_attrs:
                raise SchemaError(f"row {r} has {len(row)} values, schema expects {n_attrs}")
            for a, domain in enumerate(schema):
                codes[r, a] = domain.code(row[a])
        return cls(codes, schema, name=name)

    @classmethod
    def from_columns(
        cls,
        columns: dict[str, Sequence[str]],
        ordinal: Sequence[str] = (),
        name: str = "dataset",
    ) -> "CategoricalDataset":
        """Build a dataset (and infer domains) from label columns.

        Domain categories are the sorted distinct labels of each column;
        attributes listed in ``ordinal`` are flagged ordinal with that
        sorted order as rank order.
        """
        ordinal_set = set(ordinal)
        unknown = ordinal_set - set(columns)
        if unknown:
            raise SchemaError(f"ordinal attributes not present in columns: {sorted(unknown)}")
        domains = []
        encoded = []
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        for attr, values in columns.items():
            labels = sorted(set(str(v) for v in values))
            domain = CategoricalDomain(attr, labels, ordinal=attr in ordinal_set)
            domains.append(domain)
            encoded.append(domain.encode(str(v) for v in values))
        codes = np.column_stack(encoded) if encoded else np.empty((0, 0), dtype=np.int64)
        return cls(codes, DatasetSchema(domains), name=name)

    # -- shape accessors ----------------------------------------------

    @property
    def n_records(self) -> int:
        """Number of records (rows)."""
        return self.codes.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of attributes (columns)."""
        return self.codes.shape[1]

    @property
    def n_cells(self) -> int:
        """Total number of cells (records x attributes)."""
        return self.codes.size

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in column order."""
        return self.schema.attribute_names

    def domain(self, key: int | str) -> CategoricalDomain:
        """Domain of a column (by index or attribute name)."""
        return self.schema.domain(key)

    # -- data accessors -----------------------------------------------

    def column(self, key: int | str) -> np.ndarray:
        """Read-only code vector of one attribute."""
        index = self.schema.index_of(key) if isinstance(key, str) else key
        return self.codes[:, index]

    def column_labels(self, key: int | str) -> list[str]:
        """Label list of one attribute."""
        index = self.schema.index_of(key) if isinstance(key, str) else key
        return self.schema.domain(index).decode(self.codes[:, index])

    def record_labels(self, row: int) -> list[str]:
        """Labels of one record across all attributes."""
        return [self.schema.domain(a).label(self.codes[row, a]) for a in range(self.n_attributes)]

    def to_labels(self) -> list[list[str]]:
        """All records as rows of labels (CSV-ready)."""
        return [self.record_labels(r) for r in range(self.n_records)]

    def codes_copy(self) -> np.ndarray:
        """Writable copy of the code matrix (for genetic operators)."""
        return self.codes.copy()

    def value_counts(self, key: int | str) -> np.ndarray:
        """Frequency of every domain category of one attribute.

        The returned vector is indexed by category code and includes
        zero-count categories, so its length equals the domain size.
        """
        index = self.schema.index_of(key) if isinstance(key, str) else key
        return np.bincount(self.codes[:, index], minlength=self.schema.domain(index).size)

    # -- transformations ----------------------------------------------

    def with_codes(self, codes: np.ndarray, name: str | None = None) -> "CategoricalDataset":
        """New dataset with the same schema and a different code matrix."""
        return CategoricalDataset(codes, self.schema, name=name if name is not None else self.name)

    def replace_column(self, key: int | str, codes: np.ndarray, name: str | None = None) -> "CategoricalDataset":
        """New dataset with one attribute's codes replaced."""
        index = self.schema.index_of(key) if isinstance(key, str) else key
        new_codes = self.codes_copy()
        new_codes[:, index] = np.asarray(codes, dtype=np.int64)
        return self.with_codes(new_codes, name=name)

    def select_attributes(self, names: Sequence[str], name: str | None = None) -> "CategoricalDataset":
        """New dataset restricted to the given attributes, in order."""
        indices = [self.schema.index_of(n) for n in names]
        return CategoricalDataset(
            self.codes[:, indices],
            self.schema.subset(names),
            name=name if name is not None else self.name,
        )

    def renamed(self, name: str) -> "CategoricalDataset":
        """Same data under a different dataset name."""
        return CategoricalDataset(self.codes, self.schema, name=name)

    # -- comparisons ---------------------------------------------------

    def require_compatible(self, other: "CategoricalDataset") -> None:
        """Raise :class:`SchemaError` unless ``other`` pairs with this file.

        Pairing requires the identical schema *and* record count: the
        measures and the GA treat rows at equal index as the same
        respondent.
        """
        self.schema.require_compatible(other.schema)
        if self.n_records != other.n_records:
            raise SchemaError(
                f"record counts differ: {self.n_records} vs {other.n_records}"
            )

    def equals(self, other: "CategoricalDataset") -> bool:
        """Value equality: same schema and identical code matrix."""
        return (
            self.schema == other.schema
            and self.codes.shape == other.codes.shape
            and bool(np.array_equal(self.codes, other.codes))
        )

    def cells_changed(self, other: "CategoricalDataset") -> int:
        """Number of cells whose code differs between the two files."""
        self.require_compatible(other)
        return int(np.count_nonzero(self.codes != other.codes))

    def fingerprint(self) -> bytes:
        """Cheap content hash of the code matrix (used by fitness caching)."""
        return self.codes.tobytes()

    def __repr__(self) -> str:
        return (
            f"CategoricalDataset({self.name!r}, {self.n_records} records x "
            f"{self.n_attributes} attributes)"
        )
