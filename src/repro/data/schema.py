"""Dataset schemas: the ordered collection of attribute domains.

A schema answers "are these two files protections of the same original?"
— the precondition for every pairwise measure and for the GA's crossover
operator, which swaps cell ranges between two files and is only meaningful
when both files share record count and domains.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.data.domain import CategoricalDomain
from repro.exceptions import SchemaError


class DatasetSchema:
    """Ordered, named collection of :class:`CategoricalDomain` objects."""

    __slots__ = ("domains", "_index_of")

    def __init__(self, domains: Sequence[CategoricalDomain]) -> None:
        doms = tuple(domains)
        if not doms:
            raise SchemaError("a schema needs at least one attribute")
        names = [d.name for d in doms]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self.domains = doms
        self._index_of = {d.name: i for i, d in enumerate(doms)}

    @property
    def n_attributes(self) -> int:
        """Number of attributes in the schema."""
        return len(self.domains)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in column order."""
        return tuple(d.name for d in self.domains)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Domain sizes in column order."""
        return tuple(d.size for d in self.domains)

    def index_of(self, name: str) -> int:
        """Column index of attribute ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._index_of[name]
        except KeyError:
            raise SchemaError(f"attribute {name!r} not in schema {self.attribute_names}") from None

    def domain(self, key: int | str) -> CategoricalDomain:
        """Domain for a column index or attribute name."""
        if isinstance(key, str):
            return self.domains[self.index_of(key)]
        if not 0 <= key < len(self.domains):
            raise SchemaError(f"column index {key} out of range (0..{len(self.domains) - 1})")
        return self.domains[key]

    def subset(self, names: Sequence[str]) -> "DatasetSchema":
        """Schema restricted to ``names``, in the given order."""
        return DatasetSchema([self.domain(name) for name in names])

    def require_compatible(self, other: "DatasetSchema") -> None:
        """Raise :class:`SchemaError` unless both schemas are identical."""
        if self.attribute_names != other.attribute_names:
            raise SchemaError(
                f"attribute names differ: {self.attribute_names} vs {other.attribute_names}"
            )
        for mine, theirs in zip(self.domains, other.domains):
            if mine != theirs:
                raise SchemaError(f"domain mismatch for attribute {mine.name!r}")

    def __iter__(self) -> Iterator[CategoricalDomain]:
        return iter(self.domains)

    def __len__(self) -> int:
        return len(self.domains)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatasetSchema):
            return NotImplemented
        return self.domains == other.domains

    def __hash__(self) -> int:
        return hash(self.domains)

    def __repr__(self) -> str:
        return f"DatasetSchema({', '.join(self.attribute_names)})"
