"""Categorical data model: domains, schemas, datasets and CSV io."""

from repro.data.dataset import CategoricalDataset
from repro.data.domain import CategoricalDomain
from repro.data.io import read_csv, read_csv_inferring_schema, write_csv
from repro.data.schema import DatasetSchema
from repro.data.validation import require_attributes, require_masked_pair, require_population

__all__ = [
    "CategoricalDataset",
    "CategoricalDomain",
    "DatasetSchema",
    "read_csv",
    "read_csv_inferring_schema",
    "write_csv",
    "require_attributes",
    "require_masked_pair",
    "require_population",
]
