"""Structural validation helpers shared by methods, metrics and the GA.

These functions express the preconditions of the paper's setting once, so
every consumer states them identically: a *masked pair* is an original
file plus a candidate protection with the same schema and record count,
and a *population* is a set of protections that all pair with the same
original.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.dataset import CategoricalDataset
from repro.exceptions import SchemaError


def require_masked_pair(original: CategoricalDataset, masked: CategoricalDataset) -> None:
    """Validate that ``masked`` is a candidate protection of ``original``."""
    original.require_compatible(masked)


def require_population(original: CategoricalDataset, protections: Sequence[CategoricalDataset]) -> None:
    """Validate that every file in ``protections`` pairs with ``original``."""
    if not protections:
        raise SchemaError("population must contain at least one protection")
    for i, masked in enumerate(protections):
        try:
            original.require_compatible(masked)
        except SchemaError as exc:
            raise SchemaError(f"protection #{i} ({masked.name!r}) incompatible: {exc}") from exc


def require_attributes(dataset: CategoricalDataset, names: Sequence[str]) -> list[int]:
    """Resolve attribute ``names`` to column indices, validating existence."""
    return [dataset.schema.index_of(name) for name in names]
