"""Per-generation run history — the data behind the paper's figures.

The evolution figures (paper Figs 2, 4, 6, 8, 10, 12, 14, 16, 19, 20)
plot the max, mean and min population score per generation; the
dispersion figures plot the (IL, DR) cloud of the initial and final
populations.  :class:`EvolutionHistory` records exactly those series
while the engine runs, plus which operator fired and how long fitness
evaluation took, so every figure and in-text number is reproducible from
one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class GenerationRecord:
    """Statistics of the population after one generation."""

    generation: int
    operator: str
    max_score: float
    mean_score: float
    min_score: float
    evaluations: int
    fitness_seconds: float
    other_seconds: float
    accepted: bool


@dataclass
class EvolutionHistory:
    """Chronological per-generation records plus endpoint summaries."""

    records: list[GenerationRecord] = field(default_factory=list)

    def append(self, record: GenerationRecord) -> None:
        """Add the record of a completed generation."""
        self.records.append(record)

    # -- series for the evolution figures --------------------------------

    @property
    def generations(self) -> list[int]:
        return [r.generation for r in self.records]

    @property
    def max_scores(self) -> list[float]:
        return [r.max_score for r in self.records]

    @property
    def mean_scores(self) -> list[float]:
        return [r.mean_score for r in self.records]

    @property
    def min_scores(self) -> list[float]:
        return [r.min_score for r in self.records]

    def __len__(self) -> int:
        return len(self.records)

    # -- summaries -------------------------------------------------------

    def improvement(self, series: str = "mean") -> tuple[float, float, float]:
        """(initial, final, percent improvement) of one score series.

        ``series`` is ``"max"``, ``"mean"`` or ``"min"``.  Percent
        improvement is the relative decrease, the number the paper
        reports in §3.1/§3.2 (positive = the series went down).
        """
        values = {"max": self.max_scores, "mean": self.mean_scores, "min": self.min_scores}[series]
        if not values:
            raise ValueError("history is empty")
        initial, final = values[0], values[-1]
        percent = 100.0 * (initial - final) / initial if initial else 0.0
        return initial, final, percent

    def operator_timing(self) -> dict[str, dict[str, float]]:
        """Mean per-generation seconds split by operator and phase.

        Reproduces the paper's §3.2 timing observation: fitness seconds
        dominate and crossover generations cost about twice mutation
        generations (4 vs 2 fitness evaluations).
        """
        summary: dict[str, dict[str, float]] = {}
        for operator in ("mutation", "crossover"):
            rows = [r for r in self.records if r.operator == operator]
            if not rows:
                continue
            fitness = float(np.mean([r.fitness_seconds for r in rows]))
            other = float(np.mean([r.other_seconds for r in rows]))
            summary[operator] = {
                "generations": float(len(rows)),
                "fitness_seconds": fitness,
                "other_seconds": other,
                "total_seconds": fitness + other,
            }
        return summary

    def acceptance_rate(self) -> float:
        """Fraction of generations whose offspring entered the population."""
        if not self.records:
            return 0.0
        return float(np.mean([r.accepted for r in self.records]))
