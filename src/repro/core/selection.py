"""Parent selection strategies (paper §2.4).

Scores are *minimized*, which makes the paper's Eq. 3 — ``p(X_i) =
Score(X_i) / sum_j Score(X_j)`` — ambiguous: read literally it gives
*worse* individuals higher selection probability, while the surrounding
text says "better individuals have a greater probability of being
selected" and §3.1 observes that bad-score individuals are rarely
selected.  We implement both readings plus two standard baselines, and
default to the text's intent:

* ``"proportional"`` (default) — probability proportional to
  ``max + min - score``, the classic inversion of roulette-wheel
  selection for minimization;
* ``"literal"`` — Eq. 3 exactly as printed (favours bad scores);
* ``"rank"`` — linear ranking on the sorted population, insensitive to
  score scale;
* ``"uniform"`` — uniform choice (ablation baseline).

The crossover leader pick (uniform among the ``Nb`` best) lives in
:func:`select_leader`.
"""

from __future__ import annotations

import numpy as np

from repro.core.population import Population
from repro.exceptions import EvolutionError
from repro.utils.rng import as_generator

STRATEGIES = ("proportional", "literal", "rank", "uniform")


def selection_probabilities(scores: np.ndarray, strategy: str = "proportional") -> np.ndarray:
    """Selection probability vector for a score vector (lower = better)."""
    values = np.asarray(scores, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise EvolutionError("scores must be a non-empty vector")
    if np.any(values < 0):
        raise EvolutionError("scores must be non-negative")
    n = values.size

    if strategy == "uniform":
        return np.full(n, 1.0 / n)
    if strategy == "literal":
        total = values.sum()
        if total <= 0:
            return np.full(n, 1.0 / n)
        return values / total
    if strategy == "proportional":
        transformed = values.max() + values.min() - values
        total = transformed.sum()
        if total <= 0:
            return np.full(n, 1.0 / n)
        return transformed / total
    if strategy == "rank":
        order = np.argsort(np.argsort(values, kind="stable"), kind="stable")
        # Best (rank 0) gets weight n, worst gets 1.
        weights = (n - order).astype(np.float64)
        return weights / weights.sum()
    raise EvolutionError(f"unknown selection strategy {strategy!r}; choose from {STRATEGIES}")


def select_index(
    population: Population,
    strategy: str = "proportional",
    seed: int | np.random.Generator | None = None,
) -> int:
    """Draw one population index according to ``strategy``."""
    rng = as_generator(seed)
    probabilities = selection_probabilities(population.scores(), strategy)
    return int(rng.choice(len(population), p=probabilities))


def select_leader(
    population: Population,
    leader_count: int,
    seed: int | np.random.Generator | None = None,
) -> int:
    """Uniform draw among the ``leader_count`` best individuals."""
    rng = as_generator(seed)
    leaders = population.leaders(min(leader_count, len(population)))
    return leaders[int(rng.integers(len(leaders)))]
