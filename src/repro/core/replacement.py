"""Replacement policies (paper §2.4).

* **Elitist replacement** (mutation path): the offspring replaces its
  parent only if it is at least as good, so the population never loses
  its best solution.
* **Deterministic crowding** (crossover path; Mahfoud, 1992): each
  offspring competes against one parent and only the better of each pair
  survives.  The paper keeps each newcomer paired with *its* parent
  (index pairing); the classical variant instead pairs offspring with
  the genotypically closest parent — both are provided, index pairing is
  the default.
"""

from __future__ import annotations

from repro.core.individual import Individual


def elitist_survivor(parent: Individual, child: Individual) -> Individual:
    """The better of parent and child; the child wins ties.

    Winning ties keeps neutral drift possible (the search can move along
    score plateaus) while guaranteeing the paper's invariant that the
    next generation "will be at least not worse".
    """
    return child if child.score <= parent.score else parent


def crowding_pairs(
    parents: tuple[Individual, Individual],
    children: tuple[Individual, Individual],
    pairing: str = "index",
) -> list[tuple[Individual, Individual]]:
    """Pair each child with the parent it competes against.

    ``"index"`` pairs child ``k`` with parent ``k`` (the paper's
    proximity relation); ``"distance"`` applies classical deterministic
    crowding, choosing the assignment that minimizes the total genotype
    distance between paired individuals.
    """
    if pairing == "index":
        return [(parents[0], children[0]), (parents[1], children[1])]
    if pairing == "distance":
        straight = (
            parents[0].genotype_distance(children[0])
            + parents[1].genotype_distance(children[1])
        )
        crossed = (
            parents[0].genotype_distance(children[1])
            + parents[1].genotype_distance(children[0])
        )
        if straight <= crossed:
            return [(parents[0], children[0]), (parents[1], children[1])]
        return [(parents[0], children[1]), (parents[1], children[0])]
    raise ValueError(f"unknown pairing {pairing!r}; choose 'index' or 'distance'")


def deterministic_crowding(
    parents: tuple[Individual, Individual],
    children: tuple[Individual, Individual],
    pairing: str = "index",
) -> list[Individual]:
    """Survivor of each (parent, child) pair, children winning ties."""
    return [elitist_survivor(parent, child) for parent, child in crowding_pairs(parents, children, pairing)]
