"""Pareto-front multi-objective optimization (paper future-work extension).

The paper scalarizes (IL, DR) into one score and notes in its
conclusions that other aggregations are worth exploring.  The natural
end point of that line is to drop scalarization entirely and optimize
the two objectives as a Pareto problem: a protection dominates another
when it is no worse on both IL and DR and strictly better on one.

This module supplies the standard machinery — fast non-dominated sorting
and crowding distance (the NSGA-II components) — plus
:class:`ParetoEvolutionaryProtector`, a steady-state engine that reuses
the paper's operators and selection flavour but replaces elitist
replacement with dominance-based acceptance: an offspring enters the
population by replacing the most crowded individual of the worst front
whenever it is not dominated by its parent.

The result of a run is the full Pareto front of protections, from which
an agency can pick its preferred IL/DR trade-off after the fact.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.individual import Individual
from repro.core.operators import crossover, mutate
from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_population
from repro.exceptions import EvolutionError
from repro.metrics.evaluation import ProtectionEvaluator
from repro.obs import emit_event, get_registry
from repro.utils.rng import as_generator


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Pareto dominance for minimization: a no worse everywhere, better somewhere."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def non_dominated_sort(objectives: np.ndarray) -> list[np.ndarray]:
    """Fast non-dominated sorting; returns fronts as index arrays.

    ``objectives`` is an ``(n, m)`` matrix, minimized component-wise.
    Front 0 is the Pareto-optimal set; each later front is optimal once
    earlier fronts are removed.
    """
    points = np.asarray(objectives, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise EvolutionError("objectives must be a non-empty (n, m) matrix")
    n = points.shape[0]
    # dominated[i, j] = i dominates j.
    no_worse = (points[:, None, :] <= points[None, :, :]).all(axis=2)
    strictly_better = (points[:, None, :] < points[None, :, :]).any(axis=2)
    domination = no_worse & strictly_better
    dominated_count = domination.sum(axis=0)

    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    counts = dominated_count.astype(np.int64).copy()
    while remaining.any():
        current = np.where(remaining & (counts == 0))[0]
        if current.size == 0:
            # Numerically impossible unless there is a cycle (there cannot
            # be); guard against infinite loops regardless.
            current = np.where(remaining)[0]
        fronts.append(current)
        remaining[current] = False
        counts -= domination[current].sum(axis=0)
    return fronts


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each point within one front.

    Boundary points get infinite distance; interior points get the sum of
    normalized neighbour gaps per objective.  Larger = less crowded.
    """
    points = np.asarray(objectives, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise EvolutionError("objectives must be a non-empty (n, m) matrix")
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for objective in range(m):
        order = np.argsort(points[:, objective], kind="stable")
        lo = points[order[0], objective]
        hi = points[order[-1], objective]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        gaps = (points[order[2:], objective] - points[order[:-2], objective]) / span
        distance[order[1:-1]] += gaps
    return distance


@dataclass(frozen=True)
class ParetoResult:
    """Outcome of a Pareto run: final population and its first front."""

    population: list[Individual]
    front: list[Individual]
    generations: int
    front_sizes: list[int]

    def front_objectives(self) -> list[tuple[float, float]]:
        """(IL, DR) pairs of the Pareto front, sorted by IL."""
        pairs = [(ind.information_loss, ind.disclosure_risk) for ind in self.front]
        return sorted(pairs)


class ParetoEvolutionaryProtector:
    """Steady-state Pareto GA over protections, reusing the paper's operators.

    Each generation mutates or crosses (probability ``mutation_probability``)
    parents drawn randomly, preferring the first front; offspring are
    accepted if they are not dominated by their parent, replacing the
    most crowded member of the last front.
    """

    def __init__(
        self,
        evaluator: ProtectionEvaluator,
        mutation_probability: float = 0.5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 <= mutation_probability <= 1:
            raise EvolutionError(
                f"mutation_probability must be in [0, 1], got {mutation_probability}"
            )
        self.evaluator = evaluator
        self.mutation_probability = float(mutation_probability)
        self._rng = as_generator(seed)

    def _objectives(self, population: Sequence[Individual]) -> np.ndarray:
        return np.array(
            [(ind.information_loss, ind.disclosure_risk) for ind in population],
            dtype=np.float64,
        )

    def _select_parent_index(self, fronts: list[np.ndarray]) -> int:
        # Prefer the first front with probability 1/2, else uniform overall.
        if self._rng.random() < 0.5:
            front = fronts[0]
            return int(front[self._rng.integers(front.size)])
        total = sum(front.size for front in fronts)
        return int(self._rng.integers(total))

    def _replacement_index(self, population: Sequence[Individual]) -> int:
        objectives = self._objectives(population)
        fronts = non_dominated_sort(objectives)
        last = fronts[-1]
        distances = crowding_distance(objectives[last])
        return int(last[int(np.argmin(distances))])

    def run(
        self,
        initial: Sequence[CategoricalDataset],
        generations: int = 200,
    ) -> ParetoResult:
        """Evolve ``initial`` for ``generations`` steady-state steps."""
        if generations < 1:
            raise EvolutionError(f"generations must be >= 1, got {generations}")
        require_population(self.evaluator.original, initial)
        if len(initial) < 2:
            raise EvolutionError("the Pareto GA needs at least 2 protections")
        # One evaluation batch for the whole initial population: dedup,
        # bulk cache rounds, and the evaluator's executor fan-out all
        # apply (batch[i] == scalar bit-for-bit by the compute_many
        # contract, so results are unchanged).
        initial_evaluations = self.evaluator.evaluate_many(list(initial))
        population = [
            Individual(dataset=d, evaluation=evaluation, origin="initial")
            for d, evaluation in zip(initial, initial_evaluations)
        ]
        front_sizes: list[int] = []
        registry = get_registry()

        for generation in range(1, generations + 1):
            objectives = self._objectives(population)
            fronts = non_dominated_sort(objectives)
            front_sizes.append(int(fronts[0].size))
            if registry.enabled:
                registry.set_gauge("repro_pareto_front_size", front_sizes[-1])
                emit_event("pareto_generation", generation=generation,
                           front_size=front_sizes[-1])

            parent_index = self._select_parent_index(fronts)
            parent = population[parent_index]
            attributes = self.evaluator.attributes

            # Offspring are evaluated as one batch per generation (a
            # singleton for mutation, the sibling pair for crossover):
            # shared intermediates are computed once, caches are
            # consulted in bulk, and the evaluator's executor applies.
            # Evaluation is pure, so the RNG stream — and therefore the
            # run — is bit-identical to the old scalar calls.
            if self._rng.random() < self.mutation_probability:
                child_data = mutate(parent.dataset, attributes, seed=self._rng,
                                    name=f"pareto:gen{generation}:mut")
                (child_eval,) = self.evaluator.evaluate_many([child_data])
                children = [
                    Individual(child_data, child_eval,
                               origin="mutation", birth_generation=generation)
                ]
            else:
                mate_index = self._select_parent_index(fronts)
                mate = population[mate_index]
                data_a, data_b = crossover(
                    parent.dataset, mate.dataset, attributes, seed=self._rng,
                    names=(f"pareto:gen{generation}:xA", f"pareto:gen{generation}:xB"),
                )
                eval_a, eval_b = self.evaluator.evaluate_many([data_a, data_b])
                children = [
                    Individual(data, evaluation,
                               origin="crossover", birth_generation=generation)
                    for data, evaluation in zip((data_a, data_b), (eval_a, eval_b))
                ]

            for child in children:
                parent_objs = (parent.information_loss, parent.disclosure_risk)
                child_objs = (child.information_loss, child.disclosure_risk)
                if dominates(parent_objs, child_objs):
                    continue  # strictly worse offspring die
                population[self._replacement_index(population)] = child

        final_objectives = self._objectives(population)
        final_fronts = non_dominated_sort(final_objectives)
        front = [population[int(i)] for i in final_fronts[0]]
        return ParetoResult(
            population=list(population),
            front=front,
            generations=generations,
            front_sizes=front_sizes,
        )
