"""The paper's primary contribution: the evolutionary protection engine."""

from repro.core.engine import EngineCheckpoint, EvolutionaryProtector, EvolutionResult
from repro.core.history import EvolutionHistory, GenerationRecord
from repro.core.individual import Individual
from repro.core.operators import crossover, crossover_points, mutate
from repro.core.pareto import (
    ParetoEvolutionaryProtector,
    ParetoResult,
    crowding_distance,
    dominates,
    non_dominated_sort,
)
from repro.core.population import Population
from repro.core.replacement import crowding_pairs, deterministic_crowding, elitist_survivor
from repro.core.selection import STRATEGIES, select_index, select_leader, selection_probabilities
from repro.core.stopping import AnyOf, MaxGenerations, Stagnation, StoppingRule, TargetScore

__all__ = [
    "EngineCheckpoint",
    "EvolutionaryProtector",
    "EvolutionResult",
    "EvolutionHistory",
    "GenerationRecord",
    "Individual",
    "Population",
    "mutate",
    "crossover",
    "crossover_points",
    "elitist_survivor",
    "deterministic_crowding",
    "crowding_pairs",
    "selection_probabilities",
    "select_index",
    "select_leader",
    "STRATEGIES",
    "StoppingRule",
    "MaxGenerations",
    "Stagnation",
    "TargetScore",
    "AnyOf",
    "ParetoEvolutionaryProtector",
    "ParetoResult",
    "dominates",
    "non_dominated_sort",
    "crowding_distance",
]
