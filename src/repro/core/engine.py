"""The evolutionary protection engine — paper Algorithm 1.

:class:`EvolutionaryProtector` runs the paper's steady-state GA over a
population of protected files:

1. evaluate the initial population;
2. each generation, flip a fair coin between mutation and crossover
   (both rates 0.5, the paper's heuristic choice);
3. **mutation**: select one individual fitness-proportionally, mutate a
   single gene, and keep the better of parent and offspring (elitism);
4. **crossover**: select one parent uniformly from the ``Nb``-best
   leader group and one fitness-proportionally from the whole
   population, apply 2-point category crossover, and let each offspring
   compete with its parent (deterministic crowding);
5. stop per the configured rule and return the final population with the
   full per-generation history.

The engine is deterministic given its seed, and all fitness work goes
through a single :class:`~repro.metrics.evaluation.ProtectionEvaluator`
whose memoization it shares across generations.
"""

from __future__ import annotations

import copy
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.history import EvolutionHistory, GenerationRecord
from repro.core.individual import Individual
from repro.core.operators import crossover, mutate
from repro.core.population import Population
from repro.core.replacement import deterministic_crowding, elitist_survivor
from repro.core.selection import STRATEGIES, select_index, select_leader
from repro.core.stopping import MaxGenerations, StoppingRule
from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_population
from repro.exceptions import EvolutionError
from repro.metrics.evaluation import ProtectionEvaluator
from repro.obs import emit_event, get_registry
from repro.obs.trace import span as trace_span
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class EvolutionResult:
    """Everything a run produced: endpoint populations and the history."""

    initial: list[Individual]
    population: Population
    history: EvolutionHistory

    @property
    def best(self) -> Individual:
        """Best individual of the final population."""
        return self.population.best()

    def initial_dispersion(self) -> list[tuple[float, float]]:
        """(IL, DR) cloud of the initial population (dispersion figures)."""
        return [(ind.information_loss, ind.disclosure_risk) for ind in self.initial]

    def final_dispersion(self) -> list[tuple[float, float]]:
        """(IL, DR) cloud of the final population (dispersion figures)."""
        return self.population.dispersion()


@dataclass(frozen=True)
class EngineCheckpoint:
    """Complete mid-run engine state, sufficient to continue the run.

    Captures the population, the initial snapshot, the history so far,
    the generation counter, and the RNG bit-generator state.  Resuming
    from a checkpoint with :meth:`EvolutionaryProtector.resume` replays
    the exact stochastic stream the uninterrupted run would have drawn,
    so an interrupted-and-resumed run is bit-identical to a straight one.
    Serialization to disk lives in :mod:`repro.service.checkpoint`.
    """

    generation: int
    initial: list[Individual]
    individuals: list[Individual]
    records: list[GenerationRecord]
    rng_state: dict


class EvolutionaryProtector:
    """Paper Algorithm 1 with the paper's operators, selection and replacement.

    Parameters
    ----------
    evaluator:
        Bound fitness stack (original file, attributes, measures, score).
    mutation_probability:
        Probability that a generation applies mutation rather than
        crossover; the paper fixes 0.5.
    leader_fraction:
        Size of the crossover leader group ``Nb`` as a fraction of the
        population (at least 1 individual).
    selection_strategy:
        Parent-selection strategy (see :mod:`repro.core.selection`).
    crowding_pairing:
        ``"index"`` (paper) or ``"distance"`` (classical deterministic
        crowding).
    seed:
        Run seed; fixes every stochastic decision of the run.
    """

    def __init__(
        self,
        evaluator: ProtectionEvaluator,
        mutation_probability: float = 0.5,
        leader_fraction: float = 0.1,
        selection_strategy: str = "proportional",
        crowding_pairing: str = "index",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 <= mutation_probability <= 1:
            raise EvolutionError(
                f"mutation_probability must be in [0, 1], got {mutation_probability}"
            )
        if not 0 < leader_fraction <= 1:
            raise EvolutionError(f"leader_fraction must be in (0, 1], got {leader_fraction}")
        if selection_strategy not in STRATEGIES:
            raise EvolutionError(
                f"unknown selection strategy {selection_strategy!r}; choose from {STRATEGIES}"
            )
        if crowding_pairing not in ("index", "distance"):
            raise EvolutionError(
                f"crowding_pairing must be 'index' or 'distance', got {crowding_pairing!r}"
            )
        self.evaluator = evaluator
        self.mutation_probability = float(mutation_probability)
        self.leader_fraction = float(leader_fraction)
        self.selection_strategy = selection_strategy
        self.crowding_pairing = crowding_pairing
        self._rng = as_generator(seed)

    # -- public API -------------------------------------------------------

    def evaluate_initial(self, protections: Sequence[CategoricalDataset]) -> list[Individual]:
        """Score an initial population of protected files.

        One evaluation batch: the whole population goes through
        :meth:`~repro.metrics.evaluation.ProtectionEvaluator.evaluate_many`,
        so duplicates are collapsed, caches are consulted in bulk, and
        the fresh remainder is vectorized (and fanned out when the
        evaluator has an executor).
        """
        require_population(self.evaluator.original, protections)
        evaluations = self.evaluator.evaluate_many(protections)
        return [
            Individual(dataset=p, evaluation=evaluation, origin="initial")
            for p, evaluation in zip(protections, evaluations)
        ]

    def run(
        self,
        initial: Sequence[CategoricalDataset] | Sequence[Individual],
        stopping: StoppingRule | int = 200,
        on_generation: Callable[[GenerationRecord], None] | None = None,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[EngineCheckpoint], None] | None = None,
        migration_every: int = 0,
        on_migration: Callable[[Population, int, Callable[[], EngineCheckpoint]], None] | None = None,
    ) -> EvolutionResult:
        """Run the GA until ``stopping`` fires; returns the full result.

        ``initial`` may be raw protected files (scored here) or already
        scored :class:`Individual` objects.  ``stopping`` may be a rule
        or an int shorthand for :class:`MaxGenerations`.  When
        ``checkpoint_every`` is positive, ``on_checkpoint`` receives an
        :class:`EngineCheckpoint` after every that-many generations (and
        once more when the run ends), enabling interrupt-safe restarts.
        When ``migration_every`` is positive, ``on_migration`` fires
        after every that-many generations with the live population, the
        generation number, and a zero-argument capture callable that
        snapshots the full engine state — the island-model exchange hook
        (see :mod:`repro.service.islands`).  The hook may mutate the
        population in place (elite injection); it must not draw from the
        run RNG, so seeded runs stay bit-identical with or without it.
        """
        individuals = self._coerce_initial(initial)
        if len(individuals) < 2:
            raise EvolutionError("the GA needs a population of at least 2 protections")
        population = Population(individuals)
        return self._loop(
            population=population,
            initial_snapshot=population.snapshot(),
            history=EvolutionHistory(),
            generation=0,
            stopping=stopping,
            on_generation=on_generation,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            migration_every=migration_every,
            on_migration=on_migration,
        )

    def resume(
        self,
        checkpoint: EngineCheckpoint,
        stopping: StoppingRule | int = 200,
        on_generation: Callable[[GenerationRecord], None] | None = None,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[EngineCheckpoint], None] | None = None,
        migration_every: int = 0,
        on_migration: Callable[[Population, int, Callable[[], EngineCheckpoint]], None] | None = None,
    ) -> EvolutionResult:
        """Continue a checkpointed run exactly where it left off.

        Restores the population, the history, the generation counter and
        the RNG stream, then keeps stepping until ``stopping`` fires
        (count-based rules see the restored history, so e.g.
        ``MaxGenerations(200)`` means 200 generations *total*).  Given
        the same evaluator configuration, resume is bit-identical to
        never having stopped.  ``migration_every`` / ``on_migration``
        behave exactly as in :meth:`run`; a hook boundary the checkpoint
        already passed does not re-fire.
        """
        if not checkpoint.individuals:
            raise EvolutionError("checkpoint holds an empty population")
        self._rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
        return self._loop(
            population=Population(checkpoint.individuals),
            initial_snapshot=list(checkpoint.initial),
            history=EvolutionHistory(list(checkpoint.records)),
            generation=checkpoint.generation,
            stopping=stopping,
            on_generation=on_generation,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            migration_every=migration_every,
            on_migration=on_migration,
        )

    # -- internals ----------------------------------------------------------

    def _loop(
        self,
        population: Population,
        initial_snapshot: list[Individual],
        history: EvolutionHistory,
        generation: int,
        stopping: StoppingRule | int,
        on_generation: Callable[[GenerationRecord], None] | None,
        checkpoint_every: int,
        on_checkpoint: Callable[[EngineCheckpoint], None] | None,
        migration_every: int = 0,
        on_migration: Callable[[Population, int, Callable[[], EngineCheckpoint]], None] | None = None,
    ) -> EvolutionResult:
        if isinstance(stopping, int):
            stopping = MaxGenerations(stopping)
        if checkpoint_every < 0:
            raise EvolutionError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if migration_every < 0:
            raise EvolutionError(f"migration_every must be >= 0, got {migration_every}")
        emit = on_checkpoint if checkpoint_every else None
        migrate = on_migration if migration_every else None
        stepped = False
        while not stopping.should_stop(history):
            generation += 1
            # Pure observer: the span reads clocks only when a traced
            # job is active, and never touches the run's RNG streams.
            with trace_span("repro.engine.generation",
                            generation=generation) as span:
                record = self._step(population, generation)
                span.set(operator=record.operator,
                         evaluations=record.evaluations,
                         accepted=record.accepted)
            history.append(record)
            stepped = True
            if on_generation is not None:
                on_generation(record)
            if migrate is not None and generation % migration_every == 0:
                # The hook runs before the checkpoint emit so a
                # checkpoint at an exchange boundary captures the
                # post-injection population (resume-consistent).
                migrate(
                    population,
                    generation,
                    lambda: self._capture(population, initial_snapshot, history, generation),
                )
            if emit is not None and generation % checkpoint_every == 0:
                emit(self._capture(population, initial_snapshot, history, generation))
        if emit is not None and stepped and generation % checkpoint_every != 0:
            # Final partial interval, so a completed run's last checkpoint
            # always matches its returned result.
            emit(self._capture(population, initial_snapshot, history, generation))
        return EvolutionResult(initial=initial_snapshot, population=population, history=history)

    def _capture(
        self,
        population: Population,
        initial_snapshot: list[Individual],
        history: EvolutionHistory,
        generation: int,
    ) -> EngineCheckpoint:
        return EngineCheckpoint(
            generation=generation,
            initial=list(initial_snapshot),
            individuals=population.snapshot(),
            records=list(history.records),
            rng_state=copy.deepcopy(self._rng.bit_generator.state),
        )

    def _coerce_initial(
        self, initial: Sequence[CategoricalDataset] | Sequence[Individual]
    ) -> list[Individual]:
        if not initial:
            raise EvolutionError("initial population must not be empty")
        if isinstance(initial[0], Individual):
            return list(initial)  # type: ignore[arg-type]
        return self.evaluate_initial(initial)  # type: ignore[arg-type]

    def _leader_count(self, population: Population) -> int:
        return max(1, int(round(self.leader_fraction * len(population))))

    def _step(self, population: Population, generation: int) -> GenerationRecord:
        start = time.perf_counter()
        use_mutation = self._rng.random() < self.mutation_probability
        fitness_seconds = 0.0
        evaluations = 0
        accepted = False

        if use_mutation:
            operator = "mutation"
            parent_index = select_index(population, self.selection_strategy, self._rng)
            parent = population[parent_index]
            child_dataset = mutate(
                parent.dataset,
                self.evaluator.attributes,
                seed=self._rng,
                name=f"gen{generation}:mut({parent.dataset.name})",
            )
            t0 = time.perf_counter()
            # The mutation evaluation point emits a (singleton) batch:
            # evaluation is pure, so the RNG stream is untouched either way.
            (child_eval,) = self.evaluator.evaluate_many([child_dataset])
            fitness_seconds += time.perf_counter() - t0
            evaluations += 1
            child = Individual(child_dataset, child_eval, origin="mutation", birth_generation=generation)
            survivor = elitist_survivor(parent, child)
            if survivor is child:
                population.replace(parent_index, child)
                accepted = True
        else:
            operator = "crossover"
            leader_index = select_leader(population, self._leader_count(population), self._rng)
            mate_index = select_index(population, self.selection_strategy, self._rng)
            parents = (population[leader_index], population[mate_index])
            child_a_data, child_b_data = crossover(
                parents[0].dataset,
                parents[1].dataset,
                self.evaluator.attributes,
                seed=self._rng,
                names=(
                    f"gen{generation}:crossA",
                    f"gen{generation}:crossB",
                ),
            )
            t0 = time.perf_counter()
            # Both crossover offspring are one evaluation batch: shared
            # intermediates (and a pooled EM fit) are computed once.
            eval_a, eval_b = self.evaluator.evaluate_many([child_a_data, child_b_data])
            fitness_seconds += time.perf_counter() - t0
            evaluations += 2
            children = (
                Individual(child_a_data, eval_a, origin="crossover", birth_generation=generation),
                Individual(child_b_data, eval_b, origin="crossover", birth_generation=generation),
            )
            survivors = deterministic_crowding(parents, children, self.crowding_pairing)
            for slot, index in enumerate((leader_index, mate_index)):
                if survivors[slot] is children[slot]:
                    population.replace(index, children[slot])
                    accepted = True

        max_score, mean_score, min_score = population.score_summary()
        total_seconds = time.perf_counter() - start
        registry = get_registry()
        if registry.enabled:
            # Pure observation of already-computed values: no clock reads
            # beyond the ones the record itself needs, and no RNG access,
            # so seeded runs stay bit-identical with telemetry on or off.
            registry.observe("repro_engine_generation_seconds", total_seconds,
                             operator=operator)
            registry.inc("repro_engine_evaluations_total", evaluations,
                         operator=operator)
            emit_event(
                "generation",
                generation=generation,
                operator=operator,
                best=min_score,
                mean=mean_score,
                evaluations=evaluations,
                fitness_seconds=round(fitness_seconds, 6),
                total_seconds=round(total_seconds, 6),
                accepted=accepted,
            )
        return GenerationRecord(
            generation=generation,
            operator=operator,
            max_score=max_score,
            mean_score=mean_score,
            min_score=min_score,
            evaluations=evaluations,
            fitness_seconds=fitness_seconds,
            other_seconds=max(0.0, total_seconds - fitness_seconds),
            accepted=accepted,
        )
