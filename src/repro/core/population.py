"""The GA population: a fixed-size collection of scored protections.

The population size never changes during a run (the paper's replacement
is strictly one-for-one: elitism for mutation, deterministic crowding
for crossover), so :class:`Population` is a thin mutable container with
score-ordered views and the summary statistics the paper's figures plot.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.individual import Individual
from repro.exceptions import EvolutionError


class Population:
    """Fixed-size, index-addressable collection of individuals."""

    def __init__(self, individuals: Sequence[Individual]) -> None:
        if not individuals:
            raise EvolutionError("population must not be empty")
        self._individuals = list(individuals)

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._individuals)

    def __getitem__(self, index: int) -> Individual:
        return self._individuals[index]

    def replace(self, index: int, individual: Individual) -> None:
        """One-for-one replacement at ``index`` (size is invariant)."""
        if not 0 <= index < len(self._individuals):
            raise EvolutionError(f"index {index} out of range for population of {len(self)}")
        self._individuals[index] = individual

    # -- score views ----------------------------------------------------

    def scores(self) -> np.ndarray:
        """Vector of aggregated scores, population order."""
        return np.array([ind.score for ind in self._individuals], dtype=np.float64)

    def sorted_indices(self) -> np.ndarray:
        """Population indices ordered best (lowest score) first."""
        return np.argsort(self.scores(), kind="stable")

    def best(self) -> Individual:
        """The individual with the lowest score."""
        return self._individuals[int(self.sorted_indices()[0])]

    def worst(self) -> Individual:
        """The individual with the highest score."""
        return self._individuals[int(self.sorted_indices()[-1])]

    def leaders(self, count: int) -> list[int]:
        """Indices of the ``count`` best individuals (the paper's leader group)."""
        if count < 1:
            raise EvolutionError(f"leader group size must be >= 1, got {count}")
        return [int(i) for i in self.sorted_indices()[:count]]

    # -- statistics for the paper's figures -----------------------------

    def score_summary(self) -> tuple[float, float, float]:
        """(max, mean, min) of the population scores — one evolution-figure row."""
        scores = self.scores()
        return float(scores.max()), float(scores.mean()), float(scores.min())

    def dispersion(self) -> list[tuple[float, float]]:
        """(IL, DR) pairs of all individuals — one dispersion-figure cloud."""
        return [(ind.information_loss, ind.disclosure_risk) for ind in self._individuals]

    def mean_imbalance(self) -> float:
        """Mean |IL - DR| across the population (balance diagnostic, §3.2)."""
        return float(np.mean([ind.evaluation.imbalance() for ind in self._individuals]))

    def snapshot(self) -> list[Individual]:
        """Shallow copy of the member list (individuals are immutable)."""
        return list(self._individuals)
