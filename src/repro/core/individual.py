"""GA individuals: one protected file plus its evaluation.

The paper's genotype encoding (its §2.1) stores chromosomes as the
protected data files themselves, with the category values as genes.  An
:class:`Individual` wraps the protected
:class:`~repro.data.dataset.CategoricalDataset` together with its
:class:`~repro.metrics.evaluation.ProtectionScore` and a little lineage
metadata used by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import CategoricalDataset
from repro.metrics.evaluation import ProtectionScore


@dataclass(frozen=True)
class Individual:
    """A scored protected file inside the GA population."""

    dataset: CategoricalDataset
    evaluation: ProtectionScore
    origin: str = "initial"
    birth_generation: int = 0

    @property
    def score(self) -> float:
        """Aggregated fitness score (lower is better)."""
        return self.evaluation.score

    @property
    def information_loss(self) -> float:
        """IL component of the evaluation."""
        return self.evaluation.information_loss

    @property
    def disclosure_risk(self) -> float:
        """DR component of the evaluation."""
        return self.evaluation.disclosure_risk

    def genotype_distance(self, other: "Individual") -> int:
        """Number of cells where the two protected files differ.

        Deterministic crowding uses this to pair offspring with the most
        similar parent when index pairing is disabled.
        """
        return self.dataset.cells_changed(other.dataset)

    def __str__(self) -> str:
        return f"Individual({self.dataset.name!r}, {self.evaluation})"
