"""Genetic operators on protected files (paper §2.2).

Both operators act directly on category values — there is no binary
encoding — and only on the *protected attributes* (all individuals agree
with the original everywhere else, so touching other cells would only
leak unprotected data into the search).

* :func:`mutate` — pick one gene (a cell of a protected attribute) at
  random and replace it with a *different* valid category of that
  attribute's domain, drawn uniformly.
* :func:`crossover` — 2-point crossover at the category level: flatten
  the protected cells in record-major order, draw position ``s`` and a
  second position ``r`` uniformly from ``[s, L-1]``, and swap the cell
  range ``s..r`` (inclusive) between the two files, producing two
  offspring.  When ``s == r`` exactly one value is exchanged, matching
  the paper's special case.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes
from repro.exceptions import EvolutionError
from repro.utils.rng import as_generator


def mutate(
    dataset: CategoricalDataset,
    attributes: Sequence[str],
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> CategoricalDataset:
    """Return a copy of ``dataset`` with one protected cell resampled."""
    columns = require_attributes(dataset, attributes)
    if not columns:
        raise EvolutionError("mutation needs at least one protected attribute")
    rng = as_generator(seed)

    mutable_columns = [c for c in columns if dataset.schema.domain(c).size > 1]
    if not mutable_columns:
        raise EvolutionError("all protected attributes have single-category domains")
    column = mutable_columns[int(rng.integers(len(mutable_columns)))]
    row = int(rng.integers(dataset.n_records))
    domain = dataset.schema.domain(column)

    current = int(dataset.codes[row, column])
    # Uniform draw over the *other* categories: shift draws >= current up by one.
    draw = int(rng.integers(domain.size - 1))
    new_value = draw + 1 if draw >= current else draw

    codes = dataset.codes_copy()
    codes[row, column] = new_value
    return dataset.with_codes(codes, name=name if name is not None else dataset.name)


def crossover(
    first: CategoricalDataset,
    second: CategoricalDataset,
    attributes: Sequence[str],
    seed: int | np.random.Generator | None = None,
    names: tuple[str, str] | None = None,
) -> tuple[CategoricalDataset, CategoricalDataset]:
    """2-point category-level crossover; returns the two offspring."""
    first.require_compatible(second)
    columns = require_attributes(first, attributes)
    if not columns:
        raise EvolutionError("crossover needs at least one protected attribute")
    rng = as_generator(seed)

    length = first.n_records * len(columns)
    s = int(rng.integers(length))
    r = int(rng.integers(s, length))

    codes_a = first.codes_copy()
    codes_b = second.codes_copy()
    # Views of the protected cells, flattened record-major: position
    # p = row * len(columns) + slot.
    flat_a = codes_a[:, columns].reshape(-1)
    flat_b = codes_b[:, columns].reshape(-1)
    segment_a = flat_a[s : r + 1].copy()
    flat_a[s : r + 1] = flat_b[s : r + 1]
    flat_b[s : r + 1] = segment_a
    # reshape(-1) on a sliced column subset copies, so write back explicitly.
    codes_a[:, columns] = flat_a.reshape(first.n_records, len(columns))
    codes_b[:, columns] = flat_b.reshape(first.n_records, len(columns))

    name_a, name_b = names if names is not None else (first.name, second.name)
    return (
        first.with_codes(codes_a, name=name_a),
        second.with_codes(codes_b, name=name_b),
    )


def crossover_points(length: int, seed: int | np.random.Generator | None = None) -> tuple[int, int]:
    """Draw the paper's (s, r) crossover point pair for a chromosome of ``length``."""
    if length < 1:
        raise EvolutionError(f"chromosome length must be >= 1, got {length}")
    rng = as_generator(seed)
    s = int(rng.integers(length))
    r = int(rng.integers(s, length))
    return s, r
