"""Stopping rules for the evolutionary run.

The paper's Algorithm 1 leaves ``stopping(P(t))`` abstract; these rules
cover the practical choices: a generation budget, stagnation of the mean
score, and a target score, combinable with :class:`AnyOf`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.history import EvolutionHistory
from repro.exceptions import EvolutionError


class StoppingRule(ABC):
    """Decides after each generation whether the run should end."""

    @abstractmethod
    def should_stop(self, history: EvolutionHistory) -> bool:
        """True when the run must stop given the history so far."""


class MaxGenerations(StoppingRule):
    """Stop after a fixed number of generations."""

    def __init__(self, generations: int) -> None:
        if generations < 1:
            raise EvolutionError(f"generations must be >= 1, got {generations}")
        self.generations = generations

    def should_stop(self, history: EvolutionHistory) -> bool:
        return len(history) >= self.generations

    def __repr__(self) -> str:
        return f"MaxGenerations({self.generations})"


class Stagnation(StoppingRule):
    """Stop when the mean score stops improving.

    The rule fires when the best mean score seen has not improved by at
    least ``min_delta`` for ``patience`` consecutive generations.
    """

    def __init__(self, patience: int = 50, min_delta: float = 1e-6) -> None:
        if patience < 1:
            raise EvolutionError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise EvolutionError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = patience
        self.min_delta = min_delta

    def should_stop(self, history: EvolutionHistory) -> bool:
        means = history.mean_scores
        if len(means) <= self.patience:
            return False
        window_best = min(means[-self.patience :])
        earlier_best = min(means[: -self.patience])
        return window_best > earlier_best - self.min_delta

    def __repr__(self) -> str:
        return f"Stagnation(patience={self.patience}, min_delta={self.min_delta})"


class TargetScore(StoppingRule):
    """Stop when the population minimum score reaches ``target``."""

    def __init__(self, target: float) -> None:
        if target < 0:
            raise EvolutionError(f"target must be >= 0, got {target}")
        self.target = target

    def should_stop(self, history: EvolutionHistory) -> bool:
        return bool(history.min_scores) and history.min_scores[-1] <= self.target

    def __repr__(self) -> str:
        return f"TargetScore({self.target})"


class AnyOf(StoppingRule):
    """Stop when any of the wrapped rules fires."""

    def __init__(self, rules: Sequence[StoppingRule]) -> None:
        if not rules:
            raise EvolutionError("AnyOf needs at least one rule")
        self.rules = tuple(rules)

    def should_stop(self, history: EvolutionHistory) -> bool:
        return any(rule.should_stop(history) for rule in self.rules)

    def __repr__(self) -> str:
        return f"AnyOf({list(self.rules)!r})"
