"""Harness reproducing the paper's three experiments and all figures."""

from repro.experiments.experiment1 import (
    EXPERIMENT1_DATASETS,
    EXPERIMENT1_FIGURES,
    experiment1_config,
    run_experiment1,
)
from repro.experiments.experiment2 import (
    EXPERIMENT2_DATASETS,
    EXPERIMENT2_FIGURES,
    experiment2_config,
    run_experiment2,
)
from repro.experiments.experiment3 import (
    EXPERIMENT3_FRACTIONS,
    RobustnessComparison,
    compare_robustness,
    experiment3_config,
    run_experiment3,
)
from repro.experiments.export import (
    export_dispersion_csv,
    export_evolution_csv,
    export_experiment,
    export_improvements_csv,
)
from repro.experiments.figures import (
    DispersionData,
    dispersion_data,
    evolution_rows,
    improvement_rows,
)
from repro.experiments.population_builder import (
    PAPER_MIXES,
    PopulationMix,
    build_initial_population,
    build_method_suite,
)
from repro.experiments.reporting import (
    render_dispersion,
    render_evolution,
    render_improvements,
    render_timing,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    default_generations,
    drop_best,
    run_experiment,
    run_replicates,
)

__all__ = [
    "PopulationMix",
    "PAPER_MIXES",
    "build_initial_population",
    "build_method_suite",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_replicates",
    "drop_best",
    "default_generations",
    "experiment1_config",
    "run_experiment1",
    "EXPERIMENT1_DATASETS",
    "EXPERIMENT1_FIGURES",
    "experiment2_config",
    "run_experiment2",
    "EXPERIMENT2_DATASETS",
    "EXPERIMENT2_FIGURES",
    "experiment3_config",
    "run_experiment3",
    "EXPERIMENT3_FRACTIONS",
    "RobustnessComparison",
    "compare_robustness",
    "DispersionData",
    "dispersion_data",
    "evolution_rows",
    "improvement_rows",
    "render_dispersion",
    "render_evolution",
    "render_improvements",
    "render_timing",
    "export_dispersion_csv",
    "export_evolution_csv",
    "export_improvements_csv",
    "export_experiment",
]
