"""Paper experiment 2 (§3.2): max-score fitness on all four datasets.

Reproduces Figures 9–16 (dispersion + evolution under the Eq. 2 max
score), the §3.2 improvement percentages, the balance observation (final
clouds concentrate around IL ~= DR), and the per-generation timing
breakdown reported at the end of §3.2.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    default_generations,
    run_experiment,
)

#: Dataset order of the paper's §3.2 figure discussion.
EXPERIMENT2_DATASETS = ("adult", "housing", "german", "flare")

#: Which paper figure each dataset's artifacts correspond to.
EXPERIMENT2_FIGURES = {
    "adult": {"dispersion": 9, "evolution": 10},
    "housing": {"dispersion": 11, "evolution": 12},
    "german": {"dispersion": 13, "evolution": 14},
    "flare": {"dispersion": 15, "evolution": 16},
}


def experiment2_config(dataset: str, generations: int | None = None, seed: int = 42) -> ExperimentConfig:
    """The §3.2 configuration for one dataset (Eq. 2 max score)."""
    return ExperimentConfig(
        dataset=dataset,
        score="max",
        generations=generations if generations is not None else default_generations(),
        seed=seed,
    )


def run_experiment2(dataset: str, generations: int | None = None, seed: int = 42) -> ExperimentResult:
    """Run §3.2 for one dataset and return the full result."""
    return run_experiment(experiment2_config(dataset, generations=generations, seed=seed))
