"""Paper experiment 1 (§3.1): mean-score fitness on all four datasets.

Reproduces Figures 1–8: for each dataset, run the GA with the Eq. 1 mean
score and extract the initial/final dispersion clouds and the
max/mean/min score evolution, plus the in-text improvement percentages.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    default_generations,
    run_experiment,
)

#: Dataset order of the paper's §3.1 figure discussion.
EXPERIMENT1_DATASETS = ("adult", "housing", "german", "flare")

#: Which paper figure each dataset's artifacts correspond to.
EXPERIMENT1_FIGURES = {
    "adult": {"dispersion": 1, "evolution": 2},
    "housing": {"dispersion": 3, "evolution": 4},
    "german": {"dispersion": 5, "evolution": 6},
    "flare": {"dispersion": 7, "evolution": 8},
}


def experiment1_config(dataset: str, generations: int | None = None, seed: int = 42) -> ExperimentConfig:
    """The §3.1 configuration for one dataset (Eq. 1 mean score)."""
    return ExperimentConfig(
        dataset=dataset,
        score="mean",
        generations=generations if generations is not None else default_generations(),
        seed=seed,
    )


def run_experiment1(dataset: str, generations: int | None = None, seed: int = 42) -> ExperimentResult:
    """Run §3.1 for one dataset and return the full result."""
    return run_experiment(experiment1_config(dataset, generations=generations, seed=seed))
