"""CSV export of figure data series.

The benchmarks print ASCII renderings; this module writes the underlying
series as CSV so users can re-plot the paper's figures with their own
tooling.  One file per artifact:

* ``<stem>_dispersion.csv`` — ``phase,il,dr`` rows (phase is ``initial``
  or ``final``) — the dispersion figures;
* ``<stem>_evolution.csv`` — ``generation,max,mean,min`` rows — the
  evolution figures;
* ``<stem>_improvements.csv`` — ``series,initial,final,improvement_pct``
  rows — the in-text numbers.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.engine import EvolutionResult
from repro.core.history import EvolutionHistory
from repro.experiments.figures import dispersion_data, evolution_rows, improvement_rows


def export_dispersion_csv(result: EvolutionResult, path: str | Path) -> Path:
    """Write the initial/final (IL, DR) clouds of ``result`` to ``path``."""
    path = Path(path)
    data = dispersion_data(result)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["phase", "il", "dr"])
        for il, dr in data.initial:
            writer.writerow(["initial", f"{il:.6f}", f"{dr:.6f}"])
        for il, dr in data.final:
            writer.writerow(["final", f"{il:.6f}", f"{dr:.6f}"])
    return path


def export_evolution_csv(history: EvolutionHistory, path: str | Path) -> Path:
    """Write the per-generation max/mean/min score series to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["generation", "max", "mean", "min"])
        for generation, max_s, mean_s, min_s in evolution_rows(history):
            writer.writerow([generation, f"{max_s:.6f}", f"{mean_s:.6f}", f"{min_s:.6f}"])
    return path


def export_improvements_csv(history: EvolutionHistory, path: str | Path) -> Path:
    """Write the initial/final/percent rows per score series to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "initial", "final", "improvement_pct"])
        for series, initial, final, percent in improvement_rows(history):
            writer.writerow([series, f"{initial:.6f}", f"{final:.6f}", f"{percent:.6f}"])
    return path


def export_experiment(result: EvolutionResult, directory: str | Path, stem: str) -> list[Path]:
    """Write all three artifacts of one run under ``directory``; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        export_dispersion_csv(result, directory / f"{stem}_dispersion.csv"),
        export_evolution_csv(result.history, directory / f"{stem}_evolution.csv"),
        export_improvements_csv(result.history, directory / f"{stem}_improvements.csv"),
    ]
