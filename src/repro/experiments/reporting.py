"""Plain-text rendering of experiment outputs.

The benchmarks and examples print the same rows/series the paper's
figures plot; this module renders them: score-series tables, improvement
summaries, and a small ASCII scatter for the dispersion figures so runs
are eyeballable straight from a terminal or CI log.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.history import EvolutionHistory
from repro.experiments.figures import DispersionData, evolution_rows, improvement_rows
from repro.utils.tables import format_table


def render_improvements(history: EvolutionHistory, title: str) -> str:
    """The paper's in-text numbers: initial -> final per score series."""
    return format_table(
        ["series", "initial", "final", "improvement %"],
        improvement_rows(history),
        title=title,
    )


def render_evolution(history: EvolutionHistory, title: str, max_rows: int = 20) -> str:
    """Evolution-figure series as a table, subsampled to ``max_rows``."""
    stride = max(1, len(history) // max_rows)
    return format_table(
        ["generation", "max", "mean", "min"],
        evolution_rows(history, stride=stride),
        title=title,
    )


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    marker: str,
    grid: list[list[str]] | None = None,
    width: int = 56,
    height: int = 18,
    limit: float = 100.0,
) -> list[list[str]]:
    """Place ``points`` (x=IL, y=DR in [0, limit]) onto a character grid.

    Call once per cloud with different markers, then render with
    :func:`render_grid`; later markers overwrite earlier ones.
    """
    if grid is None:
        grid = [[" "] * width for _ in range(height)]
    for il, dr in points:
        x = min(width - 1, max(0, int(il / limit * (width - 1))))
        y = min(height - 1, max(0, int(dr / limit * (height - 1))))
        grid[height - 1 - y][x] = marker
    return grid


def render_grid(grid: list[list[str]], title: str, x_label: str = "IL", y_label: str = "DR") -> str:
    """Render an :func:`ascii_scatter` grid with a frame and axis labels."""
    width = len(grid[0]) if grid else 0
    lines = [title, f"{y_label} ^"]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}")
    return "\n".join(lines)


def render_dispersion(data: DispersionData, title: str) -> str:
    """Initial (o) vs final (x) dispersion clouds as ASCII art + imbalance."""
    grid = ascii_scatter(data.initial, "o")
    grid = ascii_scatter(data.final, "x", grid=grid)
    body = render_grid(grid, title)
    return (
        f"{body}\n"
        f"  mean |IL-DR|: initial {data.initial_mean_imbalance():.2f} "
        f"-> final {data.final_mean_imbalance():.2f}   (o initial, x final)"
    )


def render_timing(history: EvolutionHistory, title: str) -> str:
    """Per-operator timing table (paper §3.2 in-text timing)."""
    rows = []
    for operator, stats in history.operator_timing().items():
        rows.append(
            [
                operator,
                int(stats["generations"]),
                stats["fitness_seconds"],
                stats["other_seconds"],
                stats["total_seconds"],
            ]
        )
    return format_table(
        ["operator", "generations", "fitness s/gen", "other s/gen", "total s/gen"],
        rows,
        title=title,
    )
