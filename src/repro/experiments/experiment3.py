"""Paper experiment 3 (§3.3): robustness to missing elite protections.

Reproduces Figures 17–20: rerun the Flare dataset under the Eq. 2 max
score, but remove the best 5% / 10% of the initial population before
evolving.  The paper's claim: the final minimum score lands within about
a point of the full-population run (1.33 / 1.08 points there), i.e. the
GA rebuilds the missing elite from worse material.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.experiment2 import run_experiment2
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    default_generations,
    run_experiment,
)

#: Robustness truncations the paper studies, with their figure numbers.
EXPERIMENT3_FRACTIONS = {0.05: {"dispersion": 17, "evolution": 19}, 0.10: {"dispersion": 18, "evolution": 20}}


def experiment3_config(
    drop_best_fraction: float,
    generations: int | None = None,
    seed: int = 42,
) -> ExperimentConfig:
    """The §3.3 configuration (Flare, Eq. 2, truncated initial population)."""
    return ExperimentConfig(
        dataset="flare",
        score="max",
        generations=generations if generations is not None else default_generations(),
        seed=seed,
        drop_best_fraction=drop_best_fraction,
    )


def run_experiment3(
    drop_best_fraction: float,
    generations: int | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Run §3.3 for one truncation fraction and return the full result."""
    return run_experiment(
        experiment3_config(drop_best_fraction, generations=generations, seed=seed)
    )


@dataclass(frozen=True)
class RobustnessComparison:
    """Minimum-score gap between a truncated run and the full-population run."""

    drop_best_fraction: float
    full_min_score: float
    truncated_min_score: float

    @property
    def gap(self) -> float:
        """Truncated-run minimum minus full-run minimum (paper: ~1 point)."""
        return self.truncated_min_score - self.full_min_score


def compare_robustness(
    drop_best_fraction: float,
    generations: int | None = None,
    seed: int = 42,
) -> tuple[ExperimentResult, ExperimentResult, RobustnessComparison]:
    """Run the full and truncated §3.3 variants and compare their minima."""
    full = run_experiment2("flare", generations=generations, seed=seed)
    truncated = run_experiment3(drop_best_fraction, generations=generations, seed=seed)
    comparison = RobustnessComparison(
        drop_best_fraction=drop_best_fraction,
        full_min_score=full.history.min_scores[-1],
        truncated_min_score=truncated.history.min_scores[-1],
    )
    return full, truncated, comparison
