"""One-call experiment runner shared by the paper's three experiments.

An :class:`ExperimentConfig` nails down everything a paper run needs —
dataset, score function, GA parameters, run length, seeds, and the
robustness truncation of experiment 3 — and :func:`run_experiment`
executes it, returning an :class:`ExperimentResult` that carries the
evolution result plus the figure-ready series.

Run lengths default to a laptop-scale budget; set the environment
variable ``REPRO_FULL=1`` (or pass ``generations`` explicitly) for
longer, closer-to-paper runs.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.engine import EngineCheckpoint, EvolutionaryProtector, EvolutionResult
from repro.core.individual import Individual
from repro.datasets.registry import load_dataset, protected_attributes
from repro.exceptions import ExperimentError
from repro.experiments.population_builder import build_initial_population
from repro.metrics.evaluation import ProtectionEvaluator, ScoreCache
from repro.metrics.score import score_function_by_name

if TYPE_CHECKING:
    from repro.service.job import JobResult


def default_generations(fallback: int = 300) -> int:
    """Generation budget: ``fallback`` normally, 5x under ``REPRO_FULL=1``."""
    if os.environ.get("REPRO_FULL", "") == "1":
        return fallback * 5
    return fallback


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one paper run.

    ``eval_workers`` / ``eval_backend`` configure in-run parallel
    fitness evaluation: with ``eval_workers >= 2`` the evaluator fans
    fresh evaluation batches out over that many ``thread`` or
    ``process`` workers.  Evaluation is pure, so these are throughput
    knobs only — a run's results are bit-identical whatever their
    values (and they are excluded from job fingerprints for the same
    reason).
    """

    dataset: str
    score: str = "max"
    generations: int = 300
    seed: int = 42
    population_seed: int = 0
    drop_best_fraction: float = 0.0
    mutation_probability: float = 0.5
    leader_fraction: float = 0.1
    selection_strategy: str = "proportional"
    eval_workers: int = 0
    eval_backend: str = "thread"

    def __post_init__(self) -> None:
        if not 0 <= self.drop_best_fraction < 1:
            raise ExperimentError(
                f"drop_best_fraction must be in [0, 1), got {self.drop_best_fraction}"
            )
        if self.eval_workers < 0:
            raise ExperimentError(
                f"eval_workers must be >= 0, got {self.eval_workers}"
            )
        if self.eval_backend not in ("thread", "process"):
            raise ExperimentError(
                f"eval_backend must be 'thread' or 'process', got {self.eval_backend!r}"
            )


@dataclass(frozen=True)
class ExperimentResult:
    """A finished run plus the context needed to report it."""

    config: ExperimentConfig
    result: EvolutionResult
    evaluator: ProtectionEvaluator
    dropped: list[Individual] = field(default_factory=list)

    @property
    def history(self):
        return self.result.history

    def summary_rows(self) -> list[list[object]]:
        """max/mean/min initial -> final rows, the paper's in-text numbers."""
        rows = []
        for series in ("max", "mean", "min"):
            initial, final, percent = self.history.improvement(series)
            rows.append([series, initial, final, percent])
        return rows


def drop_best(
    individuals: list[Individual], fraction: float
) -> tuple[list[Individual], list[Individual]]:
    """Remove the best ``fraction`` of individuals by score (experiment 3).

    Returns ``(kept, dropped)``.  At least two individuals are always
    kept so the GA remains runnable.
    """
    if not 0 <= fraction < 1:
        raise ExperimentError(f"fraction must be in [0, 1), got {fraction}")
    if fraction == 0:
        return list(individuals), []
    ordered = sorted(individuals, key=lambda ind: ind.score)
    n_drop = min(int(round(len(ordered) * fraction)), max(0, len(ordered) - 2))
    return ordered[n_drop:], ordered[:n_drop]


def run_experiment(
    config: ExperimentConfig,
    evaluation_cache: ScoreCache | None = None,
    checkpoint_every: int = 0,
    on_checkpoint: Callable[[EngineCheckpoint], None] | None = None,
    resume_from: EngineCheckpoint | None = None,
) -> ExperimentResult:
    """Execute one configured paper run end to end.

    ``evaluation_cache`` is handed to the evaluator as its persistent
    score store, so repeated runs skip already-scored candidates.
    ``checkpoint_every`` / ``on_checkpoint`` forward to the engine's
    checkpoint hook, and ``resume_from`` continues a checkpointed run
    instead of building and scoring a fresh initial population (the
    individuals dropped by ``drop_best_fraction`` are not part of a
    checkpoint, so a resumed result reports none).
    """
    original = load_dataset(config.dataset)
    attributes = protected_attributes(config.dataset)
    executor = None
    if config.eval_workers >= 2:
        # Imported lazily: the service layer sits above this module.
        from repro.service.backends import create_backend

        executor = create_backend(config.eval_backend, max_workers=config.eval_workers)
    evaluator = ProtectionEvaluator(
        original,
        attributes,
        score_function=score_function_by_name(config.score),
        persistent_cache=evaluation_cache,
        executor=executor,
    )
    engine = EvolutionaryProtector(
        evaluator,
        mutation_probability=config.mutation_probability,
        leader_fraction=config.leader_fraction,
        selection_strategy=config.selection_strategy,
        seed=config.seed,
    )
    if resume_from is not None:
        result = engine.resume(
            resume_from,
            stopping=config.generations,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
        return ExperimentResult(config=config, result=result, evaluator=evaluator)
    protections = build_initial_population(
        original, dataset_name=config.dataset, seed=config.population_seed
    )
    individuals = engine.evaluate_initial(protections)
    kept, dropped = drop_best(individuals, config.drop_best_fraction)
    result = engine.run(
        kept,
        stopping=config.generations,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
    return ExperimentResult(config=config, result=result, evaluator=evaluator, dropped=dropped)


def run_replicates(
    config: ExperimentConfig,
    seeds: Sequence[int],
    backend: str = "serial",
    max_workers: int | None = None,
    cache_path: str | None = None,
) -> "list[JobResult]":
    """Run one configuration under several seeds through the job service.

    Routes the replicates through :class:`repro.service.runner.JobRunner`
    (imported lazily — the service layer sits above this module), so the
    fan-out honours the chosen execution backend and, when ``cache_path``
    is given, shares one persistent evaluation cache across replicates.
    """
    from repro.service.job import ProtectionJob
    from repro.service.runner import JobRunner

    runner = JobRunner(backend=backend, max_workers=max_workers, cache_path=cache_path)
    return runner.run_replicates(ProtectionJob.from_config(config), seeds)
