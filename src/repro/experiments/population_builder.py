"""Initial populations of protections — the paper's §3 setup.

For each dataset the paper builds a population of protected files by
sweeping the parameters of six state-of-the-art methods:

=========  ====  ======  =====  =====
method     housing  german  flare  adult
=========  ====  ======  =====  =====
microagg    72      72     72     48
bottom       6       4      4      6
top          6       4      4      6
recoding     6       4      4      6
rankswap    11      11     11     11
PRAM         9       9      9      9
total      110     104    104     86
=========  ====  ======  =====  =====

The paper gives the counts but not the exact parameter grids; we use the
natural sweeps below (documented in DESIGN.md):

* microaggregation — ``k = 2..9`` crossed with 9 partition variants
  (univariate, the 6 joint permutations of the protected attributes and
  2 reduced joint sorts); Adult uses 6 variants (univariate + 5 joint).
* bottom / top coding — collapsed-tail fractions from 10% upward.
* global recoding — generalization levels crossed with mode / median
  group representatives.
* rank swapping — ``p = 1..11`` percent.
* PRAM — five basic ``theta`` values and four invariant-PRAM values.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import permutations

from repro.data.dataset import CategoricalDataset
from repro.datasets.registry import PAPER_SPECS, protected_attributes
from repro.exceptions import ExperimentError
from repro.methods.base import ProtectionMethod
from repro.methods.global_recoding import GlobalRecoding
from repro.methods.microaggregation import Microaggregation
from repro.methods.pram import InvariantPram, Pram
from repro.methods.rank_swapping import RankSwapping
from repro.methods.top_bottom_coding import BottomCoding, TopCoding
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PopulationMix:
    """How many protections of each method family to generate."""

    microaggregation: int
    bottom_coding: int
    top_coding: int
    global_recoding: int
    rank_swapping: int
    pram: int

    @property
    def total(self) -> int:
        return (
            self.microaggregation
            + self.bottom_coding
            + self.top_coding
            + self.global_recoding
            + self.rank_swapping
            + self.pram
        )


#: The paper's per-dataset population mixes (its §3).
PAPER_MIXES: dict[str, PopulationMix] = {
    "housing": PopulationMix(72, 6, 6, 6, 11, 9),
    "german": PopulationMix(72, 4, 4, 4, 11, 9),
    "flare": PopulationMix(72, 4, 4, 4, 11, 9),
    "adult": PopulationMix(48, 6, 6, 6, 11, 9),
}


def _microaggregation_variants(attributes: Sequence[str], count: int) -> list[ProtectionMethod]:
    """``count`` microaggregation configurations: k-sweep x partition variants."""
    attrs = tuple(attributes)
    partition_variants: list[dict[str, object]] = [{"strategy": "univariate"}]
    for perm in permutations(attrs):
        partition_variants.append({"strategy": "joint", "sort_attributes": perm})
    if len(attrs) >= 2:
        partition_variants.append({"strategy": "joint", "sort_attributes": attrs[:2]})
        partition_variants.append({"strategy": "joint", "sort_attributes": attrs[-2:]})

    # Deterministic grid, k-major over partition variants: with the
    # paper's counts this is k = 2..9 x 9 variants (72) for three-attribute
    # datasets and k = 2..9 x 6 variants (48) for Adult.  Prefer a variant
    # count that divides the total so the grid is balanced in k.
    methods: list[ProtectionMethod] = []
    if count % 8 == 0 and 1 <= count // 8 <= len(partition_variants):
        # The paper's grids sweep k = 2..9 (8 values): 72 = 8 x 9, 48 = 8 x 6.
        n_variants = count // 8
    else:
        n_variants = max(1, min(len(partition_variants), count))
        while n_variants > 1 and count % n_variants != 0:
            n_variants -= 1
    n_k = -(-count // n_variants)  # ceil
    for k_value in range(2, 2 + n_k):
        for params in partition_variants[:n_variants]:
            if len(methods) == count:
                break
            methods.append(Microaggregation(k=k_value, **params))  # type: ignore[arg-type]
    return methods


def _tail_fractions(count: int) -> list[float]:
    return [0.10 + 0.05 * i for i in range(count)]


def _recoding_variants(count: int) -> list[ProtectionMethod]:
    grid = [
        GlobalRecoding(level=level, representative=rep)
        for level in (1, 2, 3)
        for rep in ("mode", "median")
    ]
    return grid[:count] if count <= len(grid) else grid + [
        GlobalRecoding(level=4 + i, representative="mode") for i in range(count - len(grid))
    ]


def _pram_variants(count: int) -> list[ProtectionMethod]:
    basic = [Pram(theta=t) for t in (0.05, 0.10, 0.15, 0.20, 0.25)]
    invariant = [InvariantPram(theta=t) for t in (0.10, 0.20, 0.30, 0.40)]
    grid: list[ProtectionMethod] = basic + invariant
    while len(grid) < count:
        grid.append(Pram(theta=0.30 + 0.05 * (len(grid) - 9)))
    return grid[:count]


def build_method_suite(attributes: Sequence[str], mix: PopulationMix) -> list[ProtectionMethod]:
    """The configured method list realizing ``mix`` (order: paper's listing)."""
    methods: list[ProtectionMethod] = []
    methods.extend(_microaggregation_variants(attributes, mix.microaggregation))
    methods.extend(BottomCoding(fraction=f) for f in _tail_fractions(mix.bottom_coding))
    methods.extend(TopCoding(fraction=f) for f in _tail_fractions(mix.top_coding))
    methods.extend(_recoding_variants(mix.global_recoding))
    methods.extend(RankSwapping(p=p) for p in range(1, mix.rank_swapping + 1))
    methods.extend(_pram_variants(mix.pram))
    return methods


def build_initial_population(
    original: CategoricalDataset,
    dataset_name: str | None = None,
    attributes: Sequence[str] | None = None,
    mix: PopulationMix | None = None,
    seed: int | None = 0,
) -> list[CategoricalDataset]:
    """Generate the paper's initial protection population for ``original``.

    Either ``dataset_name`` (one of the paper's four, supplying both the
    protected attributes and the mix) or explicit ``attributes`` (+
    optional ``mix``, defaulting to the Flare/German mix) must be given.
    """
    if dataset_name is not None:
        if dataset_name not in PAPER_SPECS:
            raise ExperimentError(
                f"unknown dataset {dataset_name!r}; available: {', '.join(PAPER_SPECS)}"
            )
        attributes = attributes or protected_attributes(dataset_name)
        mix = mix or PAPER_MIXES[dataset_name]
    if attributes is None:
        raise ExperimentError("need dataset_name or explicit attributes")
    mix = mix or PAPER_MIXES["flare"]

    rng = as_generator(seed)
    methods = build_method_suite(attributes, mix)
    protections = []
    for index, method in enumerate(methods):
        protected = method.protect(
            original,
            attributes,
            seed=rng,
            name=f"{original.name}#{index:03d}:{method.describe()}",
        )
        protections.append(protected)
    return protections
