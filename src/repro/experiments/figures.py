"""Figure-ready data series extracted from experiment results.

Each helper returns plain rows/series matching what one paper figure
plots; the benchmarks print them and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EvolutionResult
from repro.core.history import EvolutionHistory


@dataclass(frozen=True)
class DispersionData:
    """The (IL, DR) clouds of one dispersion figure (initial vs final)."""

    initial: list[tuple[float, float]]
    final: list[tuple[float, float]]

    def initial_mean_imbalance(self) -> float:
        """Mean |IL - DR| of the initial cloud."""
        if not self.initial:
            return 0.0
        return sum(abs(il - dr) for il, dr in self.initial) / len(self.initial)

    def final_mean_imbalance(self) -> float:
        """Mean |IL - DR| of the final cloud."""
        if not self.final:
            return 0.0
        return sum(abs(il - dr) for il, dr in self.final) / len(self.final)


def dispersion_data(result: EvolutionResult) -> DispersionData:
    """Initial/final (IL, DR) clouds — one dispersion figure."""
    return DispersionData(
        initial=result.initial_dispersion(),
        final=result.final_dispersion(),
    )


def evolution_rows(history: EvolutionHistory, stride: int = 1) -> list[list[object]]:
    """(generation, max, mean, min) rows — one evolution figure.

    ``stride`` subsamples long histories for printable tables.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    rows = []
    for record in history.records[::stride]:
        rows.append([record.generation, record.max_score, record.mean_score, record.min_score])
    if history.records and (len(history.records) - 1) % stride != 0:
        last = history.records[-1]
        rows.append([last.generation, last.max_score, last.mean_score, last.min_score])
    return rows


def improvement_rows(history: EvolutionHistory) -> list[list[object]]:
    """(series, initial, final, % improvement) rows — the in-text numbers."""
    rows = []
    for series in ("max", "mean", "min"):
        initial, final, percent = history.improvement(series)
        rows.append([series, initial, final, percent])
    return rows
