"""Synthetic stand-in for the UCI German Credit dataset.

The paper's second dataset: 1000 records, 13 categorical attributes about
credit risk.  Protected attributes (paper §3): ``EXISTACC`` with 5
categories, ``SAVINGS`` with 6 and ``PRESEMPLOY`` with 6 (the paper's
counts, which we follow even where the raw UCI file differs slightly).
The companion attributes mirror the real file's categorical variables.
"""

from __future__ import annotations

from repro.data.dataset import CategoricalDataset
from repro.datasets.synthetic import AttributeSpec, SyntheticSpec, generate

GERMAN_SEED = 19940701

GERMAN_SPEC = SyntheticSpec(
    name="german",
    n_records=1000,
    attributes=(
        AttributeSpec("EXISTACC", 5, ordinal=True),
        AttributeSpec("SAVINGS", 6, ordinal=True),
        AttributeSpec("PRESEMPLOY", 6, ordinal=True),
        AttributeSpec("CREDITHIST", 5),
        AttributeSpec("PURPOSE", 10),
        AttributeSpec("PERSONAL", 5),
        AttributeSpec("DEBTORS", 3),
        AttributeSpec("PROPERTY", 4),
        AttributeSpec("INSTALLPLANS", 3),
        AttributeSpec("HOUSING", 3),
        AttributeSpec("JOB", 4),
        AttributeSpec("TELEPHONE", 2),
        AttributeSpec("FOREIGN", 2),
    ),
    n_latent_classes=6,
    seed=GERMAN_SEED,
    protected_attributes=("EXISTACC", "SAVINGS", "PRESEMPLOY"),
)


def load_german() -> CategoricalDataset:
    """Generate the synthetic German Credit dataset (1000 x 13, deterministic)."""
    return generate(GERMAN_SPEC)
