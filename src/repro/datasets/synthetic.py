"""Synthetic categorical microdata generation.

The paper evaluates on four UCI files that we cannot download in this
offline environment, so :mod:`repro.datasets` regenerates them
synthetically (see DESIGN.md §4).  What the GA and all measures consume
is purely the categorical structure — record count, per-attribute
cardinality, marginal skew, and inter-attribute association — so the
generator is built to control exactly those properties:

* a **latent class model** gives inter-attribute correlation: each record
  first draws a hidden class, then draws every attribute from that class's
  own categorical distribution;
* class-conditional distributions are **Dirichlet draws with small
  concentration**, producing the skewed marginals census categories have;
* **ordinal attributes** get unimodal class-conditional distributions
  centred at a class-specific rank, so that rank-based measures (interval
  disclosure, rank swapping) see realistic ordered structure.

Everything is driven by an explicit seed: the same spec + seed always
yields the identical file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.domain import CategoricalDomain
from repro.data.schema import DatasetSchema
from repro.exceptions import SchemaError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class AttributeSpec:
    """Declarative description of one synthetic attribute.

    ``labels`` overrides the auto-generated label set (``NAME=k``); when
    provided its length must equal ``n_categories``.
    """

    name: str
    n_categories: int
    ordinal: bool = False
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_categories < 1:
            raise SchemaError(f"attribute {self.name!r} needs >= 1 category")
        if self.labels is not None and len(self.labels) != self.n_categories:
            raise SchemaError(
                f"attribute {self.name!r}: {len(self.labels)} labels for "
                f"{self.n_categories} categories"
            )

    def domain(self) -> CategoricalDomain:
        """Materialize the :class:`CategoricalDomain` for this spec."""
        labels = self.labels
        if labels is None:
            width = len(str(self.n_categories - 1))
            labels = tuple(f"{self.name}={i:0{width}d}" for i in range(self.n_categories))
        return CategoricalDomain(self.name, labels, ordinal=self.ordinal)


@dataclass(frozen=True)
class SyntheticSpec:
    """Full description of a synthetic dataset."""

    name: str
    n_records: int
    attributes: tuple[AttributeSpec, ...]
    n_latent_classes: int = 6
    concentration: float = 0.6
    ordinal_spread: float = 0.18
    seed: int = 0
    protected_attributes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise SchemaError(f"dataset {self.name!r} needs >= 1 record")
        if not self.attributes:
            raise SchemaError(f"dataset {self.name!r} needs >= 1 attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"dataset {self.name!r} has duplicate attribute names")
        missing = set(self.protected_attributes) - set(names)
        if missing:
            raise SchemaError(f"protected attributes not in spec: {sorted(missing)}")
        if self.n_latent_classes < 1:
            raise SchemaError("n_latent_classes must be >= 1")
        if self.concentration <= 0:
            raise SchemaError("concentration must be positive")

    def schema(self) -> DatasetSchema:
        """Materialize the dataset schema."""
        return DatasetSchema([a.domain() for a in self.attributes])


def _nominal_class_distributions(
    rng: np.random.Generator, n_classes: int, n_categories: int, concentration: float
) -> np.ndarray:
    """Dirichlet-distributed class-conditional pmfs, shape (classes, cats)."""
    alpha = np.full(n_categories, concentration)
    return rng.dirichlet(alpha, size=n_classes)


def _ordinal_class_distributions(
    rng: np.random.Generator, n_classes: int, n_categories: int, spread: float
) -> np.ndarray:
    """Unimodal class-conditional pmfs centred at class-specific ranks."""
    centers = rng.uniform(0.0, 1.0, size=n_classes)
    positions = (np.arange(n_categories) + 0.5) / n_categories
    sigma = max(spread, 1e-6)
    logits = -((positions[None, :] - centers[:, None]) ** 2) / (2.0 * sigma**2)
    pmf = np.exp(logits)
    pmf /= pmf.sum(axis=1, keepdims=True)
    return pmf


def generate(spec: SyntheticSpec) -> CategoricalDataset:
    """Generate the dataset described by ``spec`` (deterministic in its seed)."""
    rng = as_generator(spec.seed)
    schema = spec.schema()

    # Latent class mixing weights, skewed so classes have unequal sizes.
    weights = rng.dirichlet(np.full(spec.n_latent_classes, 1.5))
    classes = rng.choice(spec.n_latent_classes, size=spec.n_records, p=weights)

    columns = np.empty((spec.n_records, len(spec.attributes)), dtype=np.int64)
    for col, attr in enumerate(spec.attributes):
        if attr.ordinal:
            pmfs = _ordinal_class_distributions(
                rng, spec.n_latent_classes, attr.n_categories, spec.ordinal_spread
            )
        else:
            pmfs = _nominal_class_distributions(
                rng, spec.n_latent_classes, attr.n_categories, spec.concentration
            )
        # Draw per record from its class-conditional pmf via a vectorized
        # inverse-CDF lookup over each record's class row.
        cdfs = np.cumsum(pmfs, axis=1)
        cdfs[:, -1] = 1.0
        u = rng.uniform(size=spec.n_records)
        drawn = (cdfs[classes] < u[:, None]).sum(axis=1)
        columns[:, col] = drawn.clip(0, attr.n_categories - 1)

    return CategoricalDataset(columns, schema, name=spec.name)
