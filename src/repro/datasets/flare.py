"""Synthetic stand-in for the UCI Solar Flare dataset.

The paper's third dataset: 1066 records, 13 categorical attributes about
detected solar flares.  Protected attributes (paper §3): ``CLASS`` with 8
categories, ``LARGSPOT`` with 7 and ``SPOTDIST`` with 5.  This is the
dataset the paper singles out for the robustness experiment (its §3.3)
and for the per-generation timing numbers, so it is also the default
dataset of our ablation benchmarks.
"""

from __future__ import annotations

from repro.data.dataset import CategoricalDataset
from repro.datasets.synthetic import AttributeSpec, SyntheticSpec, generate

FLARE_SEED = 19960215

FLARE_SPEC = SyntheticSpec(
    name="flare",
    n_records=1066,
    attributes=(
        AttributeSpec("CLASS", 8),
        AttributeSpec("LARGSPOT", 7),
        AttributeSpec("SPOTDIST", 5),
        AttributeSpec("ACTIVITY", 2),
        AttributeSpec("EVOLUTION", 3),
        AttributeSpec("PREVACT", 3),
        AttributeSpec("HISTCOMPLEX", 2),
        AttributeSpec("BECOMEHIST", 2),
        AttributeSpec("AREA", 2),
        AttributeSpec("AREALARGEST", 2),
        AttributeSpec("CFLARES", 9, ordinal=True),
        AttributeSpec("MFLARES", 6, ordinal=True),
        AttributeSpec("XFLARES", 3, ordinal=True),
    ),
    n_latent_classes=5,
    seed=FLARE_SEED,
    protected_attributes=("CLASS", "LARGSPOT", "SPOTDIST"),
)


def load_flare() -> CategoricalDataset:
    """Generate the synthetic Solar Flare dataset (1066 x 13, deterministic)."""
    return generate(FLARE_SPEC)
