"""Synthetic reconstructions of the paper's four UCI evaluation datasets."""

from repro.datasets.adult import ADULT_SPEC, load_adult
from repro.datasets.flare import FLARE_SPEC, load_flare
from repro.datasets.german import GERMAN_SPEC, load_german
from repro.datasets.housing import HOUSING_SPEC, load_housing
from repro.datasets.registry import PAPER_SPECS, dataset_names, load_dataset, protected_attributes
from repro.datasets.synthetic import AttributeSpec, SyntheticSpec, generate

__all__ = [
    "AttributeSpec",
    "SyntheticSpec",
    "generate",
    "load_adult",
    "load_flare",
    "load_german",
    "load_housing",
    "ADULT_SPEC",
    "FLARE_SPEC",
    "GERMAN_SPEC",
    "HOUSING_SPEC",
    "PAPER_SPECS",
    "dataset_names",
    "load_dataset",
    "protected_attributes",
]
