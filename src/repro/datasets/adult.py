"""Synthetic stand-in for the UCI Adult (census income) dataset.

The paper's fourth dataset: 1000 records, 8 categorical attributes.
Protected attributes (paper §3): ``EDUCATION`` with 16 categories,
``MARITAL-STATUS`` with 7 and ``OCCUPATION`` with 14 — cardinalities that
match the real UCI Adult file exactly.  The five companion attributes use
the real file's categorical variables and cardinalities too.
"""

from __future__ import annotations

from repro.data.dataset import CategoricalDataset
from repro.datasets.synthetic import AttributeSpec, SyntheticSpec, generate

ADULT_SEED = 19960501

ADULT_SPEC = SyntheticSpec(
    name="adult",
    n_records=1000,
    attributes=(
        AttributeSpec("EDUCATION", 16, ordinal=True),
        AttributeSpec("MARITAL-STATUS", 7),
        AttributeSpec("OCCUPATION", 14),
        AttributeSpec("WORKCLASS", 8),
        AttributeSpec("RELATIONSHIP", 6),
        AttributeSpec("RACE", 5),
        AttributeSpec("SEX", 2),
        AttributeSpec("NATIVE-COUNTRY", 41),
    ),
    n_latent_classes=6,
    seed=ADULT_SEED,
    protected_attributes=("EDUCATION", "MARITAL-STATUS", "OCCUPATION"),
)


def load_adult() -> CategoricalDataset:
    """Generate the synthetic Adult dataset (1000 x 8, deterministic)."""
    return generate(ADULT_SPEC)
