"""Registry of the paper's four evaluation datasets."""

from __future__ import annotations

from repro.data.dataset import CategoricalDataset
from repro.datasets.adult import ADULT_SPEC, load_adult
from repro.datasets.flare import FLARE_SPEC, load_flare
from repro.datasets.german import GERMAN_SPEC, load_german
from repro.datasets.housing import HOUSING_SPEC, load_housing
from repro.datasets.synthetic import SyntheticSpec
from repro.exceptions import ExperimentError

PAPER_SPECS: dict[str, SyntheticSpec] = {
    "housing": HOUSING_SPEC,
    "german": GERMAN_SPEC,
    "flare": FLARE_SPEC,
    "adult": ADULT_SPEC,
}

_LOADERS = {
    "housing": load_housing,
    "german": load_german,
    "flare": load_flare,
    "adult": load_adult,
}


def dataset_names() -> tuple[str, ...]:
    """Names of the paper's datasets, in paper order."""
    return tuple(PAPER_SPECS)


def load_dataset(name: str) -> CategoricalDataset:
    """Load one of the paper's datasets by name."""
    try:
        return _LOADERS[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {', '.join(PAPER_SPECS)}"
        ) from None


def protected_attributes(name: str) -> tuple[str, ...]:
    """The attributes the paper protects for dataset ``name``."""
    try:
        return PAPER_SPECS[name].protected_attributes
    except KeyError:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {', '.join(PAPER_SPECS)}"
        ) from None
