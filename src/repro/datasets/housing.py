"""Synthetic stand-in for the U.S. Housing Survey of 1993 dataset.

The paper's first dataset: 1000 records, 11 categorical attributes about
housing values.  Protected attributes (paper §3): ``BUILT`` with 25
categories, ``DEGREE`` with 8 and ``GRADE1`` with 21.  The remaining
eight attributes are plausible housing-survey variables with moderate
cardinalities; they participate in the multivariate measures (contingency
tables, record linkage) exactly as the real companions would.
"""

from __future__ import annotations

from repro.data.dataset import CategoricalDataset
from repro.datasets.synthetic import AttributeSpec, SyntheticSpec, generate

HOUSING_SEED = 19931101

HOUSING_SPEC = SyntheticSpec(
    name="housing",
    n_records=1000,
    attributes=(
        AttributeSpec("BUILT", 25, ordinal=True),
        AttributeSpec("DEGREE", 8, ordinal=True),
        AttributeSpec("GRADE1", 21, ordinal=True),
        AttributeSpec("REGION", 4),
        AttributeSpec("METRO", 2),
        AttributeSpec("TENURE", 3),
        AttributeSpec("HEAT", 6),
        AttributeSpec("WATER", 4),
        AttributeSpec("SEWAGE", 3),
        AttributeSpec("PERSONS", 10, ordinal=True),
        AttributeSpec("VALUE", 12, ordinal=True),
    ),
    n_latent_classes=7,
    seed=HOUSING_SEED,
    protected_attributes=("BUILT", "DEGREE", "GRADE1"),
)


def load_housing() -> CategoricalDataset:
    """Generate the synthetic Housing dataset (1000 x 11, deterministic)."""
    return generate(HOUSING_SPEC)
