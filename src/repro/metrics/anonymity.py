"""Anonymity-set risk measures (extension beyond the paper's stack).

The paper's §2.3.2 frames disclosure risk as identity disclosure via
record linkage, and mentions *attribute disclosure* (learning an
attribute value without linking a record) as the other family.  This
module supplies the classic anonymity-set measures of both families so
users can extend the fitness function, as the paper's conclusions invite:

* :func:`k_anonymity_level` — the smallest quasi-identifier equivalence
  class in the masked file (the ``k`` of k-anonymity);
* :func:`sample_uniques_share` — fraction of records whose
  quasi-identifier tuple is unique (the classic re-identification
  handle);
* :class:`UniquenessRisk` — sample uniques as a 0-100 bound-measure,
  pluggable into :class:`~repro.metrics.evaluation.ProtectionEvaluator`;
* :class:`AttributeDisclosureRisk` — for a sensitive attribute, the
  expected probability of guessing a record's *original* sensitive value
  from its masked quasi-identifier equivalence class (an l-diversity
  style measure turned into a percentage).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes
from repro.exceptions import MetricError
from repro.metrics.base import DisclosureRiskMeasure


def _equivalence_classes(dataset: CategoricalDataset, attributes: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """(inverse, counts): class id per record and size per class."""
    columns = require_attributes(dataset, attributes)
    if not columns:
        raise MetricError("equivalence classes need at least one attribute")
    __, inverse, counts = np.unique(
        dataset.codes[:, columns], axis=0, return_inverse=True, return_counts=True
    )
    return inverse, counts


def k_anonymity_level(dataset: CategoricalDataset, attributes: Sequence[str]) -> int:
    """Size of the smallest quasi-identifier equivalence class.

    A file is k-anonymous (w.r.t. ``attributes``) for every ``k`` up to
    this value.
    """
    __, counts = _equivalence_classes(dataset, attributes)
    return int(counts.min())


def equivalence_class_sizes(dataset: CategoricalDataset, attributes: Sequence[str]) -> np.ndarray:
    """Per-record equivalence class size (ascending-ordered stats ready)."""
    inverse, counts = _equivalence_classes(dataset, attributes)
    return counts[inverse]


def sample_uniques_share(dataset: CategoricalDataset, attributes: Sequence[str]) -> float:
    """Fraction of records whose quasi-identifier tuple appears once (0..1)."""
    return float((equivalence_class_sizes(dataset, attributes) == 1).mean())


def l_diversity_level(
    dataset: CategoricalDataset,
    quasi_identifiers: Sequence[str],
    sensitive: str,
) -> int:
    """Minimum number of distinct sensitive values per equivalence class.

    The distinct-values form of l-diversity: every quasi-identifier
    equivalence class contains at least this many different values of
    the sensitive attribute.
    """
    inverse, counts = _equivalence_classes(dataset, quasi_identifiers)
    (sensitive_column,) = require_attributes(dataset, [sensitive])
    sensitive_values = dataset.codes[:, sensitive_column]
    n_classes = counts.shape[0]
    size = dataset.schema.domain(sensitive_column).size
    seen = np.zeros((n_classes, size), dtype=bool)
    seen[inverse, sensitive_values] = True
    return int(seen.sum(axis=1).min())


class UniquenessRisk(DisclosureRiskMeasure):
    """Share of masked records with a unique quasi-identifier tuple (0-100)."""

    measure_name = "uniqueness"

    def _compute(self, masked: CategoricalDataset) -> float:
        return 100.0 * sample_uniques_share(masked, self.attributes)


class AttributeDisclosureRisk(DisclosureRiskMeasure):
    """Expected success of guessing the original sensitive value (0-100).

    The intruder locates a target's masked equivalence class (by
    quasi-identifier) and guesses the class's most common *original*
    sensitive value.  The measure is the expected fraction of records
    for which that guess is right — 100 means the masked file fully
    reveals the sensitive attribute, ``100/size`` is the blind-guess
    floor for a uniform attribute.

    Parameters
    ----------
    original / attributes:
        As for every bound measure; ``attributes`` are the
        quasi-identifiers.
    sensitive:
        The sensitive attribute (must not be a quasi-identifier).
    """

    measure_name = "attribute_disclosure"

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        sensitive: str,
    ) -> None:
        super().__init__(original, attributes)
        if sensitive in self.attributes:
            raise MetricError(f"sensitive attribute {sensitive!r} is a quasi-identifier")
        (self._sensitive_column,) = require_attributes(original, [sensitive])
        self.sensitive = sensitive

    def _compute(self, masked: CategoricalDataset) -> float:
        inverse, counts = _equivalence_classes(masked, self.attributes)
        sensitive_values = self.original.codes[:, self._sensitive_column]
        size = self.original.schema.domain(self._sensitive_column).size
        n_classes = counts.shape[0]
        # Joint counts: per masked class, distribution of original
        # sensitive values of its members.
        joint = np.zeros((n_classes, size), dtype=np.int64)
        np.add.at(joint, (inverse, sensitive_values), 1)
        # Guessing the modal value succeeds for max-count members of each class.
        successes = joint.max(axis=1).sum()
        return 100.0 * float(successes) / self.original.n_records
