"""Distance-based information loss — DBIL.

The most direct utility measure (Domingo-Ferrer & Torra, 2001 — paper
reference [8]): the average distance between each record and its masked
version.  Per-attribute distances are categorical (0/1 nominal,
normalized code difference for ordinal — see
:mod:`repro.linkage.distance`), averaged over attributes and records and
reported as a percentage.  The identity masking scores exactly 0; a
masking that moves every nominal value (or every ordinal value across
the full domain) scores 100.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.linkage.distance import attribute_distance_columns, attribute_distance_tensor
from repro.metrics.base import InformationLossMeasure


class DistanceBasedLoss(InformationLossMeasure):
    """Mean per-record masking distance, as a percentage."""

    measure_name = "dbil"

    def __init__(self, original: CategoricalDataset, attributes: Sequence[str]) -> None:
        super().__init__(original, attributes)

    def _compute(self, masked: CategoricalDataset) -> float:
        distances = attribute_distance_columns(self.original, masked, self.attributes)
        return 100.0 * float(distances.mean())

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Batched DBIL over one shared ``(B, n, a)`` distance tensor.

        Each candidate's mean is taken over its own contiguous slice —
        the very array the scalar path computes — so the values match it
        bit for bit.
        """
        tensor = attribute_distance_tensor(self.original, batch, self.attributes)
        return np.array(
            [100.0 * float(tensor[index].mean()) for index in range(len(batch))],
            dtype=np.float64,
        )
