"""Measure interfaces.

A *bound measure* is constructed once against the original file and the
quasi-identifier attributes, precomputing whatever geometry it needs
(contingency subsets, rank positions, frequency tables), and is then
evaluated against many masked candidates — exactly the access pattern of
the GA, which scores thousands of protected files of the same original.

All measures return percentages in ``[0, 100]``: 0 is the identity
masking for information loss and "no record re-identified / no value
leaked" for disclosure risk.

The protocol is *batch-first*: :meth:`BoundMeasure.compute_many` scores
a whole sequence of masked candidates in one call, and vectorized
measures implement :meth:`BoundMeasure._compute_many` to share per-batch
intermediates (rank tables, stacked code tensors, pooled EM fits)
instead of recomputing them per candidate.  The scalar
:meth:`BoundMeasure.compute` remains the convenience form; a measure
that only implements the scalar ``_compute`` gets a looping batch
fallback, and a batch-first measure may implement ``_compute`` as a
one-line delegation to its batch kernel.  Either way the contract is
exact equality: ``compute_many(batch)[i] == compute(batch[i])``, bit
for bit — batching changes throughput, never results.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import MetricError


class BoundMeasure(ABC):
    """A measure bound to one original file and attribute set."""

    #: Short name used in component breakdowns (e.g. ``"ctbil"``).
    measure_name: str = "abstract"

    def __init__(self, original: CategoricalDataset, attributes: Sequence[str]) -> None:
        if not attributes:
            raise MetricError(f"{self.measure_name}: needs at least one attribute")
        self.original = original
        self.attributes = tuple(attributes)
        self.columns = tuple(require_attributes(original, attributes))

    @abstractmethod
    def _compute(self, masked: CategoricalDataset) -> float:
        """Measure value for ``masked`` (already validated); in [0, 100]."""

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Measure values for a validated batch; default loops ``_compute``.

        Vectorized measures override this to compute shared intermediates
        once per batch.  Implementations must be candidate-independent:
        element ``i`` must equal ``_compute(batch[i])`` exactly.
        """
        return np.array([float(self._compute(masked)) for masked in batch],
                        dtype=np.float64)

    def _clamp(self, value: float) -> float:
        # Clamp floating-point drift; genuinely out-of-range or non-finite
        # values are bugs in the measure and must not leak into fitness.
        if not math.isfinite(value) or value < -1e-6 or value > 100.0 + 1e-6:
            raise MetricError(f"{self.measure_name}: value {value} outside [0, 100]")
        return min(100.0, max(0.0, value))

    def compute(self, masked: CategoricalDataset) -> float:
        """Measure value in ``[0, 100]`` for a masked pair of the original."""
        require_masked_pair(self.original, masked)
        return self._clamp(float(self._compute(masked)))

    def compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Measure values in ``[0, 100]`` for a batch of masked pairs.

        Element ``i`` equals ``compute(batch[i])`` exactly; an empty
        batch returns an empty array.
        """
        candidates = list(batch)
        for masked in candidates:
            require_masked_pair(self.original, masked)
        if not candidates:
            return np.empty(0, dtype=np.float64)
        values = np.asarray(self._compute_many(candidates), dtype=np.float64)
        if values.shape != (len(candidates),):
            raise MetricError(
                f"{self.measure_name}: batch kernel returned shape {values.shape} "
                f"for {len(candidates)} candidates"
            )
        return np.array([self._clamp(float(v)) for v in values], dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(attributes={list(self.attributes)})"


class InformationLossMeasure(BoundMeasure):
    """Marker base class: how much analytic utility the masking destroyed."""


class DisclosureRiskMeasure(BoundMeasure):
    """Marker base class: how much an intruder learns from the masked file."""
