"""Measure interfaces.

A *bound measure* is constructed once against the original file and the
quasi-identifier attributes, precomputing whatever geometry it needs
(contingency subsets, rank positions, frequency tables), and is then
evaluated against many masked candidates — exactly the access pattern of
the GA, which scores thousands of protected files of the same original.

All measures return percentages in ``[0, 100]``: 0 is the identity
masking for information loss and "no record re-identified / no value
leaked" for disclosure risk.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes, require_masked_pair
from repro.exceptions import MetricError


class BoundMeasure(ABC):
    """A measure bound to one original file and attribute set."""

    #: Short name used in component breakdowns (e.g. ``"ctbil"``).
    measure_name: str = "abstract"

    def __init__(self, original: CategoricalDataset, attributes: Sequence[str]) -> None:
        if not attributes:
            raise MetricError(f"{self.measure_name}: needs at least one attribute")
        self.original = original
        self.attributes = tuple(attributes)
        self.columns = tuple(require_attributes(original, attributes))

    @abstractmethod
    def _compute(self, masked: CategoricalDataset) -> float:
        """Measure value for ``masked`` (already validated); in [0, 100]."""

    def compute(self, masked: CategoricalDataset) -> float:
        """Measure value in ``[0, 100]`` for a masked pair of the original."""
        require_masked_pair(self.original, masked)
        value = float(self._compute(masked))
        # Clamp floating-point drift; genuinely out-of-range or non-finite
        # values are bugs in the measure and must not leak into fitness.
        if not math.isfinite(value) or value < -1e-6 or value > 100.0 + 1e-6:
            raise MetricError(f"{self.measure_name}: value {value} outside [0, 100]")
        return min(100.0, max(0.0, value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(attributes={list(self.attributes)})"


class InformationLossMeasure(BoundMeasure):
    """Marker base class: how much analytic utility the masking destroyed."""


class DisclosureRiskMeasure(BoundMeasure):
    """Marker base class: how much an intruder learns from the masked file."""
