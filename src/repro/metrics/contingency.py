"""Contingency-table-based information loss — CTBIL.

Categorical analyses are built on contingency tables, so the canonical
utility measure for categorical maskings (Domingo-Ferrer & Torra, 2001 —
the paper's reference [8]) compares the original and masked contingency
tables for every attribute subset up to a maximum order and accumulates
the absolute cell differences:

    CTBIL = sum over subsets S, |S| <= K  of  sum over cells |TO_c - TM_c|

We normalize to a percentage: each subset's table can differ by at most
``2n`` in total absolute mass (all records moved cells), so the reported
value is ``100 * CTBIL / (2 n * #subsets)``.

Cell counting uses a mixed-radix encoding of each record's category tuple
followed by a ``bincount``, so a table of any order is one vectorized
pass over the records.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.metrics.base import InformationLossMeasure

#: Refuse to allocate count vectors beyond this many cells per subset.
_MAX_TABLE_CELLS = 5_000_000


def contingency_counts(dataset: CategoricalDataset, columns: Sequence[int]) -> np.ndarray:
    """Flattened contingency table over ``columns`` (mixed-radix bincount)."""
    if not columns:
        raise MetricError("contingency table needs at least one column")
    sizes = [dataset.schema.domain(c).size for c in columns]
    n_cells = 1
    for size in sizes:
        n_cells *= size  # Python ints: no int64 overflow for huge tables
    if n_cells > _MAX_TABLE_CELLS:
        raise MetricError(
            f"contingency table over columns {list(columns)} has {n_cells} cells "
            f"(limit {_MAX_TABLE_CELLS}); lower max_order"
        )
    flat = np.zeros(dataset.n_records, dtype=np.int64)
    for column, size in zip(columns, sizes):
        flat = flat * size + dataset.column(column)
    return np.bincount(flat, minlength=n_cells)


class ContingencyTableLoss(InformationLossMeasure):
    """CTBIL over all attribute subsets of size ``1..max_order``."""

    measure_name = "ctbil"

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        max_order: int = 2,
    ) -> None:
        super().__init__(original, attributes)
        if max_order < 1:
            raise MetricError(f"max_order must be >= 1, got {max_order}")
        self.max_order = min(max_order, len(self.columns))
        self._subsets = [
            subset
            for order in range(1, self.max_order + 1)
            for subset in combinations(self.columns, order)
        ]
        self._original_tables = [
            contingency_counts(original, subset) for subset in self._subsets
        ]

    def _compute(self, masked: CategoricalDataset) -> float:
        total = 0.0
        for subset, original_table in zip(self._subsets, self._original_tables):
            masked_table = contingency_counts(masked, subset)
            total += float(np.abs(original_table - masked_table).sum())
        ceiling = 2.0 * self.original.n_records * len(self._subsets)
        return 100.0 * total / ceiling

    #: Cells per pooled bincount; batches larger than this are chunked so
    #: a big batch over a big table cannot allocate an oversized counts
    #: matrix (the per-subset table itself is bounded by _MAX_TABLE_CELLS).
    _BATCH_CELL_BUDGET = 1 << 24

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Batched CTBIL: per subset, one pooled bincount over all candidates.

        Cell counts are integers, so the only float operations are the
        final per-candidate normalizations — identical to the scalar
        path whatever the batch size.
        """
        codes = np.stack([masked.codes for masked in batch])
        totals = np.zeros(len(batch), dtype=np.float64)
        for subset, original_table in zip(self._subsets, self._original_tables):
            sizes = [self.original.schema.domain(c).size for c in subset]
            n_cells = int(original_table.shape[0])
            flat = np.zeros((len(batch), self.original.n_records), dtype=np.int64)
            for column, size in zip(subset, sizes):
                flat = flat * size + codes[:, :, column]
            step = max(1, self._BATCH_CELL_BUDGET // n_cells)
            for start in range(0, len(batch), step):
                chunk = flat[start : start + step]
                offsets = np.arange(chunk.shape[0], dtype=np.int64)[:, None] * n_cells
                counts = np.bincount(
                    (chunk + offsets).ravel(), minlength=chunk.shape[0] * n_cells
                ).reshape(chunk.shape[0], n_cells)
                totals[start : start + step] += np.abs(
                    original_table[None, :] - counts
                ).sum(axis=-1)
        ceiling = 2.0 * self.original.n_records * len(self._subsets)
        return 100.0 * totals / ceiling
