"""Disclosure-risk measures backed by the record-linkage substrate.

Bound-measure adapters over :mod:`repro.linkage`: distance-based record
linkage (DBRL), probabilistic record linkage (PRL) and rank-swapping
record linkage (RSRL).  Each reports the percentage of records an
intruder re-identifies, with fractional credit on linkage ties (see
:func:`repro.linkage.dbrl.fractional_correct_links`).

All three route through the tuple-compressed fast path of
:mod:`repro.linkage.compressed`, which is exactly equivalent to the
reference ``n^2`` implementations (asserted by the test suite) but
several times faster — fitness evaluation is the paper's acknowledged
bottleneck.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.linkage.compressed import get_compressed_pair
from repro.linkage.prl import fit_fellegi_sunter_many
from repro.metrics.base import DisclosureRiskMeasure


class DistanceLinkageRisk(DisclosureRiskMeasure):
    """Percentage of records re-identified by nearest-record linkage."""

    measure_name = "dbrl"

    def _compute(self, masked: CategoricalDataset) -> float:
        return get_compressed_pair(self.original, masked, self.attributes).distance_linkage()


class ProbabilisticLinkageRisk(DisclosureRiskMeasure):
    """Percentage of records re-identified by Fellegi–Sunter linkage."""

    measure_name = "prl"

    def _compute(self, masked: CategoricalDataset) -> float:
        return get_compressed_pair(self.original, masked, self.attributes).probabilistic_linkage()

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Batched PRL: one pooled EM fit over the whole candidate batch.

        The EM loop dominates evaluation time (hundreds of tiny-array
        iterations per candidate); :func:`fit_fellegi_sunter_many` runs
        every candidate's iterations through one set of batch-wide numpy
        calls, with per-candidate trajectories — and therefore results —
        identical to the scalar fit.
        """
        pairs = [
            get_compressed_pair(self.original, masked, self.attributes)
            for masked in batch
        ]
        counts = np.stack([pair.pattern_counts() for pair in pairs])
        model = fit_fellegi_sunter_many(counts, len(self.attributes))
        return np.array(
            [
                pair.probabilistic_linkage_from_weights(model.pattern_weights[index])
                for index, pair in enumerate(pairs)
            ],
            dtype=np.float64,
        )


class RankSwappingLinkageRisk(DisclosureRiskMeasure):
    """Percentage of records re-identified by rank-window linkage."""

    measure_name = "rsrl"

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        window: float = 0.1,
    ) -> None:
        super().__init__(original, attributes)
        if not 0 < window <= 1:
            raise MetricError(f"rank window must be in (0, 1], got {window}")
        self.window = float(window)

    def _compute(self, masked: CategoricalDataset) -> float:
        pair = get_compressed_pair(self.original, masked, self.attributes)
        return pair.rank_linkage(window=self.window)
