"""Fitness score aggregation — the paper's Equations 1 and 2.

Information loss and disclosure risk are competing objectives; the GA
needs one scalar.  The paper studies two aggregations:

* :class:`MeanScore` (Eq. 1) — ``(IL + DR) / 2``.  Permits a perfect
  trade-off: (IL=0, DR=40) scores the same as (IL=20, DR=20).
* :class:`MaxScore` (Eq. 2) — ``max(IL, DR)``.  Penalizes unbalanced
  protections: one bad component means a bad score, which the paper
  shows drives final populations toward balanced (IL, DR) pairs.

:class:`WeightedScore` generalizes Eq. 1 to arbitrary convex weights
(used by the score-function ablation benchmark), and
:class:`PowerMeanScore` interpolates continuously between the mean
(``exponent=1``) and the max (``exponent -> inf``).
Lower scores are always better.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.exceptions import MetricError


class ScoreFunction(ABC):
    """Scalarization of an (information loss, disclosure risk) pair."""

    #: Short name used in reports (e.g. ``"mean"``).
    score_name: str = "abstract"

    @abstractmethod
    def combine(self, information_loss: float, disclosure_risk: float) -> float:
        """Aggregate the pair into a single score (lower is better)."""

    def __call__(self, information_loss: float, disclosure_risk: float) -> float:
        return self.combine(information_loss, disclosure_risk)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MeanScore(ScoreFunction):
    """Paper Eq. 1: the arithmetic mean of IL and DR."""

    score_name = "mean"

    def combine(self, information_loss: float, disclosure_risk: float) -> float:
        return (information_loss + disclosure_risk) / 2.0


class MaxScore(ScoreFunction):
    """Paper Eq. 2: the maximum of IL and DR."""

    score_name = "max"

    def combine(self, information_loss: float, disclosure_risk: float) -> float:
        return max(information_loss, disclosure_risk)


class WeightedScore(ScoreFunction):
    """Convex combination ``w * IL + (1 - w) * DR``."""

    score_name = "weighted"

    def __init__(self, information_loss_weight: float = 0.5) -> None:
        if not 0 <= information_loss_weight <= 1:
            raise MetricError(
                f"information_loss_weight must be in [0, 1], got {information_loss_weight}"
            )
        self.information_loss_weight = float(information_loss_weight)

    def combine(self, information_loss: float, disclosure_risk: float) -> float:
        w = self.information_loss_weight
        return w * information_loss + (1.0 - w) * disclosure_risk

    def __repr__(self) -> str:
        return f"WeightedScore(information_loss_weight={self.information_loss_weight})"


class PowerMeanScore(ScoreFunction):
    """Power mean of IL and DR: mean at exponent 1, max as exponent grows."""

    score_name = "power_mean"

    def __init__(self, exponent: float = 4.0) -> None:
        if exponent < 1:
            raise MetricError(f"exponent must be >= 1, got {exponent}")
        self.exponent = float(exponent)

    def combine(self, information_loss: float, disclosure_risk: float) -> float:
        p = self.exponent
        return ((information_loss**p + disclosure_risk**p) / 2.0) ** (1.0 / p)

    def __repr__(self) -> str:
        return f"PowerMeanScore(exponent={self.exponent})"


def score_function_by_name(name: str) -> ScoreFunction:
    """Build a default-parameterized score function from its short name."""
    functions = {
        "mean": MeanScore,
        "max": MaxScore,
        "weighted": WeightedScore,
        "power_mean": PowerMeanScore,
    }
    try:
        return functions[name]()
    except KeyError:
        raise MetricError(f"unknown score function {name!r}; choose from {sorted(functions)}") from None
