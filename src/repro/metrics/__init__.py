"""Information loss, disclosure risk and score aggregation."""

from repro.metrics.anonymity import (
    AttributeDisclosureRisk,
    UniquenessRisk,
    equivalence_class_sizes,
    k_anonymity_level,
    l_diversity_level,
    sample_uniques_share,
)
from repro.metrics.base import BoundMeasure, DisclosureRiskMeasure, InformationLossMeasure
from repro.metrics.contingency import ContingencyTableLoss, contingency_counts
from repro.metrics.distance_il import DistanceBasedLoss
from repro.metrics.entropy_il import EntropyBasedLoss, conditional_entropy_bits
from repro.metrics.evaluation import (
    ProtectionEvaluator,
    ProtectionScore,
    ScoreCache,
    default_dr_measures,
    default_il_measures,
)
from repro.metrics.interval_disclosure import IntervalDisclosure
from repro.metrics.linkage_risk import (
    DistanceLinkageRisk,
    ProbabilisticLinkageRisk,
    RankSwappingLinkageRisk,
)
from repro.metrics.score import (
    MaxScore,
    MeanScore,
    PowerMeanScore,
    ScoreFunction,
    WeightedScore,
    score_function_by_name,
)

__all__ = [
    "BoundMeasure",
    "InformationLossMeasure",
    "DisclosureRiskMeasure",
    "ContingencyTableLoss",
    "contingency_counts",
    "DistanceBasedLoss",
    "EntropyBasedLoss",
    "conditional_entropy_bits",
    "IntervalDisclosure",
    "DistanceLinkageRisk",
    "ProbabilisticLinkageRisk",
    "RankSwappingLinkageRisk",
    "ScoreFunction",
    "MeanScore",
    "MaxScore",
    "WeightedScore",
    "PowerMeanScore",
    "score_function_by_name",
    "ProtectionEvaluator",
    "ProtectionScore",
    "ScoreCache",
    "default_il_measures",
    "default_dr_measures",
    "UniquenessRisk",
    "AttributeDisclosureRisk",
    "k_anonymity_level",
    "l_diversity_level",
    "sample_uniques_share",
    "equivalence_class_sizes",
]
