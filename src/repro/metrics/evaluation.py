"""The protection evaluator: IL + DR + score for one masked candidate.

:class:`ProtectionEvaluator` binds the paper's full measure stack to one
original file and attribute set:

* information loss = mean of {CTBIL, DBIL, EBIL}  (paper §2.3.1)
* disclosure risk  = mean of {ID, DBRL, PRL, RSRL}  (paper §2.3.2)
* score            = a :class:`~repro.metrics.score.ScoreFunction`
  over the pair (paper §2.3.3)

and evaluates masked candidates against it.  Evaluations are memoized on
the candidate's content fingerprint: the GA repeatedly re-scores
surviving individuals, and the paper itself notes that fitness dominates
the run time, so the cache is the single most important performance
lever of the reproduction.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.metrics.base import DisclosureRiskMeasure, InformationLossMeasure
from repro.metrics.contingency import ContingencyTableLoss
from repro.metrics.distance_il import DistanceBasedLoss
from repro.metrics.entropy_il import EntropyBasedLoss
from repro.metrics.interval_disclosure import IntervalDisclosure
from repro.metrics.linkage_risk import (
    DistanceLinkageRisk,
    ProbabilisticLinkageRisk,
    RankSwappingLinkageRisk,
)
from repro.metrics.score import MaxScore, ScoreFunction


@dataclass(frozen=True)
class ProtectionScore:
    """Full evaluation of one masked candidate."""

    information_loss: float
    disclosure_risk: float
    score: float
    il_components: dict[str, float] = field(default_factory=dict)
    dr_components: dict[str, float] = field(default_factory=dict)

    def is_better_than(self, other: "ProtectionScore") -> bool:
        """Strictly better (lower) aggregated score than ``other``."""
        return self.score < other.score

    def imbalance(self) -> float:
        """Absolute gap between IL and DR — the balance the paper optimizes."""
        return abs(self.information_loss - self.disclosure_risk)

    def __str__(self) -> str:
        return (
            f"score={self.score:.2f} (IL={self.information_loss:.2f}, "
            f"DR={self.disclosure_risk:.2f})"
        )


def default_il_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[InformationLossMeasure]:
    """The paper's information-loss stack: CTBIL, DBIL, EBIL."""
    return [
        ContingencyTableLoss(original, attributes),
        DistanceBasedLoss(original, attributes),
        EntropyBasedLoss(original, attributes),
    ]


def default_dr_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[DisclosureRiskMeasure]:
    """The paper's disclosure-risk stack: ID, DBRL, PRL, RSRL."""
    return [
        IntervalDisclosure(original, attributes),
        DistanceLinkageRisk(original, attributes),
        ProbabilisticLinkageRisk(original, attributes),
        RankSwappingLinkageRisk(original, attributes),
    ]


class ProtectionEvaluator:
    """Scores masked candidates of one original file.

    Parameters
    ----------
    original:
        The unmasked file.
    attributes:
        Quasi-identifier attributes the measures look at; defaults to all
        attributes of the file.
    il_measures / dr_measures:
        Bound measure stacks; default to the paper's (see module docstring).
    score_function:
        Aggregation of (IL, DR); defaults to the paper's Eq. 2 max score.
    cache_size:
        Number of memoized evaluations (LRU); 0 disables caching.
    """

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str] | None = None,
        il_measures: Sequence[InformationLossMeasure] | None = None,
        dr_measures: Sequence[DisclosureRiskMeasure] | None = None,
        score_function: ScoreFunction | None = None,
        cache_size: int = 8192,
    ) -> None:
        if cache_size < 0:
            raise MetricError(f"cache_size must be >= 0, got {cache_size}")
        self.original = original
        self.attributes = tuple(attributes) if attributes is not None else original.attribute_names
        self.il_measures = (
            list(il_measures)
            if il_measures is not None
            else default_il_measures(original, self.attributes)
        )
        self.dr_measures = (
            list(dr_measures)
            if dr_measures is not None
            else default_dr_measures(original, self.attributes)
        )
        if not self.il_measures or not self.dr_measures:
            raise MetricError("evaluator needs at least one IL and one DR measure")
        self.score_function = score_function if score_function is not None else MaxScore()
        self._cache_size = cache_size
        self._cache: OrderedDict[bytes, ProtectionScore] = OrderedDict()
        self.evaluations = 0
        self.cache_hits = 0

    def evaluate(self, masked: CategoricalDataset) -> ProtectionScore:
        """Full score for ``masked`` (memoized by content)."""
        key = masked.fingerprint() if self._cache_size else b""
        if self._cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached

        il_components = {m.measure_name: m.compute(masked) for m in self.il_measures}
        dr_components = {m.measure_name: m.compute(masked) for m in self.dr_measures}
        information_loss = sum(il_components.values()) / len(il_components)
        disclosure_risk = sum(dr_components.values()) / len(dr_components)
        result = ProtectionScore(
            information_loss=information_loss,
            disclosure_risk=disclosure_risk,
            score=self.score_function(information_loss, disclosure_risk),
            il_components=il_components,
            dr_components=dr_components,
        )
        self.evaluations += 1

        if self._cache_size:
            self._cache[key] = result
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return result

    def rescore(self, score: ProtectionScore) -> ProtectionScore:
        """Re-aggregate an existing evaluation under this evaluator's score function.

        Lets experiment code compare score functions without recomputing
        the expensive measures.
        """
        return ProtectionScore(
            information_loss=score.information_loss,
            disclosure_risk=score.disclosure_risk,
            score=self.score_function(score.information_loss, score.disclosure_risk),
            il_components=dict(score.il_components),
            dr_components=dict(score.dr_components),
        )

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: size, capacity, hits, misses (= evaluations)."""
        return {
            "size": len(self._cache),
            "capacity": self._cache_size,
            "hits": self.cache_hits,
            "misses": self.evaluations,
        }

    def __repr__(self) -> str:
        return (
            f"ProtectionEvaluator({self.original.name!r}, attributes={list(self.attributes)}, "
            f"score={self.score_function.score_name})"
        )
