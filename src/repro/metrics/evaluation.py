"""The protection evaluator: IL + DR + score for one masked candidate.

:class:`ProtectionEvaluator` binds the paper's full measure stack to one
original file and attribute set:

* information loss = mean of {CTBIL, DBIL, EBIL}  (paper §2.3.1)
* disclosure risk  = mean of {ID, DBRL, PRL, RSRL}  (paper §2.3.2)
* score            = a :class:`~repro.metrics.score.ScoreFunction`
  over the pair (paper §2.3.3)

and evaluates masked candidates against it.  Evaluations are memoized on
the candidate's content fingerprint: the GA repeatedly re-scores
surviving individuals, and the paper itself notes that fitness dominates
the run time, so the cache is the single most important performance
lever of the reproduction.

The evaluator is *batch-first*: :meth:`ProtectionEvaluator.evaluate_many`
dedupes a candidate batch by fingerprint, consults the in-memory memo
and the persistent cache in bulk, and pushes only the fresh remainder
through the measures' vectorized batch kernels — optionally fanned out
over a pluggable executor (any object with the
:class:`repro.service.backends.ExecutionBackend` ``map`` surface).
Evaluation is pure, so ``evaluate_many`` returns exactly what mapping
:meth:`ProtectionEvaluator.evaluate` would, whatever the batch
composition or worker count.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.metrics.base import DisclosureRiskMeasure, InformationLossMeasure
from repro.metrics.contingency import ContingencyTableLoss
from repro.metrics.distance_il import DistanceBasedLoss
from repro.metrics.entropy_il import EntropyBasedLoss
from repro.metrics.interval_disclosure import IntervalDisclosure
from repro.metrics.linkage_risk import (
    DistanceLinkageRisk,
    ProbabilisticLinkageRisk,
    RankSwappingLinkageRisk,
)
from repro.metrics.score import MaxScore, ScoreFunction
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, get_registry
from repro.obs.trace import record_span, span_active

# Batch sizes are size-shaped, not latency-shaped; pin the bucket bounds
# before the first observation picks the seconds default.
get_registry().declare_histogram("repro_eval_batch_size", DEFAULT_SIZE_BUCKETS)

#: Version of the metric kernels' *numerical trajectory*, salted into
#: every persistent-cache key.  Bump it whenever a kernel change can
#: move a result by even one ulp (e.g. the EM moving from BLAS matmul
#: to einsum): a stale cache entry differing in the last bit from a
#: fresh computation would otherwise break the bit-identity guarantees
#: (cached vs fresh, resume-across-kill).  Bumping only costs warm
#: caches a recompute.
METRIC_KERNEL_VERSION = 2


@dataclass(frozen=True)
class ProtectionScore:
    """Full evaluation of one masked candidate."""

    information_loss: float
    disclosure_risk: float
    score: float
    il_components: dict[str, float] = field(default_factory=dict)
    dr_components: dict[str, float] = field(default_factory=dict)

    def is_better_than(self, other: "ProtectionScore") -> bool:
        """Strictly better (lower) aggregated score than ``other``."""
        return self.score < other.score

    def imbalance(self) -> float:
        """Absolute gap between IL and DR — the balance the paper optimizes."""
        return abs(self.information_loss - self.disclosure_risk)

    def __str__(self) -> str:
        return (
            f"score={self.score:.2f} (IL={self.information_loss:.2f}, "
            f"DR={self.disclosure_risk:.2f})"
        )


@runtime_checkable
class ScoreCache(Protocol):
    """Persistent score store the evaluator consults behind its memo cache.

    Implementations (e.g. :class:`repro.service.cache.EvaluationCache`)
    survive the process: keys are content hashes covering the original
    file, the masked candidate, and the measure configuration, so a hit
    is exactly as trustworthy as recomputing.
    """

    def get(self, key: str) -> "ProtectionScore | None":
        """Return the stored score for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: str, score: "ProtectionScore") -> None:
        """Store ``score`` under ``key`` (overwriting any previous entry)."""
        ...


def _cache_get_many(cache: ScoreCache, keys: Sequence[str]) -> dict:
    """Bulk lookup against ``cache``, via ``get_many`` when it offers one.

    Stores that implement the optional bulk surface (one SELECT instead
    of N — see :meth:`repro.service.cache.EvaluationCache.get_many`)
    get it used; plain :class:`ScoreCache` implementations fall back to
    a ``get`` loop with identical semantics.
    """
    get_many = getattr(cache, "get_many", None)
    if callable(get_many):
        return dict(get_many(keys))
    found = {}
    for key in keys:
        score = cache.get(key)
        if score is not None:
            found[key] = score
    return found


def _cache_put_many(cache: ScoreCache, items: Sequence[tuple[str, "ProtectionScore"]]) -> None:
    """Bulk store into ``cache``; one transaction when it offers ``put_many``."""
    put_many = getattr(cache, "put_many", None)
    if callable(put_many):
        put_many(items)
        return
    for key, score in items:
        cache.put(key, score)


def _score_candidates(
    il_measures: Sequence[InformationLossMeasure],
    dr_measures: Sequence[DisclosureRiskMeasure],
    score_function: ScoreFunction,
    batch: Sequence[CategoricalDataset],
) -> "list[ProtectionScore]":
    """Score a batch through the measures' vectorized kernels.

    Module-level (and taking the measures explicitly) so the process
    executor can pickle it; the per-candidate aggregation mirrors the
    scalar :meth:`ProtectionEvaluator.evaluate` arithmetic exactly.
    """
    il_values = [(m.measure_name, m.compute_many(batch)) for m in il_measures]
    dr_values = [(m.measure_name, m.compute_many(batch)) for m in dr_measures]
    results = []
    for index in range(len(batch)):
        il_components = {name: float(values[index]) for name, values in il_values}
        dr_components = {name: float(values[index]) for name, values in dr_values}
        information_loss = sum(il_components.values()) / len(il_components)
        disclosure_risk = sum(dr_components.values()) / len(dr_components)
        results.append(
            ProtectionScore(
                information_loss=information_loss,
                disclosure_risk=disclosure_risk,
                score=score_function(information_loss, disclosure_risk),
                il_components=il_components,
                dr_components=dr_components,
            )
        )
    return results


def _score_candidates_payload(payload: tuple) -> "list[ProtectionScore]":
    """Executor entry point: unpack one chunk's payload and score it."""
    il_measures, dr_measures, score_function, chunk = payload
    return _score_candidates(il_measures, dr_measures, score_function, chunk)


def default_il_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[InformationLossMeasure]:
    """The paper's information-loss stack: CTBIL, DBIL, EBIL."""
    return [
        ContingencyTableLoss(original, attributes),
        DistanceBasedLoss(original, attributes),
        EntropyBasedLoss(original, attributes),
    ]


def default_dr_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[DisclosureRiskMeasure]:
    """The paper's disclosure-risk stack: ID, DBRL, PRL, RSRL."""
    return [
        IntervalDisclosure(original, attributes),
        DistanceLinkageRisk(original, attributes),
        ProbabilisticLinkageRisk(original, attributes),
        RankSwappingLinkageRisk(original, attributes),
    ]


class ProtectionEvaluator:
    """Scores masked candidates of one original file.

    Parameters
    ----------
    original:
        The unmasked file.
    attributes:
        Quasi-identifier attributes the measures look at; defaults to all
        attributes of the file.
    il_measures / dr_measures:
        Bound measure stacks; default to the paper's (see module docstring).
    score_function:
        Aggregation of (IL, DR); defaults to the paper's Eq. 2 max score.
    cache_size:
        Number of memoized evaluations (LRU); 0 disables caching.
    persistent_cache:
        Optional :class:`ScoreCache` consulted on in-memory misses and
        fed every fresh evaluation, so repeated runs and restarted jobs
        skip already-scored candidates.
    executor:
        Optional evaluation executor for :meth:`evaluate_many`'s fresh
        remainder — any object with the
        :class:`repro.service.backends.ExecutionBackend` ``map`` surface
        (``thread`` for numpy's GIL-releasing kernels, ``process`` for
        full multi-core fan-out).  ``None`` evaluates in-process.
        Evaluation is pure, so the executor never changes results.
    """

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str] | None = None,
        il_measures: Sequence[InformationLossMeasure] | None = None,
        dr_measures: Sequence[DisclosureRiskMeasure] | None = None,
        score_function: ScoreFunction | None = None,
        cache_size: int = 8192,
        persistent_cache: ScoreCache | None = None,
        executor: object | None = None,
    ) -> None:
        if cache_size < 0:
            raise MetricError(f"cache_size must be >= 0, got {cache_size}")
        self.original = original
        self.attributes = tuple(attributes) if attributes is not None else original.attribute_names
        self.il_measures = (
            list(il_measures)
            if il_measures is not None
            else default_il_measures(original, self.attributes)
        )
        self.dr_measures = (
            list(dr_measures)
            if dr_measures is not None
            else default_dr_measures(original, self.attributes)
        )
        if not self.il_measures or not self.dr_measures:
            raise MetricError("evaluator needs at least one IL and one DR measure")
        self.score_function = score_function if score_function is not None else MaxScore()
        self._cache_size = cache_size
        self._cache: OrderedDict[bytes, ProtectionScore] = OrderedDict()
        self.persistent_cache = persistent_cache
        self.executor = executor
        self._config_fingerprint: str | None = None
        self.evaluations = 0
        self.cache_hits = 0
        self.persistent_hits = 0
        self.batch_dedup = 0
        self.batches = 0
        self.max_batch_size = 0
        self.fresh_seconds = 0.0

    @staticmethod
    def _component_signature(component: object, name: str) -> dict:
        """Identity of one measure / score function, parameters included.

        Captures the class plus every public scalar attribute (``width``,
        ``max_order``, weights, ...), so two instances of the same class
        with different parameters never fingerprint alike.
        """
        params: dict[str, object] = {}
        for key, value in sorted(vars(component).items()):
            if key.startswith("_"):
                continue
            if isinstance(value, (bool, int, float, str)):
                params[key] = value
            elif isinstance(value, (tuple, list)) and all(
                isinstance(item, (bool, int, float, str)) for item in value
            ):
                params[key] = list(value)
        return {"name": name, "type": type(component).__qualname__, "params": params}

    def config_fingerprint(self) -> str:
        """Stable hash of the bound measure configuration.

        Covers the original file's content, the protected attributes, the
        measure stacks (with their parameters), and the score function —
        everything that changes the meaning of a :class:`ProtectionScore`.
        Persistent caches key on it so entries from a differently-
        configured evaluator can never be confused.
        """
        if self._config_fingerprint is None:
            payload = {
                "kernel": METRIC_KERNEL_VERSION,
                "original": hashlib.sha256(self.original.fingerprint()).hexdigest(),
                "attributes": list(self.attributes),
                "il_measures": [
                    self._component_signature(m, m.measure_name) for m in self.il_measures
                ],
                "dr_measures": [
                    self._component_signature(m, m.measure_name) for m in self.dr_measures
                ],
                "score": self._component_signature(
                    self.score_function, self.score_function.score_name
                ),
            }
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._config_fingerprint = hashlib.sha256(blob).hexdigest()
        return self._config_fingerprint

    def _persistent_key(self, content_fingerprint: bytes) -> str:
        digest = hashlib.sha256(self.config_fingerprint().encode("ascii"))
        digest.update(content_fingerprint)
        return digest.hexdigest()

    def cache_key(self, masked: CategoricalDataset) -> str:
        """Persistent-cache key of one candidate under this configuration."""
        return self._persistent_key(masked.fingerprint())

    def evaluate(self, masked: CategoricalDataset) -> ProtectionScore:
        """Full score for ``masked`` (memoized by content)."""
        use_fingerprint = self._cache_size or self.persistent_cache is not None
        key = masked.fingerprint() if use_fingerprint else b""
        registry = get_registry()
        if self._cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                if registry.enabled:
                    registry.inc("repro_eval_memo_hits_total")
                return cached

        persistent_key = ""
        if self.persistent_cache is not None:
            persistent_key = self._persistent_key(key)
            stored = self.persistent_cache.get(persistent_key)
            if stored is not None:
                self.persistent_hits += 1
                if registry.enabled:
                    registry.inc("repro_eval_persistent_hits_total")
                self._memoize(key, stored)
                return stored

        # One implementation of the measure/aggregation arithmetic: the
        # scalar path is a singleton batch, so the bit-for-bit contract
        # between evaluate and evaluate_many holds by construction.
        start = time.perf_counter()
        (result,) = _score_candidates(
            self.il_measures, self.dr_measures, self.score_function, [masked]
        )
        self.fresh_seconds += time.perf_counter() - start
        self.evaluations += 1
        if registry.enabled:
            registry.inc("repro_eval_fresh_total")

        if self.persistent_cache is not None:
            self.persistent_cache.put(persistent_key, result)
        self._memoize(key, result)
        return result

    def evaluate_many(self, batch: Sequence[CategoricalDataset]) -> list[ProtectionScore]:
        """Score a whole batch; identical to mapping :meth:`evaluate`.

        The batch pipeline, in order:

        1. fingerprint every candidate and deduplicate — each distinct
           content is scored once per batch (``batch_dedup`` counts the
           duplicates saved);
        2. look the distinct candidates up in the in-memory memo;
        3. look the remainder up in the persistent cache *in bulk* (one
           ``get_many`` round instead of N ``get`` calls);
        4. run the fresh remainder through the measures' vectorized
           batch kernels — in-process, or chunked over ``executor``;
        5. store fresh scores back (bulk ``put_many``) and fan results
           out to the original batch positions.

        Counter semantics match the scalar path per *distinct*
        candidate: ``evaluations`` counts fresh scorings, ``cache_hits``
        memo hits, ``persistent_hits`` store hits.  Within-batch
        duplicates land in ``batch_dedup`` instead of ``cache_hits``
        (the scalar loop would have re-hit the memo for them).
        """
        candidates = list(batch)
        if not candidates:
            return []
        # One clock pair instead of a context manager keeps the batch
        # body un-indented; 0.0 doubles as "no trace active".
        trace_started = time.perf_counter() if span_active() else 0.0
        registry = get_registry()
        self.batches += 1
        if len(candidates) > self.max_batch_size:
            self.max_batch_size = len(candidates)
        if registry.enabled:
            registry.observe("repro_eval_batch_size", len(candidates))
        slots: dict[bytes, list[int]] = {}
        for position, masked in enumerate(candidates):
            slots.setdefault(masked.fingerprint(), []).append(position)
        duplicates = len(candidates) - len(slots)
        self.batch_dedup += duplicates
        if registry.enabled and duplicates:
            registry.inc("repro_eval_dedup_total", duplicates)

        resolved: dict[bytes, ProtectionScore] = {}
        missing: list[bytes] = []
        memo_hits = 0
        for key in slots:
            if self._cache_size:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    memo_hits += 1
                    resolved[key] = cached
                    continue
            missing.append(key)
        self.cache_hits += memo_hits
        if registry.enabled and memo_hits:
            registry.inc("repro_eval_memo_hits_total", memo_hits)

        if self.persistent_cache is not None and missing:
            persistent_keys = {key: self._persistent_key(key) for key in missing}
            stored = _cache_get_many(
                self.persistent_cache, [persistent_keys[key] for key in missing]
            )
            still_missing = []
            persistent_hits = 0
            for key in missing:
                score = stored.get(persistent_keys[key])
                if score is not None:
                    persistent_hits += 1
                    self._memoize(key, score)
                    resolved[key] = score
                else:
                    still_missing.append(key)
            missing = still_missing
            self.persistent_hits += persistent_hits
            if registry.enabled and persistent_hits:
                registry.inc("repro_eval_persistent_hits_total", persistent_hits)

        if missing:
            fresh_candidates = [candidates[slots[key][0]] for key in missing]
            start = time.perf_counter()
            fresh_scores = self._evaluate_fresh(fresh_candidates)
            elapsed = time.perf_counter() - start
            self.fresh_seconds += elapsed
            self.evaluations += len(missing)
            if registry.enabled:
                registry.inc("repro_eval_fresh_total", len(missing))
                registry.observe("repro_eval_fresh_seconds", elapsed)
            if self.persistent_cache is not None:
                _cache_put_many(
                    self.persistent_cache,
                    [
                        (self._persistent_key(key), score)
                        for key, score in zip(missing, fresh_scores)
                    ],
                )
            for key, score in zip(missing, fresh_scores):
                self._memoize(key, score)
                resolved[key] = score

        results: list[ProtectionScore | None] = [None] * len(candidates)
        for key, positions in slots.items():
            score = resolved[key]
            for position in positions:
                results[position] = score
        if trace_started:
            record_span("repro.eval.batch",
                        time.perf_counter() - trace_started,
                        size=len(candidates), fresh=len(missing))
        return results  # type: ignore[return-value]

    def _evaluate_fresh(self, candidates: list[CategoricalDataset]) -> list[ProtectionScore]:
        """Run fresh candidates through the batch kernels, maybe in parallel.

        Chunks the batch across the executor's workers; a chunk is the
        unit a worker vectorizes over, and chunk boundaries never change
        results (every batch kernel is candidate-independent).  Batches
        of one, or evaluators without an executor, score in-process.
        """
        executor = self.executor
        if executor is None or len(candidates) < 2:
            return _score_candidates(
                self.il_measures, self.dr_measures, self.score_function, candidates
            )
        import os

        workers = getattr(executor, "max_workers", None) or os.cpu_count() or 1
        chunk_size = max(1, -(-len(candidates) // workers))
        chunks = [
            candidates[start : start + chunk_size]
            for start in range(0, len(candidates), chunk_size)
        ]
        payloads = [
            (self.il_measures, self.dr_measures, self.score_function, chunk)
            for chunk in chunks
        ]
        scored = executor.map(_score_candidates_payload, payloads)
        return [score for chunk_scores in scored for score in chunk_scores]

    def _memoize(self, key: bytes, result: ProtectionScore) -> None:
        if not self._cache_size:
            return
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def rescore(self, score: ProtectionScore) -> ProtectionScore:
        """Re-aggregate an existing evaluation under this evaluator's score function.

        Lets experiment code compare score functions without recomputing
        the expensive measures.
        """
        return ProtectionScore(
            information_loss=score.information_loss,
            disclosure_risk=score.disclosure_risk,
            score=self.score_function(score.information_loss, score.disclosure_risk),
            il_components=dict(score.il_components),
            dr_components=dict(score.dr_components),
        )

    def stats(self) -> dict[str, int]:
        """Evaluation-work snapshot, consistent across scalar and batch paths.

        ``evaluations`` counts fresh metric computations, ``memo_hits``
        in-memory cache hits, ``persistent_hits`` persistent-store hits
        — each per *distinct* candidate, whichever path scored it.
        ``batch_dedup`` counts the within-batch duplicates
        :meth:`evaluate_many` collapsed before any cache was consulted
        (the batch path's equivalent of the memo hits a scalar loop
        would have recorded for them).  ``batches`` / ``max_batch_size``
        describe the batch-shape this evaluator saw, and
        ``fresh_seconds`` is wall time spent inside the metric kernels
        (the only nondeterministic value here — everything else is a
        pure function of the evaluation stream).
        """
        return {
            "evaluations": self.evaluations,
            "memo_hits": self.cache_hits,
            "persistent_hits": self.persistent_hits,
            "batch_dedup": self.batch_dedup,
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "fresh_seconds": round(self.fresh_seconds, 6),
        }

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: size, capacity, hits, misses (= evaluations)."""
        return {
            "size": len(self._cache),
            "capacity": self._cache_size,
            "hits": self.cache_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.evaluations,
        }

    def __repr__(self) -> str:
        return (
            f"ProtectionEvaluator({self.original.name!r}, attributes={list(self.attributes)}, "
            f"score={self.score_function.score_name})"
        )
