"""The protection evaluator: IL + DR + score for one masked candidate.

:class:`ProtectionEvaluator` binds the paper's full measure stack to one
original file and attribute set:

* information loss = mean of {CTBIL, DBIL, EBIL}  (paper §2.3.1)
* disclosure risk  = mean of {ID, DBRL, PRL, RSRL}  (paper §2.3.2)
* score            = a :class:`~repro.metrics.score.ScoreFunction`
  over the pair (paper §2.3.3)

and evaluates masked candidates against it.  Evaluations are memoized on
the candidate's content fingerprint: the GA repeatedly re-scores
surviving individuals, and the paper itself notes that fitness dominates
the run time, so the cache is the single most important performance
lever of the reproduction.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.metrics.base import DisclosureRiskMeasure, InformationLossMeasure
from repro.metrics.contingency import ContingencyTableLoss
from repro.metrics.distance_il import DistanceBasedLoss
from repro.metrics.entropy_il import EntropyBasedLoss
from repro.metrics.interval_disclosure import IntervalDisclosure
from repro.metrics.linkage_risk import (
    DistanceLinkageRisk,
    ProbabilisticLinkageRisk,
    RankSwappingLinkageRisk,
)
from repro.metrics.score import MaxScore, ScoreFunction


@dataclass(frozen=True)
class ProtectionScore:
    """Full evaluation of one masked candidate."""

    information_loss: float
    disclosure_risk: float
    score: float
    il_components: dict[str, float] = field(default_factory=dict)
    dr_components: dict[str, float] = field(default_factory=dict)

    def is_better_than(self, other: "ProtectionScore") -> bool:
        """Strictly better (lower) aggregated score than ``other``."""
        return self.score < other.score

    def imbalance(self) -> float:
        """Absolute gap between IL and DR — the balance the paper optimizes."""
        return abs(self.information_loss - self.disclosure_risk)

    def __str__(self) -> str:
        return (
            f"score={self.score:.2f} (IL={self.information_loss:.2f}, "
            f"DR={self.disclosure_risk:.2f})"
        )


@runtime_checkable
class ScoreCache(Protocol):
    """Persistent score store the evaluator consults behind its memo cache.

    Implementations (e.g. :class:`repro.service.cache.EvaluationCache`)
    survive the process: keys are content hashes covering the original
    file, the masked candidate, and the measure configuration, so a hit
    is exactly as trustworthy as recomputing.
    """

    def get(self, key: str) -> "ProtectionScore | None":
        """Return the stored score for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: str, score: "ProtectionScore") -> None:
        """Store ``score`` under ``key`` (overwriting any previous entry)."""
        ...


def default_il_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[InformationLossMeasure]:
    """The paper's information-loss stack: CTBIL, DBIL, EBIL."""
    return [
        ContingencyTableLoss(original, attributes),
        DistanceBasedLoss(original, attributes),
        EntropyBasedLoss(original, attributes),
    ]


def default_dr_measures(
    original: CategoricalDataset, attributes: Sequence[str]
) -> list[DisclosureRiskMeasure]:
    """The paper's disclosure-risk stack: ID, DBRL, PRL, RSRL."""
    return [
        IntervalDisclosure(original, attributes),
        DistanceLinkageRisk(original, attributes),
        ProbabilisticLinkageRisk(original, attributes),
        RankSwappingLinkageRisk(original, attributes),
    ]


class ProtectionEvaluator:
    """Scores masked candidates of one original file.

    Parameters
    ----------
    original:
        The unmasked file.
    attributes:
        Quasi-identifier attributes the measures look at; defaults to all
        attributes of the file.
    il_measures / dr_measures:
        Bound measure stacks; default to the paper's (see module docstring).
    score_function:
        Aggregation of (IL, DR); defaults to the paper's Eq. 2 max score.
    cache_size:
        Number of memoized evaluations (LRU); 0 disables caching.
    persistent_cache:
        Optional :class:`ScoreCache` consulted on in-memory misses and
        fed every fresh evaluation, so repeated runs and restarted jobs
        skip already-scored candidates.
    """

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str] | None = None,
        il_measures: Sequence[InformationLossMeasure] | None = None,
        dr_measures: Sequence[DisclosureRiskMeasure] | None = None,
        score_function: ScoreFunction | None = None,
        cache_size: int = 8192,
        persistent_cache: ScoreCache | None = None,
    ) -> None:
        if cache_size < 0:
            raise MetricError(f"cache_size must be >= 0, got {cache_size}")
        self.original = original
        self.attributes = tuple(attributes) if attributes is not None else original.attribute_names
        self.il_measures = (
            list(il_measures)
            if il_measures is not None
            else default_il_measures(original, self.attributes)
        )
        self.dr_measures = (
            list(dr_measures)
            if dr_measures is not None
            else default_dr_measures(original, self.attributes)
        )
        if not self.il_measures or not self.dr_measures:
            raise MetricError("evaluator needs at least one IL and one DR measure")
        self.score_function = score_function if score_function is not None else MaxScore()
        self._cache_size = cache_size
        self._cache: OrderedDict[bytes, ProtectionScore] = OrderedDict()
        self.persistent_cache = persistent_cache
        self._config_fingerprint: str | None = None
        self.evaluations = 0
        self.cache_hits = 0
        self.persistent_hits = 0

    @staticmethod
    def _component_signature(component: object, name: str) -> dict:
        """Identity of one measure / score function, parameters included.

        Captures the class plus every public scalar attribute (``width``,
        ``max_order``, weights, ...), so two instances of the same class
        with different parameters never fingerprint alike.
        """
        params: dict[str, object] = {}
        for key, value in sorted(vars(component).items()):
            if key.startswith("_"):
                continue
            if isinstance(value, (bool, int, float, str)):
                params[key] = value
            elif isinstance(value, (tuple, list)) and all(
                isinstance(item, (bool, int, float, str)) for item in value
            ):
                params[key] = list(value)
        return {"name": name, "type": type(component).__qualname__, "params": params}

    def config_fingerprint(self) -> str:
        """Stable hash of the bound measure configuration.

        Covers the original file's content, the protected attributes, the
        measure stacks (with their parameters), and the score function —
        everything that changes the meaning of a :class:`ProtectionScore`.
        Persistent caches key on it so entries from a differently-
        configured evaluator can never be confused.
        """
        if self._config_fingerprint is None:
            payload = {
                "original": hashlib.sha256(self.original.fingerprint()).hexdigest(),
                "attributes": list(self.attributes),
                "il_measures": [
                    self._component_signature(m, m.measure_name) for m in self.il_measures
                ],
                "dr_measures": [
                    self._component_signature(m, m.measure_name) for m in self.dr_measures
                ],
                "score": self._component_signature(
                    self.score_function, self.score_function.score_name
                ),
            }
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._config_fingerprint = hashlib.sha256(blob).hexdigest()
        return self._config_fingerprint

    def _persistent_key(self, content_fingerprint: bytes) -> str:
        digest = hashlib.sha256(self.config_fingerprint().encode("ascii"))
        digest.update(content_fingerprint)
        return digest.hexdigest()

    def cache_key(self, masked: CategoricalDataset) -> str:
        """Persistent-cache key of one candidate under this configuration."""
        return self._persistent_key(masked.fingerprint())

    def evaluate(self, masked: CategoricalDataset) -> ProtectionScore:
        """Full score for ``masked`` (memoized by content)."""
        use_fingerprint = self._cache_size or self.persistent_cache is not None
        key = masked.fingerprint() if use_fingerprint else b""
        if self._cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached

        persistent_key = ""
        if self.persistent_cache is not None:
            persistent_key = self._persistent_key(key)
            stored = self.persistent_cache.get(persistent_key)
            if stored is not None:
                self.persistent_hits += 1
                self._memoize(key, stored)
                return stored

        il_components = {m.measure_name: m.compute(masked) for m in self.il_measures}
        dr_components = {m.measure_name: m.compute(masked) for m in self.dr_measures}
        information_loss = sum(il_components.values()) / len(il_components)
        disclosure_risk = sum(dr_components.values()) / len(dr_components)
        result = ProtectionScore(
            information_loss=information_loss,
            disclosure_risk=disclosure_risk,
            score=self.score_function(information_loss, disclosure_risk),
            il_components=il_components,
            dr_components=dr_components,
        )
        self.evaluations += 1

        if self.persistent_cache is not None:
            self.persistent_cache.put(persistent_key, result)
        self._memoize(key, result)
        return result

    def _memoize(self, key: bytes, result: ProtectionScore) -> None:
        if not self._cache_size:
            return
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def rescore(self, score: ProtectionScore) -> ProtectionScore:
        """Re-aggregate an existing evaluation under this evaluator's score function.

        Lets experiment code compare score functions without recomputing
        the expensive measures.
        """
        return ProtectionScore(
            information_loss=score.information_loss,
            disclosure_risk=score.disclosure_risk,
            score=self.score_function(score.information_loss, score.disclosure_risk),
            il_components=dict(score.il_components),
            dr_components=dict(score.dr_components),
        )

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: size, capacity, hits, misses (= evaluations)."""
        return {
            "size": len(self._cache),
            "capacity": self._cache_size,
            "hits": self.cache_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.evaluations,
        }

    def __repr__(self) -> str:
        return (
            f"ProtectionEvaluator({self.original.name!r}, attributes={list(self.attributes)}, "
            f"score={self.score_function.score_name})"
        )
