"""Entropy-based information loss — EBIL (Kooiman et al., 1998).

EBIL views the masking as a noisy channel from original to published
categories.  From the (original, masked) pair we estimate the empirical
joint distribution of each protected attribute and measure the
*conditional entropy of the original value given the published value*:

    EBIL_attr = sum_j  n_j * H( X_orig | X_masked = j )

where ``n_j`` counts records published with category ``j``.  When the
published value determines the original (identity masking, or any
deterministic bijective recoding) the conditional entropy is 0; when the
published value carries no information the entropy reaches ``log2 k``
per record.  We normalize by ``n * log2 k`` and average over attributes,
reporting a percentage.

Attributes with a single category carry no information to lose and
contribute 0.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.metrics.base import InformationLossMeasure


def conditional_entropy_bits(joint_counts: np.ndarray) -> float:
    """Total conditional entropy ``sum_j n_j H(row | col=j)`` in bits.

    ``joint_counts[i, j]`` counts records with original category ``i``
    published as ``j``.  Returns the *total* over records (not the mean).
    """
    counts = np.asarray(joint_counts, dtype=np.float64)
    column_totals = counts.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        conditional = np.where(column_totals > 0, counts / column_totals, 0.0)
        log_terms = np.where(conditional > 0, np.log2(conditional), 0.0)
    per_column_entropy = -(conditional * log_terms).sum(axis=0)
    return float((column_totals * per_column_entropy).sum())


class EntropyBasedLoss(InformationLossMeasure):
    """Normalized conditional entropy of original given masked, as a percentage."""

    measure_name = "ebil"

    def __init__(self, original: CategoricalDataset, attributes: Sequence[str]) -> None:
        super().__init__(original, attributes)

    def _compute(self, masked: CategoricalDataset) -> float:
        n = self.original.n_records
        total = 0.0
        informative = 0
        for column in self.columns:
            size = self.original.schema.domain(column).size
            if size < 2:
                continue
            informative += 1
            x = self.original.column(column)
            y = masked.column(column)
            flat = x * size + y
            joint = np.bincount(flat, minlength=size * size).reshape(size, size)
            entropy_bits = conditional_entropy_bits(joint)
            total += entropy_bits / (n * np.log2(size))
        if informative == 0:
            return 0.0
        return 100.0 * total / informative

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Batched EBIL: one pooled joint-count bincount per attribute.

        The expensive pass over the records happens once per attribute
        for the whole batch; the entropy of each candidate's (tiny)
        joint table is then taken with the exact scalar-path arithmetic,
        so batching cannot move a result.
        """
        n = self.original.n_records
        totals = np.zeros(len(batch), dtype=np.float64)
        informative = 0
        for column in self.columns:
            size = self.original.schema.domain(column).size
            if size < 2:
                continue
            informative += 1
            x = self.original.column(column)[None, :] * size
            flat = x + np.stack([masked.column(column) for masked in batch])
            cells = size * size
            offsets = np.arange(len(batch), dtype=np.int64)[:, None] * cells
            joints = np.bincount(
                (flat + offsets).ravel(), minlength=len(batch) * cells
            ).reshape(len(batch), size, size)
            scale = n * np.log2(size)
            for index in range(len(batch)):
                totals[index] += conditional_entropy_bits(joints[index]) / scale
        if informative == 0:
            return np.zeros(len(batch), dtype=np.float64)
        return 100.0 * totals / informative
