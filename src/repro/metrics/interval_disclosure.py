"""Rank-interval disclosure — ID (Domingo-Ferrer & Torra, 2001).

Attribute disclosure risk: even without linking records, an intruder who
reads a masked value learns something about the original value if the
original lies *close in rank* to what was published.  For each protected
cell we check whether the original category falls inside a rank window
around the published category; the measure is the percentage of cells
that do.

Rank geometry comes from :func:`repro.linkage.distance.rank_positions`:
each category occupies its block of the original file's cumulative
frequency order, and the window is ``width`` (fraction of total rank
mass) on each side of the published value's position.  The identity
masking scores 100 (every original value trivially inside its own
window); strong maskings push values outside the window and drive the
measure toward 0.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import MetricError
from repro.linkage.distance import rank_positions
from repro.metrics.base import DisclosureRiskMeasure


class IntervalDisclosure(DisclosureRiskMeasure):
    """Percentage of cells whose original value sits in the published rank window."""

    measure_name = "interval_disclosure"

    def __init__(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        width: float = 0.1,
    ) -> None:
        super().__init__(original, attributes)
        if not 0 < width <= 1:
            raise MetricError(f"interval width must be in (0, 1], got {width}")
        self.width = float(width)
        self._positions = {
            column: rank_positions(original, original.schema.domain(column).name)
            for column in self.columns
        }
        # The original side never changes: resolve each original cell's
        # rank position once at bind time instead of once per candidate.
        self._original_positions = {
            column: self._positions[column][original.column(column)]
            for column in self.columns
        }

    def _compute(self, masked: CategoricalDataset) -> float:
        inside_total = 0.0
        for column in self.columns:
            positions = self._positions[column]
            x = self._original_positions[column]
            y = positions[masked.column(column)]
            inside_total += float((np.abs(x - y) <= self.width).mean())
        return 100.0 * inside_total / len(self.columns)

    def _compute_many(self, batch: Sequence[CategoricalDataset]) -> np.ndarray:
        """Batched ID: one rank-window test per attribute for all candidates.

        The inside-window means are counts of booleans divided by ``n``
        — integer-exact — so the batch path reproduces the scalar one
        bit for bit.
        """
        inside_totals = np.zeros(len(batch), dtype=np.float64)
        for column in self.columns:
            positions = self._positions[column]
            x = self._original_positions[column][None, :]
            stacked = positions[np.stack([masked.column(column) for masked in batch])]
            inside_totals += (np.abs(x - stacked) <= self.width).mean(axis=-1)
        return 100.0 * inside_totals / len(self.columns)
