"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the conversion here keeps
every experiment bit-reproducible: seeding the top-level entry point fixes
the entire run.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a ``Generator`` returns it unchanged (shared state), an int
    builds a fresh PCG64 generator, and ``None`` builds an OS-seeded one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Uses the ``spawn`` API so the children's streams are statistically
    independent of each other and of the parent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return as_generator(seed).spawn(count)
