"""Small shared utilities: RNG plumbing, ASCII tables, timing helpers."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_table
from repro.utils.timing import Stopwatch

__all__ = ["as_generator", "spawn_generators", "format_table", "Stopwatch"]
