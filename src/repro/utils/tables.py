"""Minimal ASCII table formatting for experiment reports.

The experiment harness and benchmarks print the same rows the paper's
figures plot; this module renders them in fixed-width text so the output
is readable in a terminal and diff-able in CI logs.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, width: int) -> str:
    text = f"{value:.2f}" if isinstance(value, float) else str(value)
    return text.rjust(width) if isinstance(value, (int, float)) else text.ljust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but table has {len(headers)} headers")
        str_rows.append([f"{v:.2f}" if isinstance(v, float) else str(v) for v in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
