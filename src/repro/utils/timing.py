"""Wall-clock timing helpers used by the engine and the timing benchmark."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulate wall-clock time across labelled sections.

    Used by the GA engine to attribute generation time to fitness
    evaluation versus the rest of the generation, mirroring the timing
    breakdown reported at the end of the paper's section 3.2.
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._started: dict[str, float] = {}

    def start(self, label: str) -> None:
        """Begin timing ``label``; nested starts of the same label are errors."""
        if label in self._started:
            raise ValueError(f"section {label!r} already started")
        self._started[label] = time.perf_counter()

    def stop(self, label: str) -> float:
        """Stop timing ``label`` and return the elapsed seconds for this span."""
        if label not in self._started:
            raise ValueError(f"section {label!r} was never started")
        elapsed = time.perf_counter() - self._started.pop(label)
        self._totals[label] = self._totals.get(label, 0.0) + elapsed
        self._counts[label] = self._counts.get(label, 0) + 1
        return elapsed

    def total(self, label: str) -> float:
        """Total seconds accumulated under ``label`` (0.0 if never timed)."""
        return self._totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of completed spans recorded under ``label``."""
        return self._counts.get(label, 0)

    def mean(self, label: str) -> float:
        """Mean seconds per completed span of ``label`` (0.0 if none)."""
        count = self._counts.get(label, 0)
        return self._totals.get(label, 0.0) / count if count else 0.0

    def labels(self) -> list[str]:
        """All labels with at least one completed span, in insertion order."""
        return list(self._totals)
