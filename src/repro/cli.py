"""Command-line interface.

Everything the library does is reachable from the shell::

    python -m repro datasets
    python -m repro generate --dataset adult --output adult.csv
    python -m repro protect --dataset adult --method pram --param theta=0.3 \
        --seed 7 --output protected.csv
    python -m repro evaluate --dataset adult --masked protected.csv --score max
    python -m repro evolve --dataset flare --score max --generations 300 \
        --seed 42 --output best.csv
    python -m repro experiment --id e2 --dataset flare --generations 300

All commands are deterministic given ``--seed``.  File formats are the
CSV dialect of :mod:`repro.data.io` (header row, labels validated
against the dataset's schema).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections.abc import Sequence

from repro.data.io import read_csv, write_csv
from repro.datasets.registry import PAPER_SPECS, load_dataset, protected_attributes
from repro.exceptions import ReproError
from repro.utils.tables import format_table


def _parse_params(pairs: Sequence[str]) -> dict[str, object]:
    """Parse ``key=value`` method parameters, coercing numerics."""
    params: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"bad --param {pair!r}; expected key=value")
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        params[key] = value
    return params


def _resolve_attributes(args: argparse.Namespace) -> tuple[str, ...]:
    if args.attributes:
        return tuple(a.strip() for a in args.attributes.split(",") if a.strip())
    return protected_attributes(args.dataset)


# -- subcommand implementations ------------------------------------------


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in PAPER_SPECS.items():
        rows.append(
            [
                name,
                spec.n_records,
                len(spec.attributes),
                ", ".join(spec.protected_attributes),
            ]
        )
    print(format_table(["dataset", "records", "attributes", "protected"], rows,
                       title="paper datasets (synthetic reconstructions)"))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    write_csv(dataset, args.output)
    print(f"wrote {dataset.n_records} x {dataset.n_attributes} file: {args.output}")
    return 0


def cmd_protect(args: argparse.Namespace) -> int:
    from repro.methods.base import registry

    original = load_dataset(args.dataset)
    attributes = _resolve_attributes(args)
    method = registry.create(args.method, **_parse_params(args.param))
    masked = method.protect(original, attributes, seed=args.seed)
    write_csv(masked, args.output)
    print(f"applied {method.describe()} to {', '.join(attributes)}")
    print(f"cells changed: {original.cells_changed(masked)}")
    print(f"wrote: {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.metrics.evaluation import ProtectionEvaluator
    from repro.metrics.score import score_function_by_name

    original = load_dataset(args.dataset)
    attributes = _resolve_attributes(args)
    masked = read_csv(args.masked, original.schema)
    evaluator = ProtectionEvaluator(
        original, attributes, score_function=score_function_by_name(args.score)
    )
    score = evaluator.evaluate(masked)
    rows = [["information loss", score.information_loss],
            ["disclosure risk", score.disclosure_risk],
            [f"score ({args.score})", score.score]]
    print(format_table(["measure", "value"], rows, title=f"evaluation of {args.masked}"))
    component_rows = [[name, value] for name, value in score.il_components.items()]
    component_rows += [[name, value] for name, value in score.dr_components.items()]
    print()
    print(format_table(["component", "value"], component_rows))
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.experiments.figures import dispersion_data
    from repro.experiments.reporting import render_dispersion, render_improvements, render_timing
    from repro.experiments.runner import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        dataset=args.dataset,
        score=args.score,
        generations=args.generations,
        seed=args.seed,
        drop_best_fraction=args.drop_best,
    )
    outcome = run_experiment(config)
    print(render_improvements(outcome.history, f"{args.dataset} / {args.score} score"))
    print()
    print(render_dispersion(dispersion_data(outcome.result),
                            "initial (o) vs final (x) population"))
    print()
    print(render_timing(outcome.history, "per-generation timing"))
    if args.output:
        best = outcome.result.best
        write_csv(best.dataset, args.output)
        print(f"\nwrote best protection ({best.evaluation}): {args.output}")
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    from repro.core.pareto import ParetoEvolutionaryProtector
    from repro.experiments.population_builder import build_initial_population
    from repro.metrics.evaluation import ProtectionEvaluator

    original = load_dataset(args.dataset)
    attributes = _resolve_attributes(args)
    evaluator = ProtectionEvaluator(original, attributes)
    engine = ParetoEvolutionaryProtector(evaluator, seed=args.seed)
    protections = build_initial_population(original, dataset_name=args.dataset, seed=0)
    result = engine.run(protections, generations=args.generations)
    rows = [[il, dr, max(il, dr)] for il, dr in result.front_objectives()]
    print(format_table(["IL", "DR", "max(IL,DR)"], rows,
                       title=f"Pareto front after {args.generations} generations "
                             f"({len(result.front)} of {len(result.population)} protections)"))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_experiment
    from repro.experiments.runner import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        dataset=args.dataset,
        score=args.score,
        generations=args.generations,
        seed=args.seed,
        drop_best_fraction=args.drop_best,
    )
    outcome = run_experiment(config)
    stem = f"{args.dataset}_{args.score}_g{args.generations}_s{args.seed}"
    paths = export_experiment(outcome.result, args.directory, stem)
    for path in paths:
        print(f"wrote {path}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        EXPERIMENT3_FRACTIONS,
        run_experiment1,
        run_experiment2,
        run_experiment3,
    )
    from repro.experiments.figures import dispersion_data
    from repro.experiments.reporting import render_dispersion, render_evolution, render_improvements

    if args.id == "e1":
        outcome = run_experiment1(args.dataset, generations=args.generations, seed=args.seed)
        label = f"E1 {args.dataset} (Eq. 1 mean score)"
    elif args.id == "e2":
        outcome = run_experiment2(args.dataset, generations=args.generations, seed=args.seed)
        label = f"E2 {args.dataset} (Eq. 2 max score)"
    else:
        fraction = args.drop_best if args.drop_best else min(EXPERIMENT3_FRACTIONS)
        outcome = run_experiment3(fraction, generations=args.generations, seed=args.seed)
        label = f"E3 flare without best {fraction:.0%}"
    print(render_dispersion(dispersion_data(outcome.result), f"{label}: dispersion"))
    print()
    print(render_evolution(outcome.history, f"{label}: score evolution"))
    print()
    print(render_improvements(outcome.history, f"{label}: improvements"))
    return 0


# -- service subcommands ----------------------------------------------------


# Claims held by inline submit/resume runs beat at this fixed cadence —
# comfortably inside any sane --stale-after, without knowing it.
_INLINE_HEARTBEAT_SECONDS = 15.0


def _store_token(args: argparse.Namespace) -> str:
    return getattr(args, "token", "") or os.environ.get("REPRO_TOKEN", "")


def _store_spec(args: argparse.Namespace) -> str:
    """The job-store spec this invocation selected (may be empty)."""
    return getattr(args, "store", "") or getattr(args, "store_url", "")


def _job_store(args: argparse.Namespace):
    from repro.obs import instrument_store
    from repro.service.store import store_from_spec

    store = store_from_spec(
        _store_spec(args),
        token=_store_token(args),
        state_dir=getattr(args, "state_dir", "") or None,
    )
    # Every CLI store goes through the timing proxy; it only records
    # when a service entry point has enabled telemetry.
    return instrument_store(store)


def _enable_telemetry(args: argparse.Namespace, command: str) -> None:
    """Opt this service entry point into telemetry.

    The registry is off for library users; the CLI's service commands
    are the boundary where recording becomes worthwhile.  ``--log-json``
    additionally streams structured JSONL events to stderr (leaving
    stdout to the human-facing tables), ``--log-json-file`` tees the
    same stream into a size-rotated JSONL file, and ``--trace-sample``
    turns on the span tracer at the given head-sampling rate.
    """
    import repro.obs as obs

    obs.enable()
    rate = float(getattr(args, "trace_sample", 0.0) or 0.0)
    if rate > 0.0:
        obs.enable_tracing(
            sample_rate=min(rate, 1.0),
            slow_op_seconds=float(
                getattr(args, "slow_op_seconds", 0.0)
                or obs.DEFAULT_SLOW_OP_SECONDS
            ),
        )
    streams: list = []
    if getattr(args, "log_json", False):
        streams.append(sys.stderr)
    log_file = getattr(args, "log_json_file", "")
    if log_file:
        max_mb = float(getattr(args, "log_json_max_mb", 64.0) or 64.0)
        streams.append(obs.RotatingFileStream(
            log_file, max_bytes=max(1, int(max_mb * 1024 * 1024))
        ))
    if streams:
        stream = streams[0] if len(streams) == 1 else obs.TeeStream(*streams)
        obs.configure_events(stream, command=command)


def _parse_seeds(args: argparse.Namespace) -> list[int]:
    if args.seeds:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            raise ReproError(f"bad --seeds {args.seeds!r}; expected comma-separated ints")
        unique = list(dict.fromkeys(seeds))
        if len(unique) != len(seeds):
            dropped = len(seeds) - len(unique)
            print(f"note: dropped {dropped} duplicate seed(s) from --seeds; "
                  f"running {','.join(str(s) for s in unique)}")
        return unique
    return [args.seed]


def _evaluator_stats(record) -> dict:
    """The finished job's evaluator snapshot (empty for unfinished jobs)."""
    if record.result is None:
        return {}
    stats = record.result.extras.get("evaluator_stats")
    return stats if isinstance(stats, dict) else {}


def _result_row(record) -> list[object]:
    result = record.result
    stats = _evaluator_stats(record)
    return [
        record.job_id,
        record.job.dataset,
        record.job.score,
        record.job.generations,
        record.status,
        f"{result.best_score:.4f}" if result else "-",
        result.fresh_evaluations if result else "-",
        result.persistent_hits if result else "-",
        stats.get("batch_dedup", "-") if result else "-",
        f"{result.wall_seconds:.1f}s" if result else "-",
    ]


_STATUS_HEADER = ["job", "dataset", "score", "gens", "status", "best", "fresh",
                  "cached", "dedup", "wall"]


def _record_payload(record, claims: dict[str, dict]) -> dict:
    """One job's machine-readable status (the ``--json`` row).

    Built from the same structs the telemetry layer uses — the
    evaluator's :meth:`~repro.metrics.evaluation.ProtectionEvaluator.stats`
    snapshot and the timeline summary — so scripts read fields instead
    of scraping table columns.
    """
    from repro.obs import timeline_summary

    payload: dict[str, object] = {
        "job_id": record.job_id,
        "dataset": record.job.dataset,
        "score": record.job.score,
        "generations": record.job.generations,
        "seed": record.job.seed,
        "status": record.status,
        "submitted_at": record.submitted_at,
        "started_at": record.started_at,
        "finished_at": record.finished_at,
        "error": record.error,
    }
    trace_info = record.extras.get("trace")
    if isinstance(trace_info, dict) and trace_info.get("id"):
        # Logs, metrics and traces join on this one key.
        payload["trace_id"] = str(trace_info["id"])
    if record.job.islands >= 2:
        from repro.service.islands import island_group_id

        payload["island"] = {
            "group": island_group_id(record.job),
            "index": record.job.island_index,
            "islands": record.job.islands,
            "role": ("merge" if record.job.island_index >= record.job.islands
                     else "member"),
            "topology": record.job.topology,
            "migrate_every": record.job.migrate_every,
            "migrants": record.job.migrants,
        }
    claim = claims.get(record.job_id)
    if claim is not None:
        payload["claim"] = claim
    result = record.result
    if result is not None:
        payload["result"] = {
            "best_score": result.best_score,
            "best_information_loss": result.best_information_loss,
            "best_disclosure_risk": result.best_disclosure_risk,
            "mean_improvement_percent": result.mean_improvement_percent,
            "wall_seconds": result.wall_seconds,
            "evaluator_stats": _evaluator_stats(record),
        }
        timeline = result.extras.get("timeline")
        if isinstance(timeline, dict):
            payload["timeline"] = timeline_summary(timeline)
    return payload


def _island_cell(job) -> str:
    """The status table's island column: ``i/P``, ``merge``, or ``-``."""
    if job.islands < 2:
        return "-"
    if job.island_index >= job.islands:
        return "merge"
    return f"{job.island_index + 1}/{job.islands}"


def _print_merge_front(record) -> None:
    """Summarise a finished merge job's Pareto front, when there is one."""
    if record.result is None:
        return
    info = record.result.extras.get("island")
    if not isinstance(info, dict) or info.get("role") != "merge":
        return
    front = info.get("front") or []
    print(f"merged Pareto front: {len(front)} point(s) from "
          f"{len(info.get('members', ()))} island(s)")
    for point in front[:8]:
        il, dr = float(point[0]), float(point[1])
        print(f"  IL={il:.4f}  DR={dr:.4f}")
    if len(front) > 8:
        print(f"  ... and {len(front) - 8} more")
    degraded = info.get("degraded_members") or []
    if degraded:
        print(f"degraded (solo) islands: {', '.join(str(i) for i in degraded)}")


def _run_island_group(args: argparse.Namespace, store, jobs, group: str) -> int:
    """Inline execution for ``repro submit --islands`` (non-detached).

    Island jobs park at exchange boundaries, so the inline path runs an
    in-process :class:`Worker` through :func:`drive_group` — cooperative
    round-robin over the members plus the final merge — instead of the
    claim-then-run-to-completion block serial jobs use.
    """
    from repro.service.islands import drive_group
    from repro.service.worker import Worker

    worker = Worker(
        store,
        backend=args.backend,
        max_workers=args.workers,
        use_cache=not args.no_cache,
        eval_workers=args.eval_workers,
        eval_backend=args.eval_backend,
    )
    finals = drive_group(store, worker, [job.job_id for job in jobs])
    failures = 0
    for record in finals:
        if record.status == "failed":
            failures += 1
            print(f"{record.job_id} failed: {record.error}", file=sys.stderr)
    header = _STATUS_HEADER + ["island"]
    rows = [_result_row(record) + [_island_cell(record.job)]
            for record in finals]
    print(format_table(header, rows,
                       title=f"island group {group} via {args.backend} backend"))
    _print_merge_front(finals[-1])
    print(f"store: {_store_label(store)}" if _store_spec(args)
          else f"state dir: {store.root}")
    return 1 if failures else 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.job import ProtectionJob
    from repro.service.runner import JobRunner

    _enable_telemetry(args, "submit")
    store = _job_store(args)
    base = ProtectionJob(
        dataset=args.dataset,
        score=args.score,
        generations=args.generations,
        seed=args.seed,
        drop_best_fraction=args.drop_best,
        eval_workers=args.eval_workers,
        eval_backend=args.eval_backend,
    )
    islands = max(1, args.islands)
    if islands > 1:
        if args.seeds:
            raise ReproError(
                "--islands splits one seeded search across the fleet; "
                "seed replicates are a different axis — submit each seed "
                "as its own island group"
            )
        from repro.service.islands import island_group_id, plan_island_jobs

        jobs = plan_island_jobs(
            base,
            islands,
            migrate_every=args.migrate_every,
            migrants=args.migrants,
            topology=args.topology,
        )
        group = island_group_id(jobs[0])
    else:
        jobs = [base.with_seed(seed) for seed in _parse_seeds(args)]
        group = ""
    from repro.obs import trace

    # The cadence — and, under --trace-sample, the trace identity —
    # rides in the initial queued write so a worker that claims the
    # record the instant it lands already honours both.
    records = []
    for job in jobs:
        trace_info = trace.new_trace_info()
        if trace_info is None:
            records.append(store.submit(
                job, extras={"checkpoint_every": args.checkpoint_every}
            ))
            continue
        with trace.activated(trace_info["id"], trace_info["root"]) as scope:
            with trace.span("repro.submit", dataset=job.dataset, seed=job.seed):
                record = store.submit(job, extras={
                    "checkpoint_every": args.checkpoint_every,
                    "trace": trace_info,
                })
        records.append(record)
        stored = trace.trace_context_from_extras(record.extras)
        # Resubmission keeps the existing record (and its original
        # trace identity) — only flush our spans when ours landed.
        if (trace_info["sampled"] and stored is not None
                and stored["id"] == trace_info["id"]):
            trace.flush_spans(store, record.job_id, trace_info["id"],
                              scope.collected)
    for record in records:
        if record.status == "completed":
            print(f"{record.job_id}: already completed, skipping (resubmit idempotent)")
        elif record.status == "running":
            print(f"{record.job_id}: already running, skipping (a worker owns it)")
    pending = [r for r in records if r.status == "queued"]
    if args.detach:
        rows = [_result_row(store.get(record.job_id)) for record in records]
        title = (f"queued island group {group}: {islands} member(s) + merge "
                 "(detached)" if group
                 else f"queued {len(pending)} job(s) (detached)")
        print(format_table(_STATUS_HEADER, rows, title=title))
        print(f"store: {_store_label(store)}" if _store_spec(args)
              else f"state dir: {store.root}")
        if args.store:
            hint = f" --store {args.store}"
        elif args.store_url:
            hint = f" --store-url {args.store_url}" + (" --token <token>" if _store_token(args) else "")
        else:
            hint = f" --state-dir {store.root}" if args.state_dir else ""
        print(f"run them with: repro worker --once{hint}")
        if group:
            print(f"island jobs park at exchange rounds; any number of "
                  f"workers may drive the group (repro status --group {group})")
        return 0
    if group:
        return _run_island_group(args, store, jobs, group)
    from repro.service.worker import (
        ClaimHeartbeat,
        claim_queued,
        release_quietly,
        unique_owner,
    )

    failures = 0
    # Build the runner before claiming anything: a configuration error
    # must surface with zero claims held, not strand queued jobs.
    runner = JobRunner(
        backend=args.backend,
        max_workers=args.workers,
        cache_path=None if args.no_cache else str(store.cache_path),
        checkpoint_dir=str(store.checkpoints_dir),
        checkpoint_every=args.checkpoint_every,
    )
    # Claim before running so a concurrently polling `repro worker`
    # cannot pick up the same jobs, then re-read inside the claim: a
    # job a worker finished between our submit and our claim must not
    # be re-run or have its result clobbered.
    owner = unique_owner("submit")

    def report_skip(record, reason):
        if reason == "claimed":
            print(f"{record.job_id}: claimed by another worker, skipping")
        else:
            print(f"{record.job_id}: no longer queued, skipping")

    mine = claim_queued(store, pending, owner, on_skipped=report_skip)
    if mine:
        beat = ClaimHeartbeat(store, [r.job_id for r in mine], owner,
                              _INLINE_HEARTBEAT_SECONDS).start()
        settled: list = []
        try:
            for record in mine:
                store.mark_running(record)
            settled = runner.run_settled(
                [r.job for r in mine],
                traces=[trace.trace_context_from_extras(r.extras)
                        for r in mine],
            )
            for record, outcome in zip(mine, settled):
                if outcome.ok:
                    store.mark_completed(record, outcome.result)
                else:
                    failures += 1
                    store.mark_failed(record, outcome.error)
                    print(f"{record.job_id} failed: {outcome.error}", file=sys.stderr)
        finally:
            beat.stop()
            release_quietly(store, [r.job_id for r in mine], owner)
            outcomes = {o.job_id: o for o in settled}
            for record in mine:
                outcome = outcomes.get(record.job_id)
                try:
                    current = store.get(record.job_id)
                except ReproError:
                    current = record  # telemetry only, never mask the run
                trace.flush_job_trace(
                    store, current,
                    list(outcome.trace_spans) if outcome else [],
                )
    rows = [_result_row(store.get(record.job_id)) for record in records]
    print(format_table(_STATUS_HEADER, rows, title=f"submitted via {args.backend} backend"))
    print(f"store: {_store_label(store)}" if _store_spec(args)
          else f"state dir: {store.root}")
    return 1 if failures else 0


def _store_label(store) -> object:
    """How to name a store to the operator: URL, spec, or root."""
    base_url = getattr(store, "base_url", None)
    if base_url:
        return base_url
    spec = getattr(store, "spec", "")
    if spec.startswith(("sqlite:", "shard:")):
        return spec
    return store.root


def _shard_column(store, job_ids: list[str]) -> dict[str, str] | None:
    """``job_id -> shard name`` when the store is sharded, else ``None``.

    Cache-backed only: callers list records first (filling the sharded
    store's location cache as a side effect), so naming each job's
    shard costs zero extra round trips.
    """
    name_for = getattr(store, "shard_name_for", None)
    if not callable(name_for):
        return None
    return {job_id: name_for(job_id) for job_id in job_ids}


def _claim_cells(claims: dict[str, dict], job_id: str) -> list[object]:
    """Owner and heartbeat-age columns for the status table.

    ``age_seconds`` is computed by the store against its own clock, so
    the column stays truthful when this monitor's clock disagrees with
    the server's.
    """
    info = claims.get(job_id)
    if info is None:
        return ["-", "-"]
    owner = info.get("owner") or "?"
    age = info.get("age_seconds")
    return [owner, f"{age:.0f}s ago" if age is not None else "?"]


def cmd_status(args: argparse.Namespace) -> int:
    store = _job_store(args)
    label = _store_label(store)
    header = _STATUS_HEADER + ["owner", "heartbeat"]
    claims = store.claims()
    if args.group:
        from repro.service.islands import island_group_id

        records = [r for r in store.records()
                   if r.job.islands >= 2 and island_group_id(r.job) == args.group]
        if not records:
            print(f"no jobs in island group {args.group} ({label})")
            return 1
        if args.json:
            payloads = [_record_payload(r, claims) for r in records]
            print(json.dumps(payloads, indent=2, sort_keys=True))
            return 0
        rows = [_result_row(r) + [_island_cell(r.job)]
                + _claim_cells(claims, r.job_id) for r in records]
        group_header = (_STATUS_HEADER + ["island", "owner", "heartbeat"])
        done = sum(1 for r in records if r.status == "completed")
        print(format_table(
            group_header, rows,
            title=f"island group {args.group}: {done}/{len(records)} finished",
        ))
        merge = [r for r in records if r.job.island_index >= r.job.islands]
        if merge:
            _print_merge_front(merge[0])
        return 0
    if args.job:
        record = store.get(args.job)
        shards = _shard_column(store, [record.job_id])
        if args.json:
            payload = _record_payload(record, claims)
            if shards is not None:
                payload["shard"] = shards[record.job_id]
            if record.result is not None:
                timeline = record.result.extras.get("timeline")
                if isinstance(timeline, dict):
                    # The full trace, not just the summary: --json on a
                    # single job is the scripting face of the timeline.
                    payload["timeline_trace"] = timeline
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        row = _result_row(record) + _claim_cells(claims, record.job_id)
        if shards is not None:
            header = header + ["shard"]
            row = row + [shards[record.job_id]]
        print(format_table(header, [row], title=record.job_id))
        if record.job.islands >= 2:
            from repro.service.islands import island_group_id

            role = _island_cell(record.job)
            print(f"island: {role} of group {island_group_id(record.job)} "
                  f"({record.job.topology}, every {record.job.migrate_every} "
                  f"gen(s), top-{record.job.migrants} migrants)")
            _print_merge_front(record)
        if record.error:
            print(f"error: {record.error}")
        stats = _evaluator_stats(record)
        if stats:
            print("evaluator: " + ", ".join(
                f"{key}={stats[key]}"
                for key in ("evaluations", "memo_hits", "persistent_hits",
                            "batch_dedup")
                if key in stats
            ))
        if record.result and record.result.checkpoint_path:
            print(f"checkpoint: {record.result.checkpoint_path}")
        _print_timeline(record)
        return 0
    records = store.records()
    # listing records first matters for a sharded store: the fan-out
    # fills its location cache, so the shard column costs nothing extra.
    shards = _shard_column(store, [r.job_id for r in records])
    if args.json:
        payloads = [_record_payload(r, claims) for r in records]
        if shards is not None:
            for payload in payloads:
                payload["shard"] = shards[payload["job_id"]]
        print(json.dumps(payloads, indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"no jobs in {label}")
        return 0
    island_col = any(r.job.islands >= 2 for r in records)
    if island_col:
        header = _STATUS_HEADER + ["island", "owner", "heartbeat"]
        rows = [_result_row(r) + [_island_cell(r.job)]
                + _claim_cells(claims, r.job_id) for r in records]
    else:
        rows = [_result_row(r) + _claim_cells(claims, r.job_id) for r in records]
    if shards is not None:
        header = header + ["shard"]
        rows = [row + [shards[r.job_id]] for row, r in zip(rows, records)]
    print(format_table(header, rows, title=f"jobs in {label}"))
    return 0


def _print_timeline(record) -> None:
    """Render a finished job's generation-by-generation trace."""
    from repro.obs import TIMELINE_HEADER, timeline_rows, timeline_summary

    if record.result is None:
        return
    timeline = record.result.extras.get("timeline")
    if not isinstance(timeline, dict) or not timeline.get("generation"):
        return
    summary = timeline_summary(timeline)
    title = (f"run timeline: {summary['generations']} generation(s), "
             f"{summary['evaluations']} evaluation(s), "
             f"{summary['total_seconds']:.1f}s in the GA loop")
    if summary["stride"] > 1:
        title += f" (trace sampled every {summary['stride']} generations)"
    print()
    # Long runs collapse into bucketed ranges so the trace stays one
    # screenful; short runs print one row per generation.
    print(format_table(TIMELINE_HEADER, timeline_rows(timeline, max_rows=40),
                       title=title))


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.service.runner import JobRunner
    from repro.service.worker import ClaimHeartbeat, release_quietly, unique_owner

    _enable_telemetry(args, "resume")
    store = _job_store(args)
    record = store.get(args.job)
    if record.job.islands >= 2:
        raise ReproError(
            f"{record.job_id} belongs to an island group; island jobs resume "
            "from their durable exchange checkpoints whenever a worker claims "
            "them — run 'repro worker --once' against this store (or re-run "
            "'repro submit --islands ...', which is idempotent) instead"
        )
    if record.status == "completed" and not args.force:
        print(f"{record.job_id} is already completed; use --force to re-resume")
        return 0
    owner = unique_owner("resume")
    # Claim before looking for the checkpoint: winning the claim is what
    # pulls the fleet's latest checkpoint into the local spool when the
    # store is remote.
    if not store.claim(record.job_id, owner=owner):
        if not args.force:
            raise ReproError(
                f"{record.job_id} is claimed by another worker; wait for it, "
                "let 'repro worker' recover it after --stale-after, or pass "
                "--force to take the claim over now"
            )
        store.release(record.job_id)
        if not store.claim(record.job_id, owner=owner):
            raise ReproError(f"{record.job_id}: lost a claim race; retry")
    beat = None
    try:
        # Re-read inside the claim: a worker may have finished the job
        # between our first read and the claim landing.
        record = store.get(args.job)
        if record.status == "completed" and not args.force:
            print(f"{record.job_id} was completed by another worker meanwhile")
            return 0
        checkpoint = store.checkpoints_dir / f"{record.job_id}.json"
        if not checkpoint.exists():
            raise ReproError(
                f"no checkpoint for {record.job_id} under {store.checkpoints_dir}; "
                "was the job submitted with --checkpoint-every?"
            )
        runner = JobRunner(
            backend=args.backend,
            max_workers=args.workers,
            cache_path=None if args.no_cache else str(store.cache_path),
            checkpoint_dir=str(store.checkpoints_dir),
            checkpoint_every=int(record.extras.get("checkpoint_every", 0)),
        )
        beat = ClaimHeartbeat(store, [record.job_id], owner,
                              _INLINE_HEARTBEAT_SECONDS).start()
        # The resumed run links its new spans to the submit-time trace:
        # same trace id from extras, so the durable blob merges both
        # attempts into one waterfall.
        from repro.obs import trace

        trace_ctx = trace.trace_context_from_extras(record.extras)
        store.mark_running(record)
        try:
            (result,) = runner.run(
                [record.job], resume=True,
                traces=[trace_ctx] if trace_ctx else None,
            )
        except Exception as exc:  # noqa: BLE001 - job failure is service state
            store.mark_failed(record, str(exc))
            if trace_ctx is not None:
                trace.flush_job_trace(store, store.get(record.job_id),
                                      trace.take_stray_spans())
            raise
        spans = result.extras.pop("trace_spans", [])
        store.mark_completed(record, result)
        if trace_ctx is not None:
            trace.flush_job_trace(store, store.get(record.job_id), spans)
    finally:
        if beat is not None:
            beat.stop()
        release_quietly(store, [record.job_id], owner)
    print(format_table(_STATUS_HEADER, [_result_row(record)],
                       title=f"resumed {record.job_id}"))
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import Worker

    _enable_telemetry(args, "worker")
    store = _job_store(args)
    worker = Worker(
        store,
        backend=args.backend,
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_max_entries=args.cache_max_entries,
        worker_id=args.worker_id,
        stale_after=args.stale_after,
        capacity=args.capacity,
        heartbeat_every=args.heartbeat_every,
        eval_workers=args.eval_workers,
        eval_backend=args.eval_backend,
    )
    if getattr(args, "log_json", False):
        from repro.obs import get_event_log

        get_event_log().bind(worker=worker.worker_id)
    if args.once:
        outcomes = worker.run_once(max_jobs=args.max_jobs)
        # A drain-and-exit worker still reports its telemetry before it
        # goes (the polling loop pushes after every drain on its own).
        worker._maybe_push_telemetry(force=True)
    else:
        outcomes = worker.run(
            poll_seconds=args.poll_seconds,
            max_jobs=args.max_jobs,
            idle_exit=args.idle_exit,
            poll_max=args.poll_max,
        )
    # An island job can settle several times in one drain (parked at an
    # exchange, then finished) — report each job once, by its last word.
    last: dict[str, object] = {}
    for outcome in outcomes:
        last[outcome.job_id] = outcome
    failures = 0
    parked = 0
    for outcome in last.values():
        if outcome.parked is not None:
            parked += 1
        elif not outcome.ok:
            failures += 1
            print(f"{outcome.job_id} failed: {outcome.error}", file=sys.stderr)
    if not outcomes:
        print(f"no claimable queued jobs in {_store_label(store)}")
        return 0
    rows = [_result_row(store.get(job_id)) for job_id in last]
    title = f"worker {worker.worker_id}: ran {len(last)} job(s)"
    if parked:
        title += f" ({parked} parked awaiting island peers)"
    print(format_table(_STATUS_HEADER, rows, title=title))
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import instrument_store
    from repro.service.netstore import JobStoreServer
    from repro.service.store import JobStore

    _enable_telemetry(args, "serve")
    backend_label = args.backend
    if args.shard_of:
        # One serve process per shard: `--shard-of SPEC --shard-index I`
        # opens child I of the fleet spec and serves exactly it, so the
        # process fronting each shard is deployed from the same manifest
        # workers and monitors read — no second source of truth.
        from repro.service.shardstore import parse_shard_spec

        if args.db or args.state_dir:
            raise ReproError(
                "--shard-of takes the store from the fleet spec; "
                "--db/--state-dir do not apply"
            )
        body = args.shard_of
        if body.startswith("shard:"):
            body = body[len("shard:"):]
        pairs = parse_shard_spec(body)
        if not 0 <= args.shard_index < len(pairs):
            raise ReproError(
                f"--shard-index {args.shard_index} out of range: the fleet "
                f"spec names {len(pairs)} shard(s)"
            )
        name, child_spec = pairs[args.shard_index]
        if child_spec.startswith(("http://", "https://")):
            raise ReproError(
                f"shard {name!r} is already served at {child_spec}; "
                "--shard-of serves local file:/sqlite: shards"
            )
        from repro.service.store import store_from_spec

        store = store_from_spec(child_spec)
        backend_label = ("sqlite" if child_spec.startswith("sqlite:")
                         else "file")
        print(f"serving shard {args.shard_index} ({name}) of "
              f"shard:{body}")
    elif args.backend == "sqlite":
        from pathlib import Path

        from repro.service.sqlstore import SqliteJobStore

        # --db wins; otherwise the database lives in the state dir, as
        # the --db help text promises (and only then in $REPRO_HOME).
        db = args.db or (Path(args.state_dir) / "jobs.sqlite"
                         if args.state_dir else None)
        store = SqliteJobStore(db)
    else:
        if args.db:
            raise ReproError("--db only applies to --backend sqlite")
        store = JobStore(args.state_dir) if args.state_dir else JobStore()
    token = _store_token(args)
    if not token:
        print("warning: serving without a token; any client that can reach "
              "this port can submit and claim jobs", file=sys.stderr)
    # The served store goes through the timing proxy so every RPC's
    # backing store op lands in repro_store_op_seconds{backend=...}.
    server = JobStoreServer(instrument_store(store, backend=backend_label),
                            host=args.host, port=args.port, token=token)
    print(f"serving job store {_store_label(store)} at {server.url}")
    print(f"metrics: {server.url}/metrics (Prometheus text"
          + (", authenticated)" if token else ")"))
    # A wildcard bind address is not routable; advertise this host's
    # name so the hint works when pasted on another machine.
    advertised = server.url
    if server.host in ("0.0.0.0", "::"):
        import socket

        advertised = f"http://{socket.gethostname()}:{server.port}"
    print("point workers at it with: repro worker --store-url "
          f"{advertised}" + (" --token <token>" if token else ""))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.cache import EvaluationCache

    store = _job_store(args)
    with EvaluationCache(store.cache_path) as cache:
        removed = None
        if args.clear:
            removed = cache.clear()
        elif args.max_entries is not None:
            removed = cache.evict(args.max_entries)
        if args.json:
            payload = {"cache": str(store.cache_path), "entries": len(cache)}
            if args.clear:
                payload["cleared"] = removed
            elif args.max_entries is not None:
                payload["evicted"] = removed
                payload["bound"] = args.max_entries
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.clear:
            print(f"cleared {removed} cached evaluations from {store.cache_path}")
        elif args.max_entries is not None:
            print(f"evicted {removed} least-recently-used evaluations "
                  f"(bound {args.max_entries})")
            print(f"entries: {len(cache)}")
        else:
            print(f"cache: {store.cache_path}")
            print(f"entries: {len(cache)}")
    return 0


def _fleet_snapshot(store) -> dict:
    """Live fleet state from two store round trips (records + claims).

    Works against any backend, which is why it reads the store rather
    than ``/metrics``: a file-store fleet has no metrics endpoint, but it
    has the same records and claims.
    """
    now = time.time()
    records = store.records()
    claims = store.claims()
    counts: dict[str, int] = {}
    for record in records:
        counts[record.status] = counts.get(record.status, 0) + 1
    throughput = {}
    for label, span in (("1m", 60.0), ("15m", 900.0), ("1h", 3600.0)):
        done = [
            r for r in records
            if r.status == "completed" and r.finished_at is not None
            and now - r.finished_at <= span
        ]
        throughput[label] = {
            "completed": len(done),
            "evaluations": sum(
                r.result.fresh_evaluations for r in done if r.result is not None
            ),
            "per_minute": round(len(done) / (span / 60.0), 2),
        }
    running = []
    for record in records:
        if record.status != "running":
            continue
        claim = claims.get(record.job_id) or {}
        running.append({
            "job_id": record.job_id,
            "dataset": record.job.dataset,
            "owner": claim.get("owner") or "?",
            "heartbeat_age_seconds": claim.get("age_seconds"),
            "running_seconds": (
                round(now - record.started_at, 1)
                if record.started_at is not None else None
            ),
        })
    workers = sorted({
        info.get("owner") for info in claims.values() if info.get("owner")
    })
    # Slowest recent jobs, sourced from trace roots: only traced records
    # carry the id that links the row to its `repro trace` waterfall,
    # and the root span's wall clock is submit -> finish.
    traced_done = [
        r for r in records
        if r.status == "completed" and r.finished_at is not None
        and r.submitted_at is not None
        and now - r.finished_at <= 3600.0
        and isinstance(r.extras.get("trace"), dict)
        and r.extras["trace"].get("id")
    ]
    traced_done.sort(key=lambda r: r.finished_at - r.submitted_at, reverse=True)
    slowest = [
        {
            "job_id": r.job_id,
            "trace_id": str(r.extras["trace"]["id"]),
            "seconds": round(r.finished_at - r.submitted_at, 1),
        }
        for r in traced_done[:5]
    ]
    snap = {
        "store": str(_store_label(store)),
        "at": now,
        "jobs": counts,
        "throughput": throughput,
        "running": running,
        "workers": workers,
        "slowest": slowest,
    }
    shards = _shard_column(store, [r.job_id for r in records])
    if shards is not None:
        # Per-shard rows: group the same records/claims by the shard
        # `source` label so a sharded fleet reads as one table.  Claims
        # carry their shard straight from the store's bulk read; records
        # group via the location cache the records() fan-out just filled.
        per_shard: dict[str, dict] = {
            name: {"queued": 0, "running": 0, "completed": 0, "failed": 0,
                   "claims": 0, "completed_1h": 0}
            for name in getattr(store, "shard_names", [])
        }
        for record in records:
            bucket = per_shard.setdefault(
                shards[record.job_id],
                {"queued": 0, "running": 0, "completed": 0, "failed": 0,
                 "claims": 0, "completed_1h": 0})
            bucket[record.status] = bucket.get(record.status, 0) + 1
            if (record.status == "completed" and record.finished_at is not None
                    and now - record.finished_at <= 3600.0):
                bucket["completed_1h"] += 1
        for info in claims.values():
            name = info.get("shard")
            if name in per_shard:
                per_shard[name]["claims"] += 1
        health = getattr(store, "shard_health", None)
        if callable(health):
            for name, state in health().items():
                if name in per_shard:
                    per_shard[name]["available"] = state["available"]
        snap["shards"] = per_shard
        for job in running:
            job["shard"] = shards.get(job["job_id"], "?")
    return snap


def _render_fleet(snap: dict) -> str:
    lines = [f"fleet @ {snap['store']}  ({time.strftime('%H:%M:%S')})"]
    counts = snap["jobs"]
    lines.append("jobs: " + (", ".join(
        f"{status}={count}" for status, count in sorted(counts.items())
    ) or "none"))
    lines.append("completed: " + ", ".join(
        f"last {label}: {window['completed']} ({window['per_minute']}/min, "
        f"{window['evaluations']} evals)"
        for label, window in snap["throughput"].items()
    ))
    if snap["workers"]:
        lines.append(f"workers ({len(snap['workers'])}): "
                     + ", ".join(snap["workers"]))
    if snap.get("slowest"):
        lines.append("slowest traced (1h): " + ", ".join(
            f"{job['job_id']} {job['seconds']}s [{job['trace_id'][:8]}]"
            for job in snap["slowest"]
        ))
    shards = snap.get("shards")
    if shards:
        rows = [
            [
                name,
                "up" if stats.get("available", True) else "DOWN",
                stats.get("queued", 0),
                stats.get("running", 0),
                stats.get("claims", 0),
                stats.get("completed", 0),
                f"{stats.get('completed_1h', 0) / 60.0:.2f}/min",
            ]
            for name, stats in sorted(shards.items())
        ]
        lines.append(format_table(
            ["shard", "health", "queued", "running", "claims", "completed",
             "1h rate"],
            rows, title="shards",
        ))
    if snap["running"]:
        sharded = any("shard" in job for job in snap["running"])
        rows = [
            [
                job["job_id"],
                job["dataset"],
                job["owner"],
                (f"{job['heartbeat_age_seconds']:.0f}s ago"
                 if job["heartbeat_age_seconds"] is not None else "?"),
                (f"{job['running_seconds']:.0f}s"
                 if job["running_seconds"] is not None else "?"),
            ]
            + ([job.get("shard", "?")] if sharded else [])
            for job in snap["running"]
        ]
        lines.append(format_table(
            ["job", "dataset", "owner", "heartbeat", "elapsed"]
            + (["shard"] if sharded else []),
            rows, title="running",
        ))
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    store = _job_store(args)
    try:
        while True:
            snap = _fleet_snapshot(store)
            if args.json:
                print(json.dumps(snap, indent=2, sort_keys=True))
            else:
                print(_render_fleet(snap))
            if not args.watch:
                return 0
            time.sleep(args.watch)
            print()
    except KeyboardInterrupt:
        return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import trace

    store = _job_store(args)
    record = store.get(args.job)  # unknown jobs fail with the usual error
    payload = trace.load_trace(store, record.job_id)
    if payload is None:
        info = record.extras.get("trace")
        if isinstance(info, dict) and not info.get("sampled", True):
            print(f"{record.job_id}: trace was head-sampled out "
                  "(submit with --trace-sample 1.0 to keep every trace)")
        else:
            print(f"{record.job_id}: no trace recorded; submit with "
                  "--trace-sample RATE to trace jobs")
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(trace.render_waterfall(payload))
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    from repro.service.store import migrate_store, store_from_spec

    _enable_telemetry(args, "migrate")
    if args.source == args.dest:
        raise ReproError("migrate needs two different stores")
    source = store_from_spec(args.source, token=_store_token(args))
    dest = store_from_spec(args.dest, token=_store_token(args))
    counts = migrate_store(source, dest, chunk_size=args.chunk_size)
    print(f"migrated {counts['records']} job record(s), "
          f"{counts['checkpoints']} checkpoint(s), "
          f"{counts.get('traces', 0)} trace(s) and "
          f"{counts.get('migrants', 0)} migrant blob(s)")
    print(f"  from: {_store_label(source)}")
    print(f"  to:   {_store_label(dest)}")
    if counts["records"]:
        print("live claims do not migrate; a record caught mid-running is "
              "requeued by the first worker poll against the new store")
    return 0


# -- parser ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evolutionary optimization for categorical data protection "
        "(Marés & Torra, PAIS/EDBT 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the paper's datasets").set_defaults(fn=cmd_datasets)

    p = sub.add_parser("generate", help="write a synthetic paper dataset to CSV")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--output", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("protect", help="apply one protection method")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--method", required=True)
    p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument("--attributes", default="", help="comma-separated; default: paper's")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", required=True)
    p.set_defaults(fn=cmd_protect)

    p = sub.add_parser("evaluate", help="score a masked CSV against a paper dataset")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--masked", required=True)
    p.add_argument("--attributes", default="")
    p.add_argument("--score", default="max", choices=["mean", "max", "weighted", "power_mean"])
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("evolve", help="build the paper population and run the GA")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--score", default="max", choices=["mean", "max", "weighted", "power_mean"])
    p.add_argument("--generations", type=int, default=300)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--drop-best", type=float, default=0.0)
    p.add_argument("--output", default="", help="write the best protection here")
    p.set_defaults(fn=cmd_evolve)

    p = sub.add_parser("pareto", help="evolve the Pareto IL/DR front (extension)")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--attributes", default="")
    p.add_argument("--generations", type=int, default=200)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(fn=cmd_pareto)

    p = sub.add_parser("export", help="run the GA and export figure data as CSV")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--score", default="max", choices=["mean", "max", "weighted", "power_mean"])
    p.add_argument("--generations", type=int, default=300)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--drop-best", type=float, default=0.0)
    p.add_argument("--directory", required=True)
    p.set_defaults(fn=cmd_export)

    def add_store_options(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--state-dir", default="",
                        help="service state directory (default: $REPRO_HOME or "
                             "~/.repro); with a remote store, the local spool")
        sp.add_argument("--store", default="",
                        help="job store spec: file:DIR, sqlite:PATH, "
                             "http(s)://host:port, or shard:CHILD,... / "
                             "shard:@manifest.json (overrides --state-dir "
                             "and --store-url)")
        sp.add_argument("--store-url", default="",
                        help="use a network job store served by 'repro serve' "
                             "(e.g. http://host:8642) instead of a local directory")
        sp.add_argument("--token", default="",
                        help="shared token for remote stores (default: $REPRO_TOKEN)")

    def add_logging_options(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--log-json-file", default="", metavar="PATH",
                        help="also write the JSONL event stream to PATH, "
                             "size-rotated (works with or without --log-json)")
        sp.add_argument("--log-json-max-mb", type=float, default=64.0,
                        help="rotate --log-json-file when it reaches this many "
                             "MB; one predecessor (PATH.1) is kept")
        sp.add_argument("--trace-sample", type=float, default=0.0, metavar="RATE",
                        help="trace this fraction of submitted jobs "
                             "(0 disables, 1 traces everything; failed jobs "
                             "always keep their trace) — view with "
                             "'repro trace JOB'")
        sp.add_argument("--slow-op-seconds", type=float, default=30.0,
                        help="with tracing on, emit a slow_op event and count "
                             "repro_slow_ops_total{op} for any span longer "
                             "than this")

    def add_service_options(sp: argparse.ArgumentParser) -> None:
        add_store_options(sp)
        sp.add_argument("--backend", default="serial", choices=["serial", "thread", "process"])
        sp.add_argument("--workers", type=int, default=None, help="pool size cap")
        sp.add_argument("--no-cache", action="store_true",
                        help="skip the persistent evaluation cache")
        sp.add_argument("--log-json", action="store_true",
                        help="stream structured telemetry events to stderr, "
                             "one JSON object per line")
        add_logging_options(sp)

    def add_eval_options(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--eval-workers", type=int, default=0,
                        help="parallel fitness evaluation inside each run: fan "
                             "evaluation batches out over this many workers "
                             "(0/1 = in-process; results are bit-identical "
                             "at any setting)")
        sp.add_argument("--eval-backend", default="thread",
                        choices=["thread", "process"],
                        help="pool type for --eval-workers (thread: shared "
                             "memory, numpy releases the GIL; process: full "
                             "multi-core, pays pickling per batch)")

    p = sub.add_parser("submit", help="submit protection jobs to the service and run them")
    p.add_argument("--dataset", required=True, choices=sorted(PAPER_SPECS))
    p.add_argument("--score", default="max", choices=["mean", "max", "weighted", "power_mean"])
    p.add_argument("--generations", type=int, default=300)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--seeds", default="", help="comma-separated replicate seeds (overrides --seed)")
    p.add_argument("--drop-best", type=float, default=0.0)
    p.add_argument("--checkpoint-every", type=int, default=25,
                   help="generations between checkpoints (0 disables)")
    p.add_argument("--islands", type=int, default=1,
                   help="split the search into this many island populations "
                        "exchanging elite migrants (plus one merge job); "
                        "deterministic for a given seed regardless of worker "
                        "count")
    p.add_argument("--migrate-every", type=int, default=25, metavar="M",
                   help="with --islands: generations between migrant exchanges")
    p.add_argument("--migrants", type=int, default=2, metavar="K",
                   help="with --islands: top-k elites each island publishes "
                        "per exchange")
    p.add_argument("--topology", default="ring", choices=["ring", "star", "full"],
                   help="with --islands: which peers each island receives "
                        "migrants from")
    p.add_argument("--detach", action="store_true",
                   help="queue the jobs and return; execute later with 'repro worker'")
    add_service_options(p)
    add_eval_options(p)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("worker", help="claim and execute queued jobs (see submit --detach)")
    p.add_argument("--once", action="store_true", help="drain the queue once and exit")
    p.add_argument("--poll-seconds", type=float, default=2.0,
                   help="sleep between queue polls when not --once")
    p.add_argument("--max-jobs", type=int, default=0,
                   help="exit after executing this many jobs (0 = no limit)")
    p.add_argument("--idle-exit", type=int, default=0,
                   help="exit after this many consecutive empty polls (0 = never)")
    p.add_argument("--stale-after", type=float, default=3600.0,
                   help="requeue jobs whose claim has not heartbeated for this "
                        "many seconds; keep it well above 15s — inline "
                        "'repro submit'/'resume' runs beat at that fixed cadence")
    p.add_argument("--worker-id", default="",
                   help="claim identity; must be unique per live worker "
                        "(default: host-pid plus a random suffix)")
    p.add_argument("--capacity", type=int, default=1,
                   help="claim up to this many jobs per batch and run them on "
                        "the configured backend")
    p.add_argument("--heartbeat-every", type=float, default=None,
                   help="seconds between claim heartbeats "
                        "(default: stale-after / 4)")
    p.add_argument("--cache-max-entries", type=int, default=None,
                   help="LRU bound for the evaluation cache during this worker's jobs")
    p.add_argument("--poll-max", type=float, default=None,
                   help="back off while the queue is empty: double the poll "
                        "interval up to this many seconds, reset on the first "
                        "claim (default: no backoff)")
    add_service_options(p)
    add_eval_options(p)
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser("serve", help="serve a job store to remote workers over HTTP")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: localhost only)")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--token", default="",
                   help="shared auth token clients must present (default: $REPRO_TOKEN)")
    p.add_argument("--backend", default="file", choices=["file", "sqlite"],
                   help="what backs the served store: a state directory, or "
                        "one SQLite database")
    p.add_argument("--db", default="",
                   help="with --backend sqlite: the database file "
                        "(default: jobs.sqlite under the state dir)")
    p.add_argument("--state-dir", default="",
                   help="state directory to serve (default: $REPRO_HOME or ~/.repro)")
    p.add_argument("--shard-of", default="", metavar="SPEC",
                   help="serve one shard of a fleet: a shard: spec (or its "
                        "body, or @manifest.json); pick which child with "
                        "--shard-index")
    p.add_argument("--shard-index", type=int, default=0,
                   help="with --shard-of: which child of the fleet spec this "
                        "process serves (0-based)")
    p.add_argument("--log-json", action="store_true",
                   help="stream structured telemetry events to stderr, "
                        "one JSON object per line")
    add_logging_options(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("migrate",
                       help="copy job records and checkpoints between stores "
                            "(file:DIR <-> sqlite:PATH <-> shard:...)")
    p.add_argument("--from", dest="source", required=True, metavar="SPEC",
                   help="source store spec (file:DIR, sqlite:PATH, URL, or "
                        "shard:...)")
    p.add_argument("--to", dest="dest", required=True, metavar="SPEC",
                   help="target store spec (migrating into a shard: spec "
                        "rebalances records onto their rendezvous homes)")
    p.add_argument("--token", default="",
                   help="shared token if either end is a remote store")
    p.add_argument("--chunk-size", type=int, default=100,
                   help="records per progress chunk; each chunk emits a "
                        "migrate_progress event (see --log-json)")
    p.add_argument("--log-json", action="store_true",
                   help="stream structured telemetry events to stderr — "
                        "per-chunk migrate_progress gives a heartbeat on "
                        "large stores")
    p.set_defaults(fn=cmd_migrate)

    p = sub.add_parser("status", help="show the service's job table")
    p.add_argument("--job", default="", help="show one job in detail")
    p.add_argument("--group", default="", metavar="GROUP_ID",
                   help="show one island group (ig-... id printed by "
                        "'repro submit --islands')")
    p.add_argument("--json", action="store_true",
                   help="print machine-readable job records instead of tables")
    add_store_options(p)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("trace",
                       help="render a job's span waterfall (record one by "
                            "submitting with --trace-sample)")
    p.add_argument("job", help="job id whose trace to render")
    p.add_argument("--json", action="store_true",
                   help="print the raw span tree as JSON instead")
    add_store_options(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("top", help="live fleet overview: job counts, throughput, "
                                   "running claims, workers")
    p.add_argument("--json", action="store_true",
                   help="print the fleet snapshot as JSON")
    p.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                   help="refresh every SECONDS until interrupted (0 = print once)")
    add_store_options(p)
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("resume", help="resume an interrupted job from its checkpoint")
    p.add_argument("--job", required=True)
    p.add_argument("--force", action="store_true",
                   help="re-resume a completed job or take over an existing claim")
    add_service_options(p)
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("cache", help="inspect, bound, or clear the persistent evaluation cache")
    p.add_argument("--clear", action="store_true")
    p.add_argument("--max-entries", type=int, default=None,
                   help="evict least-recently-used entries down to this bound")
    p.add_argument("--state-dir", default="")
    p.add_argument("--store", default="",
                   help="job store spec whose cache to operate on "
                        "(file:DIR or sqlite:PATH)")
    p.add_argument("--json", action="store_true",
                   help="print cache statistics as JSON")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("experiment", help="run a paper experiment end to end")
    p.add_argument("--id", required=True, choices=["e1", "e2", "e3"])
    p.add_argument("--dataset", default="flare", choices=sorted(PAPER_SPECS))
    p.add_argument("--generations", type=int, default=None)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--drop-best", type=float, default=0.0)
    p.set_defaults(fn=cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
