"""repro — evolutionary optimization for categorical data protection.

A production-quality reproduction of Marés & Torra, *An Evolutionary
Optimization Approach for Categorical Data Protection* (PAIS/EDBT 2012):
statistical-disclosure-control methods for categorical microdata, the
paper's information-loss and disclosure-risk measure stacks, and the
genetic algorithm that post-optimizes populations of protected files.

Quickstart::

    from repro import (
        load_adult, protected_attributes, build_initial_population,
        ProtectionEvaluator, MaxScore, EvolutionaryProtector,
    )

    original = load_adult()
    attrs = protected_attributes("adult")
    protections = build_initial_population(original, "adult", seed=7)
    evaluator = ProtectionEvaluator(original, attrs, score_function=MaxScore())
    engine = EvolutionaryProtector(evaluator, seed=7)
    result = engine.run(protections, stopping=100)
    print(result.best)
"""

from repro.core import (
    AnyOf,
    EvolutionaryProtector,
    EvolutionHistory,
    EvolutionResult,
    GenerationRecord,
    Individual,
    MaxGenerations,
    Population,
    Stagnation,
    StoppingRule,
    TargetScore,
    crossover,
    mutate,
)
from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema, read_csv, write_csv
from repro.datasets import (
    dataset_names,
    load_adult,
    load_dataset,
    load_flare,
    load_german,
    load_housing,
    protected_attributes,
)
from repro.exceptions import ReproError
from repro.hierarchy import ValueHierarchy, fanout_hierarchy, frequency_hierarchy
from repro.methods import (
    BottomCoding,
    GlobalRecoding,
    InvariantPram,
    LocalSuppression,
    MdavMicroaggregation,
    Microaggregation,
    Pram,
    ProtectionMethod,
    ProtectionPipeline,
    RankSwapping,
    TopCoding,
)
from repro.metrics import (
    ContingencyTableLoss,
    DistanceBasedLoss,
    DistanceLinkageRisk,
    EntropyBasedLoss,
    IntervalDisclosure,
    MaxScore,
    MeanScore,
    PowerMeanScore,
    ProbabilisticLinkageRisk,
    ProtectionEvaluator,
    ProtectionScore,
    RankSwappingLinkageRisk,
    ScoreFunction,
    WeightedScore,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # data
    "CategoricalDataset",
    "CategoricalDomain",
    "DatasetSchema",
    "read_csv",
    "write_csv",
    # hierarchies
    "ValueHierarchy",
    "fanout_hierarchy",
    "frequency_hierarchy",
    # datasets
    "load_adult",
    "load_flare",
    "load_german",
    "load_housing",
    "load_dataset",
    "dataset_names",
    "protected_attributes",
    # methods
    "ProtectionMethod",
    "Microaggregation",
    "MdavMicroaggregation",
    "RankSwapping",
    "Pram",
    "InvariantPram",
    "TopCoding",
    "BottomCoding",
    "GlobalRecoding",
    "LocalSuppression",
    "ProtectionPipeline",
    # metrics
    "ContingencyTableLoss",
    "DistanceBasedLoss",
    "EntropyBasedLoss",
    "IntervalDisclosure",
    "DistanceLinkageRisk",
    "ProbabilisticLinkageRisk",
    "RankSwappingLinkageRisk",
    "ScoreFunction",
    "MeanScore",
    "MaxScore",
    "WeightedScore",
    "PowerMeanScore",
    "ProtectionEvaluator",
    "ProtectionScore",
    # core GA
    "EvolutionaryProtector",
    "EvolutionResult",
    "EvolutionHistory",
    "GenerationRecord",
    "Individual",
    "Population",
    "mutate",
    "crossover",
    "StoppingRule",
    "MaxGenerations",
    "Stagnation",
    "TargetScore",
    "AnyOf",
    # experiments (lazy)
    "build_initial_population",
    # service (lazy)
    "ProtectionJob",
    "JobResult",
    "JobRunner",
    "EvaluationCache",
    "CheckpointManager",
    "JobStore",
    "SqliteJobStore",
    "RemoteJobStore",
    "ShardedJobStore",
    "JobStoreServer",
    "Worker",
    "store_from_spec",
]

_SERVICE_NAMES = {
    "ProtectionJob",
    "JobResult",
    "JobRunner",
    "EvaluationCache",
    "CheckpointManager",
    "JobStore",
    "SqliteJobStore",
    "RemoteJobStore",
    "ShardedJobStore",
    "JobStoreServer",
    "Worker",
    "store_from_spec",
}


def __getattr__(name: str):
    # build_initial_population and the service layer live above
    # repro.experiments, which imports repro.methods; importing them
    # lazily avoids a package import cycle while keeping them available
    # at the top level (as the docstring shows).
    if name == "build_initial_population":
        from repro.experiments.population_builder import build_initial_population

        return build_initial_population
    if name in _SERVICE_NAMES:
        import repro.service as service

        return getattr(service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
