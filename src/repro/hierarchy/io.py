"""CSV import/export of value generalization hierarchies.

Interchange format shared with mainstream SDC toolkits (ARX, sdcMicro):
one row per original category, one column per level, level 0 first::

    0-9,0-19,*
    10-19,0-19,*
    20-29,20-39,*
    ...

Column ``l`` holds the generalized label of the category at level ``l``;
categories sharing a label at a level share a group.  Import validates
that the file's level-0 column matches the target domain and that every
level coarsens the previous one (enforced by
:class:`~repro.hierarchy.vgh.ValueHierarchy` itself).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.domain import CategoricalDomain
from repro.exceptions import HierarchyError
from repro.hierarchy.vgh import ValueHierarchy


def write_hierarchy_csv(
    hierarchy: ValueHierarchy,
    path: str | Path,
    delimiter: str = ",",
) -> None:
    """Write ``hierarchy`` in the one-row-per-category interchange format.

    Generalized labels are synthesized as ``L<level>G<group>`` since the
    library's hierarchies are label-free above level 0.
    """
    path = Path(path)
    domain = hierarchy.domain
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for code in range(domain.size):
            row = [domain.label(code)]
            for level in range(1, hierarchy.n_levels):
                group = int(hierarchy.group_of(level)[code])
                row.append(f"L{level}G{group}")
            writer.writerow(row)


def read_hierarchy_csv(
    domain: CategoricalDomain,
    path: str | Path,
    delimiter: str = ",",
) -> ValueHierarchy:
    """Read a hierarchy for ``domain`` from the interchange format."""
    path = Path(path)
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle, delimiter=delimiter) if row]
    if len(rows) != domain.size:
        raise HierarchyError(
            f"{path}: {len(rows)} rows for domain {domain.name!r} of size {domain.size}"
        )
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise HierarchyError(f"{path}: rows have differing column counts {sorted(widths)}")
    n_levels = widths.pop()
    if n_levels < 1:
        raise HierarchyError(f"{path}: no columns")

    # Map each row to its domain code via the level-0 label.
    codes = np.empty(domain.size, dtype=np.int64)
    seen = set()
    for i, row in enumerate(rows):
        label = row[0]
        if not domain.contains_label(label):
            raise HierarchyError(f"{path}: unknown level-0 label {label!r}")
        if label in seen:
            raise HierarchyError(f"{path}: duplicate level-0 label {label!r}")
        seen.add(label)
        codes[i] = domain.code(label)

    group_maps = []
    for level in range(1, n_levels):
        labels = [row[level] for row in rows]
        # Contiguous group ids in first-appearance order, aligned to codes.
        group_of_label: dict[str, int] = {}
        per_code = np.empty(domain.size, dtype=np.int64)
        for row_index, label in enumerate(labels):
            group = group_of_label.setdefault(label, len(group_of_label))
            per_code[codes[row_index]] = group
        group_maps.append(per_code)
    return ValueHierarchy(domain, group_maps)
