"""Value generalization hierarchies (VGH).

Non-perturbative SDC methods (global recoding, top/bottom coding) replace
categories by more general ones.  A :class:`ValueHierarchy` captures the
ladder of generalizations for one attribute: level 0 is the original
domain, each higher level merges categories into coarser groups, and the
top level typically collapses everything into a single group.

Because the paper's GA requires every protected file to stay inside the
*original* domains (its mutation operator resamples among the "valid
values for the specific variable"), a recoded file represents each merged
group by one *existing* category of the group (its mode or median in the
original data) rather than by a new generalized label.  The hierarchy
object itself is representation-free; the choice of representative lives
in :mod:`repro.methods.global_recoding`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.domain import CategoricalDomain
from repro.exceptions import HierarchyError


class ValueHierarchy:
    """A ladder of coarsenings over one attribute domain.

    Parameters
    ----------
    domain:
        The attribute's original domain.
    group_maps:
        One entry per generalization level above 0.  Entry ``l`` is an
        integer array of length ``domain.size`` assigning each original
        category code to a group id at level ``l + 1``.  Group ids must
        be ``0..n_groups-1`` and each level must *coarsen* the previous
        one (two codes grouped together stay together at higher levels).
    """

    __slots__ = ("domain", "group_maps")

    def __init__(self, domain: CategoricalDomain, group_maps: Sequence[np.ndarray]) -> None:
        maps = []
        previous = np.arange(domain.size)
        for level, raw in enumerate(group_maps, start=1):
            arr = np.asarray(raw, dtype=np.int64)
            if arr.shape != (domain.size,):
                raise HierarchyError(
                    f"level {level} map for {domain.name!r} has shape {arr.shape}, "
                    f"expected ({domain.size},)"
                )
            n_groups = int(arr.max()) + 1 if arr.size else 0
            if arr.min() < 0 or sorted(set(arr.tolist())) != list(range(n_groups)):
                raise HierarchyError(
                    f"level {level} map for {domain.name!r} must use contiguous group ids 0..k-1"
                )
            if n_groups > len(set(previous.tolist())):
                raise HierarchyError(
                    f"level {level} of {domain.name!r} has more groups than level {level - 1}"
                )
            # Coarsening check: codes sharing a group at the previous level
            # must share a group at this level.
            for group in range(int(previous.max()) + 1):
                members = np.where(previous == group)[0]
                if members.size and len(set(arr[members].tolist())) != 1:
                    raise HierarchyError(
                        f"level {level} of {domain.name!r} splits a level-{level - 1} group"
                    )
            maps.append(arr)
            previous = arr
        self.domain = domain
        self.group_maps = tuple(maps)

    @property
    def n_levels(self) -> int:
        """Number of levels including level 0 (the original domain)."""
        return len(self.group_maps) + 1

    def n_groups(self, level: int) -> int:
        """Number of distinct groups at ``level`` (level 0 = domain size)."""
        self._check_level(level)
        if level == 0:
            return self.domain.size
        return int(self.group_maps[level - 1].max()) + 1

    def group_of(self, level: int) -> np.ndarray:
        """Array mapping each original code to its group id at ``level``."""
        self._check_level(level)
        if level == 0:
            return np.arange(self.domain.size)
        return self.group_maps[level - 1]

    def members(self, level: int, group: int) -> np.ndarray:
        """Original category codes belonging to ``group`` at ``level``."""
        groups = self.group_of(level)
        members = np.where(groups == group)[0]
        if members.size == 0:
            raise HierarchyError(f"group {group} does not exist at level {level}")
        return members

    def generalize_codes(self, codes: np.ndarray, level: int) -> np.ndarray:
        """Map a vector of category codes to group ids at ``level``."""
        groups = self.group_of(level)
        arr = np.asarray(codes, dtype=np.int64)
        self.domain.validate_codes(arr)
        return groups[arr]

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.n_levels:
            raise HierarchyError(
                f"level {level} out of range for {self.domain.name!r} "
                f"(hierarchy has {self.n_levels} levels)"
            )

    def __repr__(self) -> str:
        sizes = "->".join(str(self.n_groups(level)) for level in range(self.n_levels))
        return f"ValueHierarchy({self.domain.name!r}, {sizes})"
