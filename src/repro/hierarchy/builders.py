"""Automatic hierarchy construction.

The paper's datasets come without curated taxonomies, so — like most SDC
toolkits (e.g. the fanout hierarchies of ARX) — we synthesize hierarchies
mechanically:

* :func:`fanout_hierarchy` groups *adjacent* categories in domain order,
  ``fanout`` at a time, repeatedly until one group remains.  For ordinal
  domains this yields interval generalizations ("BUILT 1950..1959"); for
  nominal domains it is an arbitrary but deterministic partition, which is
  exactly what mechanically generated recodings look like in practice.
* :func:`frequency_hierarchy` groups categories by similar frequency in a
  reference dataset, merging the rarest first — a common recoding practice
  because rare categories drive re-identification risk.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.domain import CategoricalDomain
from repro.exceptions import HierarchyError
from repro.hierarchy.vgh import ValueHierarchy


def fanout_hierarchy(domain: CategoricalDomain, fanout: int = 2) -> ValueHierarchy:
    """Group adjacent categories ``fanout`` at a time until one group remains."""
    if fanout < 2:
        raise HierarchyError(f"fanout must be >= 2, got {fanout}")
    group_maps = []
    previous = np.arange(domain.size)
    while int(previous.max()) + 1 > 1:
        current = previous // fanout
        group_maps.append(current)
        previous = current
    return ValueHierarchy(domain, group_maps)


def frequency_hierarchy(
    domain: CategoricalDomain,
    reference: CategoricalDataset,
    attribute: str | None = None,
    fanout: int = 2,
) -> ValueHierarchy:
    """Merge the rarest categories first, ``fanout`` groups at a time.

    ``reference`` supplies the category frequencies; ``attribute``
    defaults to ``domain.name``.
    """
    if fanout < 2:
        raise HierarchyError(f"fanout must be >= 2, got {fanout}")
    attr = attribute if attribute is not None else domain.name
    counts = reference.value_counts(attr)
    if counts.shape != (domain.size,):
        raise HierarchyError(
            f"reference dataset attribute {attr!r} has {counts.shape[0]} categories, "
            f"domain has {domain.size}"
        )
    # Order categories by ascending frequency (ties broken by code so the
    # construction is deterministic), then group adjacent ranks.
    order = np.lexsort((np.arange(domain.size), counts))
    rank = np.empty(domain.size, dtype=np.int64)
    rank[order] = np.arange(domain.size)

    group_maps = []
    previous_rankmap = rank
    n_groups = domain.size
    while n_groups > 1:
        merged = previous_rankmap // fanout
        group_maps.append(merged)
        previous_rankmap = merged
        n_groups = int(merged.max()) + 1
    return ValueHierarchy(domain, group_maps)
