"""Value generalization hierarchies for non-perturbative protection."""

from repro.hierarchy.builders import fanout_hierarchy, frequency_hierarchy
from repro.hierarchy.io import read_hierarchy_csv, write_hierarchy_csv
from repro.hierarchy.vgh import ValueHierarchy

__all__ = [
    "ValueHierarchy",
    "fanout_hierarchy",
    "frequency_hierarchy",
    "read_hierarchy_csv",
    "write_hierarchy_csv",
]
