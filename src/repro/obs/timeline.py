"""Per-job run timelines: the generation-by-generation trace of one run.

A finished job already carries its full per-generation history inside
the engine; this module turns that history into a compact, JSON-ready
columnar blob that rides in ``JobResult.extras["timeline"]`` through
any job store, and renders it back into the trace table ``repro status
--job ID`` shows.  Columnar lists (one list per field, index =
generation order) keep the JSON a fraction of the size of a list of
per-generation objects, which matters because every store backend
round-trips the whole record.

Timing floats are rounded to microseconds — the trace is operational
telemetry, not part of the run's deterministic result surface (scores
are stored exactly; they *are* deterministic).
"""

from __future__ import annotations

from collections.abc import Sequence

#: Runs longer than this are stride-sampled into at most this many
#: timeline rows, so a record's JSON stays bounded however long the run.
MAX_TIMELINE_POINTS = 2048

#: Operator short codes, the timeline's on-disk vocabulary.
_OP_CODES = {"mutation": "m", "crossover": "c"}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}


def timeline_from_history(records: Sequence[object]) -> dict:
    """Build the ``extras``-ready timeline blob from generation records.

    ``records`` are :class:`repro.core.history.GenerationRecord` values
    (duck-typed, so checkpoint-restored dicts work too).  ``stride`` is
    1 for fully-traced runs; longer runs keep every ``stride``-th
    generation plus the last one.
    """
    rows = list(records)
    stride = 1
    if len(rows) > MAX_TIMELINE_POINTS:
        stride = -(-len(rows) // MAX_TIMELINE_POINTS)
        sampled = rows[stride - 1 :: stride]
        if sampled and sampled[-1] is not rows[-1]:
            sampled.append(rows[-1])
        rows = sampled
    return {
        "version": 1,
        "stride": stride,
        "generation": [int(r.generation) for r in rows],
        "operator": "".join(_OP_CODES.get(r.operator, "?") for r in rows),
        "best": [float(r.min_score) for r in rows],
        "mean": [float(r.mean_score) for r in rows],
        "evaluations": [int(r.evaluations) for r in rows],
        "fitness_seconds": [round(float(r.fitness_seconds), 6) for r in rows],
        "total_seconds": [
            round(float(r.fitness_seconds) + float(r.other_seconds), 6) for r in rows
        ],
        "accepted": [int(bool(r.accepted)) for r in rows],
    }


def timeline_rows(timeline: dict, max_rows: int = 0) -> list[list[object]]:
    """Table rows (one per traced generation) from a timeline blob.

    With ``max_rows`` positive, long traces are bucketed: each printed
    row covers a contiguous generation range, summing evaluations and
    seconds and reporting the bucket-end best/mean (the population
    statistics are end-of-generation snapshots, so the bucket end is
    the truthful value).  Returns rows of
    ``[generations, op(s), best, mean, evals, fitness, total, accepted]``.
    """
    generations = [int(g) for g in timeline.get("generation", [])]
    if not generations:
        return []
    operators = str(timeline.get("operator", ""))
    best = timeline.get("best", [])
    mean = timeline.get("mean", [])
    evaluations = timeline.get("evaluations", [])
    fitness = timeline.get("fitness_seconds", [])
    total = timeline.get("total_seconds", [])
    accepted = timeline.get("accepted", [])

    n = len(generations)
    bucket = 1 if not max_rows or n <= max_rows else -(-n // max_rows)
    rows: list[list[object]] = []
    for start in range(0, n, bucket):
        end = min(start + bucket, n)
        span = generations[start:end]
        label = str(span[0]) if len(span) == 1 and bucket == 1 else f"{span[0]}-{span[-1]}"
        ops = operators[start:end]
        op_label = (_OP_NAMES.get(ops, ops) if len(set(ops)) == 1 and ops
                    else f"{ops.count('m')}m/{ops.count('c')}c")
        rows.append([
            label,
            op_label,
            f"{float(best[end - 1]):.4f}",
            f"{float(mean[end - 1]):.4f}",
            sum(int(e) for e in evaluations[start:end]),
            f"{sum(float(s) for s in fitness[start:end]) * 1000:.1f}ms",
            f"{sum(float(s) for s in total[start:end]) * 1000:.1f}ms",
            f"{sum(int(a) for a in accepted[start:end])}/{end - start}",
        ])
    return rows


TIMELINE_HEADER = ["gen", "op", "best", "mean", "evals", "fitness", "total", "accepted"]


def timeline_summary(timeline: dict) -> dict:
    """Headline numbers of one timeline (the ``--json`` snapshot form)."""
    total = timeline.get("total_seconds", [])
    fitness = timeline.get("fitness_seconds", [])
    evaluations = timeline.get("evaluations", [])
    generations = timeline.get("generation", [])
    best = timeline.get("best", [])
    return {
        "generations": int(generations[-1]) if generations else 0,
        "traced": len(generations),
        "stride": int(timeline.get("stride", 1)),
        "evaluations": sum(int(e) for e in evaluations),
        "fitness_seconds": round(sum(float(s) for s in fitness), 6),
        "total_seconds": round(sum(float(s) for s in total), 6),
        "final_best": float(best[-1]) if best else None,
    }
