"""Causal job tracing: spans across the fleet, durable per-job traces.

PR 6/7 answered the aggregate questions (rates, latencies, queue depth);
this module answers the per-request one — "this job took 40 seconds;
where did they go?" — with a zero-dependency span tracer in the spirit
of OpenTelemetry, kept to the repo's stdlib-only rules.

A span is a plain dict: ``trace_id`` / ``span_id`` / ``parent_id`` /
``name`` / ``start`` (epoch seconds) / ``duration`` / optional
``attrs``.  Span names are part of the public observability surface
(see the ROADMAP stability contract): dotted, ``repro.``-prefixed, and
renaming one is a breaking change.

The moving parts, in the order a job meets them:

* :func:`new_trace_info` mints a trace identity at submit time; the
  submit CLI stores it in the job record's ``extras["trace"]``, which
  is how the identity crosses the store boundary to whichever worker
  wins the claim.
* :func:`activate` / :func:`span` collect spans on the current thread
  into a :class:`TraceScope`; the runner activates a scope inside the
  (possibly process-pool) worker, so engine generations and evaluation
  batches nest under the run.
* :func:`format_traceparent` / :func:`parse_traceparent` carry the
  context across the network as an optional ``trace`` field on the JSON
  RPC envelope — wire-protocol-v1 compatible: old servers ignore it,
  old clients omit it.
* :func:`flush_job_trace` persists finished spans as a JSON blob on the
  existing checkpoint-blob path (``<job_id>.trace``), so traces survive
  exactly like checkpoints and migrate with ``repro migrate``.  The
  submit-time head-sampling decision gates persistence — except for
  failed jobs, which always keep their trace.
* :func:`render_waterfall` turns a stored trace into the ASCII
  waterfall ``repro trace JOB`` prints.

Observer contract (PR 6): tracing is off by default, a disabled
:func:`span` call is one attribute check, ids come from ``uuid4`` (never
the seeded run RNG), and nothing here may change results or raise into
the workload — flushing swallows and counts its own failures.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from contextlib import contextmanager

from repro.obs.events import emit_event
from repro.obs.registry import get_registry

#: Suffix turning a job id into its durable trace-blob id.  Dots are
#: legal in checkpoint ids on every backend, so ``<job_id>.trace`` rides
#: the checkpoint path unchanged.
TRACE_BLOB_SUFFIX = ".trace"

#: Format version of the persisted trace payload.
TRACE_BLOB_VERSION = 1

#: Spans kept per scope before further recording is dropped (and
#: counted) — a runaway generation loop must not balloon worker memory.
MAX_SPANS_PER_SCOPE = 4096

#: Default slow-op ledger threshold (seconds).
DEFAULT_SLOW_OP_SECONDS = 30.0


class _TracerState:
    """Process-global tracer switchboard (head sampling + slow-op ledger)."""

    __slots__ = ("enabled", "sample_rate", "slow_op_seconds")

    def __init__(self) -> None:
        self.enabled = False
        self.sample_rate = 1.0
        self.slow_op_seconds = DEFAULT_SLOW_OP_SECONDS


_state = _TracerState()
_context = threading.local()


def enable_tracing(
    sample_rate: float = 1.0,
    slow_op_seconds: float = DEFAULT_SLOW_OP_SECONDS,
) -> None:
    """Turn the tracer on with a head-sampling rate in ``[0, 1]``."""
    rate = float(sample_rate)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
    _state.sample_rate = rate
    _state.slow_op_seconds = float(slow_op_seconds)
    _state.enabled = True


def disable_tracing() -> None:
    """Turn the tracer off (sampling configuration is kept)."""
    _state.enabled = False


def tracing_enabled() -> bool:
    """True when the tracer is on."""
    return _state.enabled


# -- identities -------------------------------------------------------------


def new_trace_id() -> str:
    """A fresh 32-hex trace id (``uuid4``-backed, never the run RNG)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return uuid.uuid4().hex[:16]


def head_sampled(trace_id: str, rate: float) -> bool:
    """The head-based sampling decision for ``trace_id``.

    Derived from the id itself so every process that sees the trace —
    submitter, worker, resumer — reaches the same verdict without
    coordination.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    try:
        bucket = int(trace_id[:8], 16)
    except ValueError:
        return False
    return bucket < int(rate * 0x1_0000_0000)


def new_trace_info(sample_rate: float | None = None) -> dict | None:
    """Mint the trace identity a new job carries in ``extras["trace"]``.

    Returns ``None`` when tracing is off — the record then stays
    byte-identical to one from a tracing-unaware submitter.
    """
    if not _state.enabled:
        return None
    rate = _state.sample_rate if sample_rate is None else float(sample_rate)
    trace_id = new_trace_id()
    return {
        "id": trace_id,
        "root": new_span_id(),
        "sampled": head_sampled(trace_id, rate),
    }


def trace_context_from_extras(extras: object) -> dict | None:
    """The normalized trace identity stored in a record's extras, if any."""
    info = extras.get("trace") if isinstance(extras, dict) else None
    if not isinstance(info, dict) or not info.get("id"):
        return None
    return {
        "id": str(info["id"]),
        "root": str(info.get("root") or ""),
        "sampled": bool(info.get("sampled", True)),
    }


# -- span construction ------------------------------------------------------


def make_span(
    trace_id: str,
    parent_id: str,
    name: str,
    start: float,
    duration: float,
    span_id: str | None = None,
    **attrs: object,
) -> dict:
    """A finished span as a plain dict; ``None``-valued attrs are dropped."""
    span = {
        "trace_id": trace_id,
        "span_id": span_id or new_span_id(),
        "parent_id": parent_id or "",
        "name": name,
        "start": round(float(start), 6),
        "duration": round(max(0.0, float(duration)), 6),
    }
    kept = {key: value for key, value in attrs.items() if value is not None}
    if kept:
        span["attrs"] = kept
    return span


def _slow_op_check(span: dict) -> None:
    threshold = _state.slow_op_seconds
    if threshold <= 0 or span["duration"] < threshold:
        return
    get_registry().inc("repro_slow_ops_total", op=span["name"])
    emit_event(
        "slow_op",
        op=span["name"],
        seconds=span["duration"],
        trace_id=span["trace_id"],
        span_id=span["span_id"],
    )


class TraceScope:
    """Span collection context for one trace on one thread.

    ``stack`` holds the currently-open :class:`_LiveSpan` objects (for
    parenting and late attribute annotation); ``spans`` accumulates the
    finished ones.  ``record`` is lock-protected so explicitly-timed
    spans may be recorded from helper threads.
    """

    __slots__ = ("trace_id", "root_id", "spans", "stack", "dropped",
                 "collected", "_lock", "_prev")

    def __init__(self, trace_id: str, root_id: str = "") -> None:
        self.trace_id = trace_id
        self.root_id = root_id
        self.spans: list[dict] = []
        self.stack: list[_LiveSpan] = []
        self.dropped = 0
        #: Filled by :func:`deactivate`: the drained spans, kept
        #: reachable after a ``with activated(...)`` block exits.
        self.collected: list[dict] = []
        self._lock = threading.Lock()
        self._prev: TraceScope | None = None

    def record(self, span: dict) -> None:
        """Append a finished span (bounded; overflow counts as dropped)."""
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_SCOPE:
                self.dropped += 1
                return
            self.spans.append(span)
        _slow_op_check(span)

    def drain(self) -> list[dict]:
        """Remove and return everything recorded so far."""
        with self._lock:
            spans, self.spans = self.spans, []
        return spans


def activate(trace_id: str, root_id: str = "") -> TraceScope:
    """Open a collection scope for ``trace_id`` on this thread.

    Also turns the tracer on in this process: arriving trace context
    means an upstream opted in, and a fresh process-pool worker starts
    with tracing off.  New spans parent under ``root_id`` (the submit-
    time root span id) unless nested inside another open span.
    """
    scope = TraceScope(trace_id, root_id)
    scope._prev = getattr(_context, "scope", None)
    _context.scope = scope
    _state.enabled = True
    return scope


def deactivate(scope: TraceScope) -> list[dict]:
    """Close ``scope``, restore the outer one, return the collected spans.

    The spans are also stashed thread-locally so an exception path that
    unwinds past the caller can still recover them with
    :func:`take_stray_spans`.
    """
    _context.scope = scope._prev
    spans = scope.drain()
    scope.collected = spans
    _context.last_spans = spans
    return spans


def take_stray_spans() -> list[dict]:
    """Spans drained by the most recent :func:`deactivate` on this thread."""
    spans = getattr(_context, "last_spans", None)
    _context.last_spans = None
    return list(spans) if spans else []


@contextmanager
def activated(trace_id: str, root_id: str = ""):
    """``with``-shaped :func:`activate`; read ``scope.collected`` after."""
    scope = activate(trace_id, root_id)
    try:
        yield scope
    finally:
        deactivate(scope)


def current_scope() -> TraceScope | None:
    """The active scope on this thread, or ``None`` (also when disabled)."""
    if not _state.enabled:
        return None
    return getattr(_context, "scope", None)


def span_active() -> bool:
    """True when a span recorded now would actually land somewhere."""
    return _state.enabled and getattr(_context, "scope", None) is not None


class _NoopSpan:
    """Shared do-nothing span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open span: context manager that records itself on exit."""

    __slots__ = ("_scope", "name", "attrs", "span_id", "parent_id",
                 "_start_wall", "_start_perf")

    def __init__(self, scope: TraceScope, name: str, attrs: dict) -> None:
        self._scope = scope
        self.name = name
        self.attrs = attrs
        self.span_id = new_span_id()
        self.parent_id = ""

    def set(self, **attrs: object) -> "_LiveSpan":
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._scope.stack
        self.parent_id = stack[-1].span_id if stack else self._scope.root_id
        stack.append(self)
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        stack = self._scope.stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._scope.record(
            make_span(
                self._scope.trace_id,
                self.parent_id,
                self.name,
                self._start_wall,
                duration,
                span_id=self.span_id,
                **self.attrs,
            )
        )
        return False


def span(name: str, **attrs: object):
    """Open a child span of the current thread's trace context.

    Costs one attribute check when tracing is disabled, and a second
    lookup when no scope is active (e.g. ``repro evolve`` with tracing
    on but no traced job) — both return a shared no-op span.
    """
    if not _state.enabled:
        return _NOOP_SPAN
    scope = getattr(_context, "scope", None)
    if scope is None:
        return _NOOP_SPAN
    return _LiveSpan(scope, name, dict(attrs))


def record_span(
    name: str,
    duration: float,
    start: float | None = None,
    parent_id: str | None = None,
    **attrs: object,
) -> None:
    """Record an explicitly-timed span into the active context.

    For boundaries whose duration was measured out-of-band (a queue
    wait that began before this process existed, a batch timed with a
    single clock pair).  No-op without an active scope.
    """
    if not _state.enabled:
        return
    scope = getattr(_context, "scope", None)
    if scope is None:
        return
    if parent_id is None:
        parent_id = scope.stack[-1].span_id if scope.stack else scope.root_id
    if start is None:
        start = time.time() - duration
    scope.record(make_span(scope.trace_id, parent_id, name, start, duration, **attrs))


def annotate_span(**attrs: object) -> None:
    """Attach attributes to the innermost open span, if any.

    Lets a lower layer (the sharded store choosing a shard) enrich a
    span opened by a caller that cannot know the value.
    """
    if not _state.enabled:
        return
    scope = getattr(_context, "scope", None)
    if scope is None or not scope.stack:
        return
    scope.stack[-1].set(**attrs)


# -- network propagation ----------------------------------------------------

_TRACEPARENT_RE = re.compile(r"00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}")


def format_traceparent() -> str | None:
    """The current context as a ``traceparent``-style string, or ``None``."""
    if not _state.enabled:
        return None
    scope = getattr(_context, "scope", None)
    if scope is None:
        return None
    parent = scope.stack[-1].span_id if scope.stack else (scope.root_id or "0" * 16)
    return f"00-{scope.trace_id}-{parent}-01"


def parse_traceparent(value: object) -> tuple[str, str] | None:
    """``(trace_id, span_id)`` from a traceparent string, else ``None``."""
    if not isinstance(value, str):
        return None
    match = _TRACEPARENT_RE.fullmatch(value.strip())
    if match is None:
        return None
    return match.group(1), match.group(2)


# -- durable trace blobs ----------------------------------------------------


def trace_blob_id(job_id: str) -> str:
    """The checkpoint-path blob id holding ``job_id``'s trace."""
    return f"{job_id}{TRACE_BLOB_SUFFIX}"


def flush_spans(
    store: object,
    job_id: str,
    trace_id: str,
    spans: list[dict],
    dropped: int = 0,
) -> bool:
    """Merge ``spans`` into the job's durable trace blob; never raises.

    Read-modify-write deduplicated by span id (new wins), so the
    submitter, the worker, and a later resume can each flush their part
    and the blob converges to one connected trace.  A blob from a
    different trace id (a resubmitted job) is replaced outright.
    """
    if not spans:
        return False
    try:
        blob_id = trace_blob_id(job_id)
        existing = store.get_checkpoint(blob_id)
        merged: dict[str, dict] = {}
        if isinstance(existing, dict) and existing.get("trace_id") == trace_id:
            for item in existing.get("spans", []):
                if isinstance(item, dict) and item.get("span_id"):
                    merged[item["span_id"]] = item
            dropped += int(existing.get("dropped", 0) or 0)
        for item in spans:
            merged[item["span_id"]] = item
        payload = {
            "version": TRACE_BLOB_VERSION,
            "trace_id": trace_id,
            "job_id": job_id,
            "spans": sorted(
                merged.values(),
                key=lambda item: (item.get("start", 0.0), item.get("span_id", "")),
            ),
            "dropped": dropped,
        }
        store.put_checkpoint(blob_id, payload)
        return True
    except Exception:  # noqa: BLE001 - telemetry must never kill the job
        get_registry().inc("repro_errors_total", event="trace_flush_error")
        return False


def load_trace(store: object, job_id: str) -> dict | None:
    """The job's stored trace payload, or ``None`` when absent/malformed."""
    payload = store.get_checkpoint(trace_blob_id(job_id))
    if isinstance(payload, dict) and isinstance(payload.get("spans"), list):
        return payload
    return None


def flush_job_trace(
    store: object,
    record: object,
    spans: list[dict] | tuple = (),
    end: float | None = None,
) -> bool:
    """Flush a job's spans plus the synthesized ``repro.job`` root span.

    ``record`` is any job record (``job_id`` / ``status`` /
    ``submitted_at`` / ``extras``).  No-op for untraced records; the
    submit-time head-sampling decision gates persistence except for
    failed jobs, which always keep their trace.  The root span reuses
    the identity minted at submit (``extras["trace"]["root"]``), so
    repeated flushes update one root instead of stacking new ones.
    """
    info = trace_context_from_extras(getattr(record, "extras", None))
    if info is None:
        return False
    if not info["sampled"] and getattr(record, "status", "") != "failed":
        return False
    all_spans = list(spans)
    submitted = getattr(record, "submitted_at", None)
    if submitted:
        end_time = end if end is not None else time.time()
        all_spans.append(
            make_span(
                info["id"],
                "",
                "repro.job",
                start=submitted,
                duration=end_time - submitted,
                span_id=info["root"] or None,
                status=getattr(record, "status", None),
            )
        )
    return flush_spans(store, getattr(record, "job_id", ""), info["id"], all_spans)


# -- rendering --------------------------------------------------------------


def build_tree(spans: list[dict]) -> list[dict]:
    """Parent-linked span tree: ``[{"span": ..., "children": [...]}]``.

    Spans whose parent is missing from the set (sampling gaps, a lost
    flush) surface as extra roots rather than disappearing.
    """
    nodes = {
        item["span_id"]: {"span": item, "children": []}
        for item in spans
        if isinstance(item, dict) and item.get("span_id")
    }
    roots = []
    for node in nodes.values():
        parent = nodes.get(node["span"].get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    order = lambda n: (n["span"].get("start", 0.0), n["span"].get("span_id", ""))  # noqa: E731
    for node in nodes.values():
        node["children"].sort(key=order)
    roots.sort(key=order)
    return roots


def self_seconds(node: dict) -> float:
    """A node's own time: duration minus its direct children's."""
    children = sum(child["span"].get("duration", 0.0) for child in node["children"])
    return max(0.0, node["span"].get("duration", 0.0) - children)


def _format_attrs(attrs: dict) -> str:
    parts = [f"{key}={value}" for key, value in sorted(attrs.items())]
    text = " ".join(parts)
    return text if len(text) <= 48 else text[:45] + "..."


def render_waterfall(payload: dict, width: int = 40) -> str:
    """The ASCII waterfall ``repro trace JOB`` prints.

    One line per span: indented name, a time-positioned bar, duration,
    percent of the trace's wall clock, and self time (duration minus
    direct children — where the span itself did the work).
    """
    spans = [item for item in payload.get("spans", []) if isinstance(item, dict)]
    roots = build_tree(spans)
    if not roots:
        return "(no spans)"
    t0 = min(item.get("start", 0.0) for item in spans)
    t1 = max(item.get("start", 0.0) + item.get("duration", 0.0) for item in spans)
    total = max(t1 - t0, 1e-9)

    rows: list[tuple[int, dict]] = []

    def walk(node: dict, depth: int) -> None:
        rows.append((depth, node))
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)

    name_width = max(len("  " * depth + node["span"]["name"]) for depth, node in rows)
    name_width = min(max(name_width, 16), 44)
    lines = [
        f"trace {payload.get('trace_id', '')[:16]} · {payload.get('job_id', '')} · "
        f"{len(spans)} span(s) · {total:.2f}s"
    ]
    for depth, node in rows:
        item = node["span"]
        start = item.get("start", 0.0) - t0
        duration = item.get("duration", 0.0)
        offset = min(width - 1, int(start / total * width))
        length = max(1, min(width - offset, round(duration / total * width)))
        bar = " " * offset + "#" * length + " " * (width - offset - length)
        label = ("  " * depth + item["name"])[:name_width]
        line = (
            f"{label:<{name_width}} |{bar}| {duration:9.3f}s "
            f"{100.0 * duration / total:5.1f}%  self {self_seconds(node):.3f}s"
        )
        attrs = item.get("attrs")
        if attrs:
            line += f"  {_format_attrs(attrs)}"
        lines.append(line)
    if payload.get("dropped"):
        lines.append(f"({payload['dropped']} span(s) dropped at the recording cap)")
    return "\n".join(lines)
