"""Thread-safe telemetry registry: counters, gauges, histograms, timers.

The registry is the fleet's one metrics surface.  Every instrumented
layer — stores, the netstore server, workers, the evaluator, the GA
engines — records into the process-global registry returned by
:func:`get_registry`, and the exposition side (``GET /metrics`` on
``repro serve``, ``repro top``, ``--json`` CLI output) reads consistent
:meth:`MetricsRegistry.snapshot` structs from it.

Design constraints, in priority order:

* **Pure observer.**  Telemetry never touches RNG state, fingerprints,
  or stored results; it only reads monotonic clocks and bumps numbers
  under a lock.  Seeded runs are bit-identical with telemetry on or off
  (regression-tested in ``tests/test_eval_workers_determinism.py``).
* **Off by default, cheap when off.**  Library users pay one attribute
  check per instrumentation point; only the CLI entry points call
  :func:`enable`.  Hot-path overhead with telemetry *on* stays under
  the noise floor of ``benchmarks/bench_evaluation.py`` (asserted by
  ``benchmarks/bench_telemetry.py``).
* **Zero dependencies.**  Stdlib only, importable from any layer
  (:mod:`repro.core`, :mod:`repro.metrics`, :mod:`repro.service`)
  without cycles.

Metric naming follows the Prometheus conventions and is a stability
contract (recorded in ROADMAP.md): every series is prefixed ``repro_``,
counters end in ``_total``, timings are histograms in seconds ending in
``_seconds``.  Renaming or re-labelling a published series is a
breaking change for scrape configs and dashboards.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

#: Default histogram bucket bounds, tuned for operation latencies in
#: seconds: store ops and RPCs land in the 0.1ms–100ms decades, EM fits
#: and generation steps in the 1ms–10s decades.  ``+Inf`` is implicit.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Bucket bounds for size-shaped histograms (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

_INF = float("inf")


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(pairs: Sequence[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Histogram:
    """One histogram series: cumulative bucket counts plus sum/count."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges and histograms behind one lock.

    All mutating calls are safe from any number of threads; increments
    are never lost and :meth:`snapshot` is a consistent point-in-time
    copy (taken under the same lock the writers hold, then fully
    detached — a caller can iterate it while writers keep writing).

    ``enabled`` gates every write: a disabled registry's ``inc`` /
    ``set_gauge`` / ``observe`` return after one attribute check, which
    is what keeps telemetry free for library users who never opt in.
    Reads (``snapshot`` / ``render_prometheus``) always work.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._gauges: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._histograms: dict[str, dict[tuple[tuple[str, str], ...], _Histogram]] = {}
        self._histogram_bounds: dict[str, tuple[float, ...]] = {}
        # Snapshots pushed by other processes (workers reporting to a
        # serve endpoint), keyed by source id; rendered with a
        # ``source`` label so one scrape shows the whole fleet.
        self._external: dict[str, tuple[float, dict]] = {}

    # -- writers ------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        if not self.enabled:
            return
        key = _labels_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        if not self.enabled:
            return
        key = _labels_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def declare_histogram(self, name: str, buckets: Sequence[float]) -> None:
        """Pin ``name``'s bucket bounds (before the first observation).

        Redeclaring with *different* bounds after observations exist
        raises ``ValueError``: the live series was already bucketed with
        the old bounds, so the late declaration would silently ship
        wrong buckets.  Redeclaring identical bounds stays legal (module
        import-time declarations run more than once under test reloads).
        """
        bounds = tuple(sorted(float(b) for b in buckets))
        with self._lock:
            series = self._histograms.get(name)
            if series:
                effective = next(iter(series.values())).bounds
                if effective != bounds:
                    raise ValueError(
                        f"histogram {name!r} already has observations with "
                        f"buckets {effective}; declare_histogram must run "
                        "before the first observe()"
                    )
            self._histogram_bounds[name] = bounds

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        if not self.enabled:
            return
        key = _labels_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                bounds = self._histogram_bounds.get(name, DEFAULT_SECONDS_BUCKETS)
                histogram = series[key] = _Histogram(bounds)
            histogram.observe(float(value))

    @contextmanager
    def time(self, name: str, **labels: str) -> Iterator[None]:
        """Time a block on the monotonic clock into histogram ``name``.

        The clock is only read when the registry is enabled, so a
        disabled registry's timer is two attribute checks and nothing
        else.
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, **labels)

    # -- fleet ingest --------------------------------------------------------

    def ingest(self, source: str, snapshot: dict,
               max_sources: int = 1024) -> None:
        """Merge a pushed :meth:`snapshot` from another process.

        Workers push their registry snapshots to the serve endpoint
        (``POST /telemetry``); each source's latest snapshot replaces
        its previous one (snapshots are cumulative, so replacement —
        not addition — is the correct merge).  Rendering adds a
        ``source`` label to every ingested series.  Ingest always works,
        even on a disabled registry: the *server* decides whether to
        expose fleet telemetry, not the pushing worker.
        """
        if not isinstance(snapshot, dict):
            return
        with self._lock:
            self._external[str(source)] = (time.time(), snapshot)
            while len(self._external) > max_sources:
                oldest = min(self._external, key=lambda s: self._external[s][0])
                del self._external[oldest]

    def external_sources(self, max_age_seconds: float = 600.0) -> dict[str, dict]:
        """Recently pushed snapshots by source (stale sources dropped)."""
        cutoff = time.time() - max_age_seconds
        with self._lock:
            return {
                source: snapshot
                for source, (received, snapshot) in self._external.items()
                if received >= cutoff
            }

    # -- readers ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent, JSON-ready copy of every local series."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(key), "value": value}
                for name, series in sorted(self._counters.items())
                for key, value in sorted(series.items())
            ]
            gauges = [
                {"name": name, "labels": dict(key), "value": value}
                for name, series in sorted(self._gauges.items())
                for key, value in sorted(series.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": dict(key),
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, series in sorted(self._histograms.items())
                for key, h in sorted(series.items())
            ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of local + ingested series."""
        sections: dict[str, tuple[str, list[str]]] = {}

        def add(kind: str, entry: dict, extra: dict[str, str]) -> None:
            name = str(entry.get("name", ""))
            if not name:
                return
            labels = {**entry.get("labels", {}), **extra}
            _, lines = sections.setdefault(name, (kind, []))
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_format_labels(sorted(labels.items()))} "
                    f"{_format_value(float(entry.get('value', 0.0)))}"
                )
                return
            bounds = [float(b) for b in entry.get("bounds", [])]
            counts = [int(c) for c in entry.get("counts", [])]
            cumulative = 0
            for bound, count in zip(bounds + [_INF], counts):
                cumulative += count
                bucket_labels = sorted({**labels, "le": _format_value(bound)}.items())
                lines.append(f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}")
            pairs = sorted(labels.items())
            lines.append(f"{name}_sum{_format_labels(pairs)} "
                         f"{_format_value(float(entry.get('sum', 0.0)))}")
            lines.append(f"{name}_count{_format_labels(pairs)} "
                         f"{int(entry.get('count', 0))}")

        def add_snapshot(snapshot: dict, extra: dict[str, str]) -> None:
            for entry in snapshot.get("counters", []):
                add("counter", entry, extra)
            for entry in snapshot.get("gauges", []):
                add("gauge", entry, extra)
            for entry in snapshot.get("histograms", []):
                add("histogram", entry, extra)

        add_snapshot(self.snapshot(), {})
        for source, snapshot in sorted(self.external_sources().items()):
            add_snapshot(snapshot, {"source": source})

        out: list[str] = []
        for name in sorted(sections):
            kind, lines = sections[name]
            out.append(f"# TYPE {name} {kind}")
            out.extend(lines)
        return "\n".join(out) + ("\n" if out else "")

    def reset(self) -> None:
        """Drop every recorded series (tests and long-lived monitors)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._external.clear()


# -- the process-global registry ---------------------------------------------

#: Disabled by default: importing repro and running the library records
#: nothing until a CLI entry point (or a test) opts in via enable().
_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented layer records into."""
    return _registry


def enable() -> MetricsRegistry:
    """Turn telemetry on process-wide; returns the global registry."""
    _registry.enabled = True
    return _registry


def disable() -> None:
    """Turn telemetry off process-wide (writes become near-free no-ops)."""
    _registry.enabled = False


def is_enabled() -> bool:
    """Whether the process-global registry is recording."""
    return _registry.enabled
