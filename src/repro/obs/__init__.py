"""Fleet-wide telemetry: metrics registry, structured events, timelines.

``repro.obs`` is the observability substrate the rest of the codebase
records into.  It is stdlib-only and sits below every other layer, so
:mod:`repro.core`, :mod:`repro.metrics` and :mod:`repro.service` can all
import it without cycles.  Telemetry is **off by default**: library
users pay a single attribute check per instrumentation point until a
CLI entry point (or a test) calls :func:`enable`.

The package splits into five small pieces:

* :mod:`repro.obs.registry` — thread-safe counters/gauges/histograms,
  Prometheus text rendering, and fleet snapshot ingest.
* :mod:`repro.obs.events` — the JSONL structured event log behind
  ``--log-json`` (stderr and/or a size-rotated file sink).
* :mod:`repro.obs.instrument` — the store-op timing proxy.
* :mod:`repro.obs.timeline` — per-job generation-by-generation traces
  persisted through ``JobResult.extras``.
* :mod:`repro.obs.trace` — causal spans across the fleet behind
  ``--trace-sample``, flushed to durable per-job trace blobs.
"""

from repro.obs.events import (
    EventLog,
    RotatingFileStream,
    TeeStream,
    configure_events,
    emit_event,
    get_event_log,
)
from repro.obs.instrument import (
    InstrumentedStore,
    instrument_store,
    store_backend_label,
)
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    disable,
    enable,
    escape_label_value,
    get_registry,
    is_enabled,
)
from repro.obs.timeline import (
    TIMELINE_HEADER,
    timeline_from_history,
    timeline_rows,
    timeline_summary,
)
from repro.obs.trace import (
    DEFAULT_SLOW_OP_SECONDS,
    TRACE_BLOB_SUFFIX,
    TraceScope,
    activate,
    activated,
    annotate_span,
    build_tree,
    deactivate,
    disable_tracing,
    enable_tracing,
    flush_job_trace,
    flush_spans,
    format_traceparent,
    head_sampled,
    load_trace,
    make_span,
    new_span_id,
    new_trace_id,
    new_trace_info,
    parse_traceparent,
    record_span,
    render_waterfall,
    span,
    span_active,
    take_stray_spans,
    trace_blob_id,
    trace_context_from_extras,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_SLOW_OP_SECONDS",
    "EventLog",
    "InstrumentedStore",
    "MetricsRegistry",
    "RotatingFileStream",
    "TIMELINE_HEADER",
    "TRACE_BLOB_SUFFIX",
    "TeeStream",
    "TraceScope",
    "activate",
    "activated",
    "annotate_span",
    "build_tree",
    "configure_events",
    "deactivate",
    "disable",
    "disable_tracing",
    "emit_event",
    "enable",
    "enable_tracing",
    "escape_label_value",
    "flush_job_trace",
    "flush_spans",
    "format_traceparent",
    "get_event_log",
    "get_registry",
    "head_sampled",
    "instrument_store",
    "is_enabled",
    "load_trace",
    "make_span",
    "new_span_id",
    "new_trace_id",
    "new_trace_info",
    "parse_traceparent",
    "record_span",
    "render_waterfall",
    "span",
    "span_active",
    "store_backend_label",
    "take_stray_spans",
    "timeline_from_history",
    "timeline_rows",
    "timeline_summary",
    "trace_blob_id",
    "trace_context_from_extras",
    "tracing_enabled",
]
