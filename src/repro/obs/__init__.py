"""Fleet-wide telemetry: metrics registry, structured events, timelines.

``repro.obs`` is the observability substrate the rest of the codebase
records into.  It is stdlib-only and sits below every other layer, so
:mod:`repro.core`, :mod:`repro.metrics` and :mod:`repro.service` can all
import it without cycles.  Telemetry is **off by default**: library
users pay a single attribute check per instrumentation point until a
CLI entry point (or a test) calls :func:`enable`.

The package splits into four small pieces:

* :mod:`repro.obs.registry` — thread-safe counters/gauges/histograms,
  Prometheus text rendering, and fleet snapshot ingest.
* :mod:`repro.obs.events` — the JSONL structured event log behind
  ``--log-json``.
* :mod:`repro.obs.instrument` — the store-op timing proxy.
* :mod:`repro.obs.timeline` — per-job generation-by-generation traces
  persisted through ``JobResult.extras``.
"""

from repro.obs.events import (
    EventLog,
    configure_events,
    emit_event,
    get_event_log,
)
from repro.obs.instrument import (
    InstrumentedStore,
    instrument_store,
    store_backend_label,
)
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    disable,
    enable,
    escape_label_value,
    get_registry,
    is_enabled,
)
from repro.obs.timeline import (
    TIMELINE_HEADER,
    timeline_from_history,
    timeline_rows,
    timeline_summary,
)

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EventLog",
    "InstrumentedStore",
    "MetricsRegistry",
    "TIMELINE_HEADER",
    "configure_events",
    "disable",
    "emit_event",
    "enable",
    "escape_label_value",
    "get_event_log",
    "get_registry",
    "instrument_store",
    "is_enabled",
    "store_backend_label",
    "timeline_from_history",
    "timeline_rows",
    "timeline_summary",
]
