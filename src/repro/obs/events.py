"""Structured run events: one JSON object per line, machine-first.

The event log is the narrative half of the telemetry layer: where the
registry answers "how many / how fast", events answer "what happened,
when, to which job".  Every event is one JSON line::

    {"ts": 1754550000.123, "event": "job_completed",
     "job_id": "adult-s42-ab12cd34ef", "worker": "host-71-a1b2c3", ...}

``ts`` is wall-clock epoch seconds, ``event`` the typed name; all other
fields are event-specific, flat, and JSON-scalar so downstream tooling
(``jq``, log shippers) never needs schema negotiation.  The stream is
line-buffered and written under a lock, so concurrent threads (the
heartbeat thread, server handler threads) never interleave bytes within
a line.

The log is disabled by default; ``--log-json`` on the service CLI
commands routes it to stderr (keeping stdout's tables clean for humans
and pipes).  Every emitted event also bumps the
``repro_events_total{event=...}`` counter, and events whose name ends in
``_error`` bump ``repro_errors_total{event=...}`` — that counter is how
a dying heartbeat becomes visible on ``/metrics`` before its claims go
stale.

Like the registry, the event log is a pure observer: it reads clocks
and writes bytes, never touching RNG streams, fingerprints, or results.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import IO

from repro.obs.registry import get_registry


class RotatingFileStream:
    """Append-only JSONL file sink with size-based rotation.

    Backs ``--log-json-file``: a long-lived worker's event log must not
    fill a disk.  When the file would exceed ``max_bytes`` it rotates to
    ``<path>.1`` (overwriting the previous backup), bounding total usage
    at roughly ``2 * max_bytes`` regardless of uptime.  Write errors
    propagate to :meth:`EventLog.emit`'s catch — the log counts them and
    the workload never sees them.
    """

    def __init__(self, path: str | Path, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    @property
    def backup_path(self) -> Path:
        """Where the rotated-out predecessor lands (``<path>.1``)."""
        return self.path.with_suffix(self.path.suffix + ".1")

    def write(self, text: str) -> int:
        # len(text) under-counts multibyte lines, but rotation is a disk
        # bound, not an accounting guarantee — close enough is correct.
        position = self._file.tell()
        if position > 0 and position + len(text) > self.max_bytes:
            self._rotate()
        return self._file.write(text)

    def _rotate(self) -> None:
        self._file.close()
        self.path.replace(self.backup_path)
        self._file = open(self.path, "a", encoding="utf-8")

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class TeeStream:
    """Fan one event line out to several sinks (stderr plus a file)."""

    def __init__(self, *streams: IO[str]) -> None:
        self.streams = streams

    def write(self, text: str) -> int:
        for stream in self.streams:
            stream.write(text)
        return len(text)

    def flush(self) -> None:
        for stream in self.streams:
            stream.flush()


class EventLog:
    """A JSONL event sink bound to one text stream.

    ``emit`` never raises: a closed pipe or full disk degrades
    telemetry, and telemetry must never take the workload down with it.
    Write failures are counted (``repro_errors_total{event=event_log_write_error}``)
    so a silent sink is still visible on the metrics side.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        #: Bound fields stamped onto every event this log emits
        #: (e.g. the worker id); set once at configure time.
        self.bound: dict[str, object] = {}

    @property
    def enabled(self) -> bool:
        """Whether this log has a live stream to write to."""
        return self._stream is not None

    def bind(self, **fields: object) -> "EventLog":
        """Stamp ``fields`` onto every subsequent event (returns self)."""
        self.bound.update(fields)
        return self

    def emit(self, event: str, **fields: object) -> None:
        """Write one structured event line (no-op without a stream)."""
        registry = get_registry()
        registry.inc("repro_events_total", event=event)
        if event.endswith("_error"):
            registry.inc("repro_errors_total", event=event)
        stream = self._stream
        if stream is None:
            return
        payload: dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        payload.update(self.bound)
        payload.update(fields)
        try:
            line = json.dumps(payload, default=str, sort_keys=False)
            with self._lock:
                stream.write(line + "\n")
                stream.flush()
        except Exception:  # noqa: BLE001 - telemetry must never kill the job
            registry.inc("repro_errors_total", event="event_log_write_error")

    def close(self) -> None:
        """Detach the stream (the stream itself is the caller's to close)."""
        self._stream = None


# -- the process-global event log --------------------------------------------

_event_log = EventLog()


def get_event_log() -> EventLog:
    """The process-global event log every instrumented layer emits to."""
    return _event_log


def configure_events(stream: IO[str] | None, **bound: object) -> EventLog:
    """Point the global event log at ``stream`` (None disables it)."""
    global _event_log
    _event_log = EventLog(stream).bind(**bound)
    return _event_log


def emit_event(event: str, **fields: object) -> None:
    """Emit one structured event through the global log.

    Counter bumps happen even without a configured stream (so error
    events always reach ``/metrics``); the JSON line itself only flows
    once ``--log-json`` (or :func:`configure_events`) attached a stream.
    """
    _event_log.emit(event, **fields)
