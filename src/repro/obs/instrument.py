"""Store instrumentation: a timing proxy over any ``STORE_PROTOCOL`` store.

Store operations are the fleet's hottest shared path — every claim,
heartbeat, queue poll and recovery pass crosses them — so their latency
per backend is the first series an operator reaches for.  Rather than
threading timers through three store implementations (and every future
one), :class:`InstrumentedStore` wraps any store object and times the
protocol methods into ``repro_store_op_seconds{op=...,backend=...}``,
counting failures in ``repro_store_op_errors_total``.

The proxy is semantically invisible: every attribute not on the timed
list forwards untouched (``cache_path``, ``checkpoints_dir``, ``root``,
backend-specific extras like ``push_telemetry``), timed methods return
exactly what the wrapped method returns, and exceptions propagate
unchanged after being counted.  Wrapped callables are cached on the
instance, so steady-state dispatch costs one dict hit.
"""

from __future__ import annotations

import time

from repro.obs.registry import get_registry

#: The store-protocol operations worth a latency series.  ``claim``,
#: ``claim_batch``, ``heartbeat`` and ``recover_stale_claims`` are the
#: fleet-scale hot path; the rest round out the lifecycle picture.
TIMED_STORE_OPS = frozenset({
    "submit", "save", "get", "records", "queued",
    "mark_running", "mark_completed", "mark_failed", "requeue",
    "claim", "claim_batch", "steal_batch", "release", "heartbeat",
    "claim_info", "claims", "claimed_job_ids", "recover_stale_claims",
    "get_checkpoint", "put_checkpoint",
})


def store_backend_label(store: object) -> str:
    """A stable backend label for ``store``: file, sqlite, remote, or shard."""
    if getattr(store, "base_url", None):
        return "remote"
    spec = str(getattr(store, "spec", ""))
    if spec.startswith("shard:"):
        return "shard"
    if spec.startswith("sqlite:"):
        return "sqlite"
    return "file"


class InstrumentedStore:
    """Times the protocol methods of ``store`` into the global registry."""

    def __init__(self, store: object, backend: str | None = None) -> None:
        # Attribute names that would shadow the proxied store's own are
        # prefixed; __getattr__ only fires for everything else.
        self._obs_store = store
        self._obs_backend = backend if backend is not None else store_backend_label(store)

    @property
    def wrapped(self) -> object:
        """The store this proxy instruments."""
        return self._obs_store

    def __getattr__(self, name: str):
        value = getattr(self._obs_store, name)
        if name not in TIMED_STORE_OPS or not callable(value):
            return value
        backend = self._obs_backend
        registry = get_registry()

        def timed(*args: object, **kwargs: object):
            if not registry.enabled:
                return value(*args, **kwargs)
            start = time.perf_counter()
            try:
                return value(*args, **kwargs)
            except Exception:
                registry.inc("repro_store_op_errors_total", op=name, backend=backend)
                raise
            finally:
                registry.observe("repro_store_op_seconds",
                                 time.perf_counter() - start,
                                 op=name, backend=backend)

        timed.__name__ = name
        # Cache on the instance so the next access skips __getattr__.
        object.__setattr__(self, name, timed)
        return timed

    def __repr__(self) -> str:
        return f"InstrumentedStore({self._obs_store!r}, backend={self._obs_backend!r})"


def instrument_store(store: object, backend: str | None = None) -> InstrumentedStore:
    """Wrap ``store`` for op-latency telemetry (idempotent)."""
    if isinstance(store, InstrumentedStore):
        return store
    return InstrumentedStore(store, backend)
