"""Protection method interface.

A protection method transforms an original microdata file into a masked
(protected) one.  Following the paper's experimental setup, a method is
applied to a subset of *protected attributes*; all other attributes pass
through unchanged.  Every masked file keeps the original schema — masked
values are always existing categories of the attribute's domain — which
is the invariant the GA's operators rely on.

Methods are configured at construction and applied with
:meth:`ProtectionMethod.protect`; stochastic methods draw all randomness
from the ``seed`` argument so protections are reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes
from repro.exceptions import ProtectionError
from repro.utils.rng import as_generator


class ProtectionMethod(ABC):
    """Base class for SDC protection methods on categorical microdata."""

    #: Short machine name used by registries and reports (e.g. ``"pram"``).
    method_name: str = "abstract"

    @abstractmethod
    def protect_column(
        self,
        dataset: CategoricalDataset,
        column: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return masked codes for one column of ``dataset``.

        Implementations must return a fresh integer array of length
        ``dataset.n_records`` whose entries are valid codes of the
        column's domain.
        """

    def protect(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        seed: int | np.random.Generator | None = None,
        name: str | None = None,
    ) -> CategoricalDataset:
        """Mask ``attributes`` of ``original`` and return the protected file."""
        if not attributes:
            raise ProtectionError("protect() needs at least one attribute")
        columns = require_attributes(original, attributes)
        rng = as_generator(seed)
        codes = original.codes_copy()
        for column in columns:
            masked = np.asarray(self.protect_column(original, column, rng), dtype=np.int64)
            if masked.shape != (original.n_records,):
                raise ProtectionError(
                    f"{self.method_name}: column protector returned shape {masked.shape}, "
                    f"expected ({original.n_records},)"
                )
            original.schema.domain(column).validate_codes(masked)
            codes[:, column] = masked
        label = name if name is not None else f"{original.name}:{self.describe()}"
        return original.with_codes(codes, name=label)

    def describe(self) -> str:
        """One-line parameterization summary used in protection names."""
        return self.method_name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class MethodRegistry:
    """Name -> factory registry so harnesses can build methods from specs."""

    def __init__(self) -> None:
        self._factories: dict[str, type[ProtectionMethod]] = {}

    def register(self, cls: type[ProtectionMethod]) -> type[ProtectionMethod]:
        """Register ``cls`` under its ``method_name`` (decorator-friendly)."""
        key = cls.method_name
        if key in self._factories:
            raise ProtectionError(f"method {key!r} already registered")
        self._factories[key] = cls
        return cls

    def create(self, name: str, **params: object) -> ProtectionMethod:
        """Instantiate the method registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise ProtectionError(
                f"unknown method {name!r}; registered: {sorted(self._factories)}"
            ) from None
        return factory(**params)  # type: ignore[arg-type]

    def names(self) -> list[str]:
        """Registered method names, sorted."""
        return sorted(self._factories)


#: Global registry used by :mod:`repro.experiments.population_builder`.
registry = MethodRegistry()
