"""Top and bottom coding (Hundepool & Willenborg, 1998).

Top coding collapses all values *above* a cutoff into the cutoff
category; bottom coding collapses all values *below* a cutoff into it.
Both are non-perturbative: they only generalize the tails of an ordered
attribute, which removes the rare extreme values that drive
re-identification.

Cutoffs are expressed as a *fraction of the domain* to collapse, so one
parameterization sweeps across attributes with different cardinalities —
this is how the paper's population builder generates several top/bottom
coding variants per dataset.  For nominal attributes the code order
stands in for the value order (the common toolkit behaviour when coding
is requested on an unordered attribute); the tails then are the
highest/lowest codes.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry


def _cutoff_categories(domain_size: int, fraction: float) -> int:
    """Number of tail categories collapsed for a domain of ``domain_size``.

    At least one category is collapsed, and at least one category always
    survives outside the tail.
    """
    collapsed = int(round(domain_size * fraction))
    return max(1, min(domain_size - 1, collapsed))


class TopCoding(ProtectionMethod):
    """Collapse the top ``fraction`` of the domain into the cutoff category."""

    method_name = "top_coding"

    def __init__(self, fraction: float = 0.2) -> None:
        if not 0 < fraction < 1:
            raise ProtectionError(f"top coding needs 0 < fraction < 1, got {fraction}")
        self.fraction = float(fraction)

    def describe(self) -> str:
        return f"topcode(f={self.fraction:g})"

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        domain = dataset.schema.domain(column)
        if domain.size < 2:
            return dataset.column(column).copy()
        collapsed = _cutoff_categories(domain.size, self.fraction)
        cutoff = domain.size - 1 - collapsed
        # Values strictly above the cutoff land on the cutoff category
        # itself (the highest surviving code).
        return np.minimum(dataset.column(column), cutoff).astype(np.int64)


class BottomCoding(ProtectionMethod):
    """Collapse the bottom ``fraction`` of the domain into the cutoff category."""

    method_name = "bottom_coding"

    def __init__(self, fraction: float = 0.2) -> None:
        if not 0 < fraction < 1:
            raise ProtectionError(f"bottom coding needs 0 < fraction < 1, got {fraction}")
        self.fraction = float(fraction)

    def describe(self) -> str:
        return f"bottomcode(f={self.fraction:g})"

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        domain = dataset.schema.domain(column)
        if domain.size < 2:
            return dataset.column(column).copy()
        collapsed = _cutoff_categories(domain.size, self.fraction)
        cutoff = collapsed
        return np.maximum(dataset.column(column), cutoff).astype(np.int64)


registry.register(TopCoding)
registry.register(BottomCoding)
