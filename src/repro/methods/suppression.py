"""Local suppression (extension beyond the paper's method set).

Local suppression blanks individual risky cells.  Because the library
keeps every protected file inside the original domains, a "suppressed"
cell is published as the attribute's *modal* category — the least
informative in-domain value — rather than a missing-value token.  Cells
are chosen either uniformly at random or rarest-first (rare values carry
the highest re-identification risk).

This method is not part of the paper's initial populations; it exists so
users can extend the population mix, and it doubles as a stress-test
protection in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry


class LocalSuppression(ProtectionMethod):
    """Replace a fraction of cells with the attribute's modal category.

    Parameters
    ----------
    fraction:
        Fraction of records whose cell is suppressed per attribute.
    target:
        ``"random"`` suppresses uniformly chosen cells, ``"rarest"``
        suppresses the cells holding the rarest categories first.
    """

    method_name = "local_suppression"

    def __init__(self, fraction: float = 0.1, target: str = "random") -> None:
        if not 0 < fraction <= 1:
            raise ProtectionError(f"suppression needs 0 < fraction <= 1, got {fraction}")
        if target not in ("random", "rarest"):
            raise ProtectionError(f"unknown target {target!r}")
        self.fraction = float(fraction)
        self.target = target

    def describe(self) -> str:
        return f"suppress(f={self.fraction:g},{self.target})"

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        values = dataset.column(column).copy()
        n = values.shape[0]
        n_suppress = max(1, int(round(n * self.fraction)))
        counts = dataset.value_counts(column)
        mode = int(np.argmax(counts))
        if self.target == "random":
            rows = rng.choice(n, size=min(n_suppress, n), replace=False)
        else:
            # Rarest-first: order rows by their value's frequency with a
            # random tie-break, suppress the head of that order.
            tiebreak = rng.permutation(n)
            order = np.lexsort((tiebreak, counts[values]))
            rows = order[:n_suppress]
        values[rows] = mode
        return values


registry.register(LocalSuppression)
