"""Global recoding via value generalization hierarchies.

Global recoding merges categories into coarser groups and publishes the
group instead of the detailed value — classic non-perturbative
generalization (paper reference [6]).  To keep every protected file
inside the original attribute domains (the invariant the GA's operators
require, see :mod:`repro.hierarchy.vgh`), each group is published as one
*representative existing category* of the group:

* ``"mode"`` — the group's most frequent category in the original data
  (ties to the lowest code), the analogue of publishing the dominant
  value;
* ``"median"`` — the group's median category by code, natural for
  ordinal attributes;
* ``"first"`` — the group's lowest code, fully deterministic and
  data-independent.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.hierarchy.builders import fanout_hierarchy
from repro.hierarchy.vgh import ValueHierarchy
from repro.methods.base import ProtectionMethod, registry

_REPRESENTATIVES = ("mode", "median", "first")


class GlobalRecoding(ProtectionMethod):
    """Recode each protected attribute at one generalization level.

    Parameters
    ----------
    level:
        Generalization level (1 = mildest).  Levels beyond an attribute's
        hierarchy clamp to its top level.
    representative:
        How each merged group is published (see module docstring).
    fanout:
        Fanout of the automatically built hierarchy when no explicit
        hierarchy is supplied for an attribute.
    hierarchies:
        Optional explicit ``attribute name -> ValueHierarchy`` overrides.
    """

    method_name = "global_recoding"

    def __init__(
        self,
        level: int = 1,
        representative: str = "mode",
        fanout: int = 2,
        hierarchies: dict[str, ValueHierarchy] | None = None,
    ) -> None:
        if level < 1:
            raise ProtectionError(f"recoding level must be >= 1, got {level}")
        if representative not in _REPRESENTATIVES:
            raise ProtectionError(
                f"unknown representative {representative!r}; choose from {_REPRESENTATIVES}"
            )
        if fanout < 2:
            raise ProtectionError(f"fanout must be >= 2, got {fanout}")
        self.level = level
        self.representative = representative
        self.fanout = fanout
        self.hierarchies = dict(hierarchies) if hierarchies else {}

    def describe(self) -> str:
        return f"recode(level={self.level},{self.representative},fanout={self.fanout})"

    def _hierarchy_for(self, dataset: CategoricalDataset, column: int) -> ValueHierarchy:
        domain = dataset.schema.domain(column)
        hierarchy = self.hierarchies.get(domain.name)
        if hierarchy is None:
            hierarchy = fanout_hierarchy(domain, fanout=self.fanout)
        elif hierarchy.domain != domain:
            raise ProtectionError(
                f"hierarchy for {domain.name!r} was built over a different domain"
            )
        return hierarchy

    def _representative_codes(
        self, hierarchy: ValueHierarchy, level: int, counts: np.ndarray
    ) -> np.ndarray:
        """Representative original code for every group at ``level``."""
        n_groups = hierarchy.n_groups(level)
        representatives = np.empty(n_groups, dtype=np.int64)
        for group in range(n_groups):
            members = hierarchy.members(level, group)
            if self.representative == "first":
                representatives[group] = members[0]
            elif self.representative == "median":
                representatives[group] = members[len(members) // 2]
            else:  # mode
                representatives[group] = members[int(np.argmax(counts[members]))]
        return representatives

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        hierarchy = self._hierarchy_for(dataset, column)
        level = min(self.level, hierarchy.n_levels - 1)
        if level == 0:
            return dataset.column(column).copy()
        groups = hierarchy.generalize_codes(dataset.column(column), level)
        counts = dataset.value_counts(column)
        representatives = self._representative_codes(hierarchy, level, counts)
        return representatives[groups]


registry.register(GlobalRecoding)
