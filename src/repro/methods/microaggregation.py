"""Median-based microaggregation for categorical variables (Torra, 2004).

Microaggregation partitions the records into small groups of at least
``k`` similar records and replaces every value in a group by the group's
aggregate.  For categorical data (paper reference [7]) the aggregate is
the **median** category for ordinal attributes and the **mode** (most
frequent category, ties to the lowest code) for nominal attributes, and
similarity is value order for ordinal attributes / frequency order for
nominal ones.

Two partition strategies reproduce the many microaggregation variants of
the paper's initial populations:

* ``"univariate"`` — each protected attribute is sorted and partitioned
  independently (classical individual-ranking microaggregation);
* ``"joint"`` — records are sorted once by the tuple of all protected
  attributes (a fixed projection of the multivariate space) and the same
  partition masks every protected attribute, giving stronger but lossier
  protection.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry


def _group_boundaries(n_records: int, k: int) -> list[tuple[int, int]]:
    """Contiguous groups of size >= k covering ``range(n_records)``.

    All groups have exactly ``k`` members except the last, which absorbs
    the remainder (the standard fixed-size microaggregation heuristic:
    a remainder smaller than ``k`` may not form its own group).
    """
    if n_records < k:
        return [(0, n_records)]
    boundaries = []
    start = 0
    while n_records - start >= 2 * k:
        boundaries.append((start, start + k))
        start += k
    boundaries.append((start, n_records))
    return boundaries


def _aggregate(codes: np.ndarray, ordinal: bool) -> int:
    """Group aggregate: median code if ordinal, modal code otherwise."""
    if ordinal:
        return int(np.median(codes))
    counts = np.bincount(codes)
    return int(np.argmax(counts))


class Microaggregation(ProtectionMethod):
    """Categorical microaggregation with minimum group size ``k``.

    Parameters
    ----------
    k:
        Minimum group size (>= 2); larger ``k`` means stronger masking.
    strategy:
        ``"univariate"`` or ``"joint"`` (see module docstring).
    sort_attributes:
        Only used by ``"joint"``: the attributes defining the sort order.
        Defaults to the attributes being protected, in protect() order.
    """

    method_name = "microaggregation"

    def __init__(self, k: int = 3, strategy: str = "univariate", sort_attributes: tuple[str, ...] | None = None) -> None:
        if k < 2:
            raise ProtectionError(f"microaggregation needs k >= 2, got {k}")
        if strategy not in ("univariate", "joint"):
            raise ProtectionError(f"unknown strategy {strategy!r}")
        self.k = k
        self.strategy = strategy
        self.sort_attributes = sort_attributes
        self._joint_order_cache: tuple[bytes, np.ndarray] | None = None

    def describe(self) -> str:
        return f"microagg(k={self.k},{self.strategy})"

    def _sort_order(self, dataset: CategoricalDataset, column: int) -> np.ndarray:
        """Record ordering that defines which records are 'similar'."""
        domain = dataset.schema.domain(column)
        if self.strategy == "univariate":
            values = dataset.column(column)
            if domain.ordinal:
                key = values
            else:
                # Nominal: order categories by frequency so that records
                # with similarly common values end up adjacent.
                counts = dataset.value_counts(column)
                key = counts[values] * (domain.size + 1) + values
            return np.argsort(key, kind="stable")
        # Joint: one shared ordering by the tuple of sort attributes.
        fingerprint = dataset.fingerprint()
        if self._joint_order_cache is not None and self._joint_order_cache[0] == fingerprint:
            return self._joint_order_cache[1]
        attrs = self.sort_attributes
        if attrs is None:
            raise ProtectionError("joint microaggregation needs sort_attributes")
        key_columns = [dataset.column(name) for name in reversed(attrs)]
        order = np.lexsort(tuple(key_columns))
        self._joint_order_cache = (fingerprint, order)
        return order

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        domain = dataset.schema.domain(column)
        order = self._sort_order(dataset, column)
        values = dataset.column(column)
        masked = values.copy()
        sorted_values = values[order]
        for start, stop in _group_boundaries(dataset.n_records, self.k):
            aggregate = _aggregate(sorted_values[start:stop], domain.ordinal)
            masked[order[start:stop]] = aggregate
        return masked


registry.register(Microaggregation)
