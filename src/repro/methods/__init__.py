"""SDC protection methods for categorical microdata."""

from repro.methods.base import MethodRegistry, ProtectionMethod, registry
from repro.methods.global_recoding import GlobalRecoding
from repro.methods.mdav import MdavMicroaggregation
from repro.methods.microaggregation import Microaggregation
from repro.methods.pipeline import ProtectionPipeline
from repro.methods.pram import (
    InvariantPram,
    Pram,
    apply_transition_matrix,
    basic_transition_matrix,
    invariant_transition_matrix,
)
from repro.methods.rank_swapping import RankSwapping
from repro.methods.suppression import LocalSuppression
from repro.methods.top_bottom_coding import BottomCoding, TopCoding

__all__ = [
    "MethodRegistry",
    "ProtectionMethod",
    "registry",
    "Microaggregation",
    "MdavMicroaggregation",
    "RankSwapping",
    "Pram",
    "InvariantPram",
    "TopCoding",
    "BottomCoding",
    "GlobalRecoding",
    "LocalSuppression",
    "ProtectionPipeline",
    "apply_transition_matrix",
    "basic_transition_matrix",
    "invariant_transition_matrix",
]
