"""Post Randomization Method — PRAM (Gouweleeuw et al., 1998).

PRAM masks a categorical attribute by sending each value through a Markov
transition matrix ``R``: a record with category ``i`` is published with
category ``j`` with probability ``R[i, j]``.  Two constructions are
provided:

* :class:`Pram` — the basic construction: every category keeps its value
  with probability ``1 - theta`` and otherwise moves to a different
  category drawn proportionally to the attribute's marginal frequencies
  (rare categories attract few transitions, mirroring common practice).
* :class:`InvariantPram` — the *invariant* refinement of the original
  paper: the transition matrix additionally satisfies ``p R = p`` for the
  marginal vector ``p``, so the expected published marginals equal the
  original ones.  The matrix is built with the standard two-stage
  construction ``R = Q diag(p)^{-1} Q^T diag(p)``-style symmetrization;
  we use the classical result that ``R_inv[i, j] = p[j] R[k->j]``-mixing
  via Bayes reversal of the basic matrix.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry


def basic_transition_matrix(frequencies: np.ndarray, theta: float) -> np.ndarray:
    """Basic PRAM matrix: stay with prob ``1-theta``, else move by frequency.

    ``frequencies`` is the attribute's category count vector; rows of the
    result sum to 1.
    """
    if not 0 < theta < 1:
        raise ProtectionError(f"PRAM needs 0 < theta < 1, got {theta}")
    counts = np.asarray(frequencies, dtype=np.float64)
    if counts.ndim != 1 or counts.size < 1:
        raise ProtectionError("frequencies must be a non-empty vector")
    k = counts.size
    if k == 1:
        return np.ones((1, 1))
    total = counts.sum()
    if total <= 0:
        probs = np.full(k, 1.0 / k)
    else:
        # Smooth zero-frequency categories so every transition is possible.
        probs = (counts + 1.0) / (total + k)
    matrix = np.empty((k, k), dtype=np.float64)
    for i in range(k):
        off = probs.copy()
        off[i] = 0.0
        off_total = off.sum()
        row = theta * off / off_total
        row[i] = 1.0 - theta
        matrix[i] = row
    return matrix


def invariant_transition_matrix(frequencies: np.ndarray, theta: float) -> np.ndarray:
    """Invariant PRAM matrix: satisfies ``p R = p`` for the marginal ``p``.

    Built with the classical two-stage construction: apply the basic
    matrix ``R0``, then its Bayes reversal ``R0*[j, i] = p_i R0[i, j] /
    (p R0)_j``; the product ``R = R0 R0*`` is a valid transition matrix
    with invariant distribution ``p``.
    """
    counts = np.asarray(frequencies, dtype=np.float64)
    k = counts.size
    if k == 1:
        return np.ones((1, 1))
    total = counts.sum()
    p = (counts + 1.0) / (total + k)
    r0 = basic_transition_matrix(counts, theta)
    published = p @ r0
    reversal = (p[:, None] * r0) / published[None, :]
    matrix = r0 @ reversal.T
    # Normalize away floating-point drift.
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


def apply_transition_matrix(values: np.ndarray, matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw a published code for every value through ``matrix`` rows."""
    arr = np.asarray(values, dtype=np.int64)
    k = matrix.shape[0]
    if matrix.shape != (k, k):
        raise ProtectionError(f"transition matrix must be square, got {matrix.shape}")
    if arr.size and (arr.min() < 0 or arr.max() >= k):
        raise ProtectionError("values outside transition matrix range")
    cdfs = np.cumsum(matrix, axis=1)
    cdfs[:, -1] = 1.0
    u = rng.uniform(size=arr.shape[0])
    return (cdfs[arr] < u[:, None]).sum(axis=1).clip(0, k - 1).astype(np.int64)


class Pram(ProtectionMethod):
    """Basic PRAM with overall change probability ``theta``."""

    method_name = "pram"

    def __init__(self, theta: float = 0.2) -> None:
        if not 0 < theta < 1:
            raise ProtectionError(f"PRAM needs 0 < theta < 1, got {theta}")
        self.theta = float(theta)

    def describe(self) -> str:
        return f"pram(theta={self.theta:g})"

    def _matrix(self, dataset: CategoricalDataset, column: int) -> np.ndarray:
        return basic_transition_matrix(dataset.value_counts(column), self.theta)

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        matrix = self._matrix(dataset, column)
        return apply_transition_matrix(dataset.column(column), matrix, rng)


class InvariantPram(Pram):
    """Invariant PRAM: expected published marginals equal the originals."""

    method_name = "invariant_pram"

    def describe(self) -> str:
        return f"ipram(theta={self.theta:g})"

    def _matrix(self, dataset: CategoricalDataset, column: int) -> np.ndarray:
        return invariant_transition_matrix(dataset.value_counts(column), self.theta)


registry.register(Pram)
registry.register(InvariantPram)
