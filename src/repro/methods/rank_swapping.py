"""Rank swapping (Moore, 1996) adapted to categorical attributes.

Rank swapping sorts the values of one attribute, then swaps each value
with another value whose *rank* lies within a window of ``p`` percent of
the number of records.  Because swapping only permutes existing values,
the attribute's marginal distribution is preserved exactly — the
signature property of the method, and the one our property-based tests
pin down.

For nominal attributes the rank order is category-code order with random
tie-breaking; for ordinal attributes it is value order (also with random
tie-breaking inside equal values), matching how categorical rank swapping
is applied in the SDC literature (paper references [14] and [17]).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry


class RankSwapping(ProtectionMethod):
    """Swap each value with a partner at most ``p``% of records away in rank.

    Parameters
    ----------
    p:
        Window half-width as a percentage of the record count
        (``0 < p <= 100``).  The paper's populations sweep ``p`` from 1
        to 11.
    """

    method_name = "rank_swapping"

    def __init__(self, p: float = 5.0) -> None:
        if not 0 < p <= 100:
            raise ProtectionError(f"rank swapping needs 0 < p <= 100, got {p}")
        self.p = float(p)

    def describe(self) -> str:
        return f"rankswap(p={self.p:g})"

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        values = dataset.column(column)
        n = values.shape[0]
        window = max(1, int(round(n * self.p / 100.0)))

        # Rank order with random tie-breaking so equal categories are not
        # always paired with themselves.
        tiebreak = rng.permutation(n)
        order = np.lexsort((tiebreak, values))

        swapped_sorted = values[order].copy()
        taken = np.zeros(n, dtype=bool)
        for i in range(n):
            if taken[i]:
                continue
            high = min(n - 1, i + window)
            candidates = [j for j in range(i + 1, high + 1) if not taken[j]]
            if not candidates:
                taken[i] = True
                continue
            j = candidates[int(rng.integers(len(candidates)))]
            swapped_sorted[i], swapped_sorted[j] = swapped_sorted[j], swapped_sorted[i]
            taken[i] = True
            taken[j] = True

        masked = np.empty(n, dtype=np.int64)
        masked[order] = swapped_sorted
        return masked


registry.register(RankSwapping)
