"""Composition of protection methods.

Agencies frequently chain methods (e.g. recode, then PRAM the result).
A :class:`ProtectionPipeline` applies its stages in order, feeding each
stage the previous stage's output; the result is itself a
:class:`~repro.methods.base.ProtectionMethod`, so pipelines can appear
anywhere a single method can — including the GA's initial populations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod
from repro.utils.rng import as_generator


class ProtectionPipeline(ProtectionMethod):
    """Apply several protection methods in sequence."""

    method_name = "pipeline"

    def __init__(self, stages: Sequence[ProtectionMethod]) -> None:
        if not stages:
            raise ProtectionError("a pipeline needs at least one stage")
        self.stages = tuple(stages)

    def describe(self) -> str:
        return " | ".join(stage.describe() for stage in self.stages)

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        # protect() below overrides the whole-file path; the column hook
        # exists to satisfy the interface for direct single-column use.
        current = dataset
        attr = dataset.schema.domain(column).name
        for stage in self.stages:
            current = stage.protect(current, [attr], seed=rng)
        return current.column(column).copy()

    def protect(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        seed: int | np.random.Generator | None = None,
        name: str | None = None,
    ) -> CategoricalDataset:
        rng = as_generator(seed)
        current = original
        for stage in self.stages:
            current = stage.protect(current, attributes, seed=rng)
        label = name if name is not None else f"{original.name}:{self.describe()}"
        return current.renamed(label)
