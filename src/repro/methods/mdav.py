"""MDAV microaggregation for categorical records.

:class:`~repro.methods.microaggregation.Microaggregation` partitions by
sorting — fast, but one-dimensional.  MDAV (Maximum Distance to Average
Vector) is the canonical multivariate microaggregation heuristic used by
sdcMicro and the SDC literature: repeatedly find the record farthest
from the current centroid, build a group of its ``k`` nearest
neighbours, do the same around the record farthest from *that* one, and
continue until fewer than ``2k`` records remain.

Adapted to categorical data:

* the record distance is the mean categorical distance over the
  protected attributes (0/1 nominal, normalized code difference
  ordinal — the same metric the linkage substrate uses);
* the "average vector" is the component-wise median/mode record;
* each group publishes its aggregate (median for ordinal, mode for
  nominal attributes), so every published tuple covers at least ``k``
  records across the protected attributes *jointly*.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.validation import require_attributes
from repro.exceptions import ProtectionError
from repro.methods.base import ProtectionMethod, registry
from repro.methods.microaggregation import _aggregate
from repro.utils.rng import as_generator


def _pairwise_distance_to(
    codes: np.ndarray, target: np.ndarray, sizes: np.ndarray, ordinal: np.ndarray
) -> np.ndarray:
    """Mean categorical distance of every row of ``codes`` to ``target``."""
    diffs = np.abs(codes - target[None, :]).astype(np.float64)
    nominal_distance = (diffs > 0).astype(np.float64)
    spans = np.maximum(sizes - 1, 1).astype(np.float64)
    ordinal_distance = diffs / spans[None, :]
    per_attribute = np.where(ordinal[None, :], ordinal_distance, nominal_distance)
    return per_attribute.mean(axis=1)


def _centroid(codes: np.ndarray, ordinal: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Component-wise aggregate record: median (ordinal) / mode (nominal)."""
    center = np.empty(codes.shape[1], dtype=np.int64)
    for column in range(codes.shape[1]):
        values = codes[:, column]
        if ordinal[column]:
            center[column] = int(np.median(values))
        else:
            center[column] = int(np.argmax(np.bincount(values, minlength=sizes[column])))
    return center


class MdavMicroaggregation(ProtectionMethod):
    """Multivariate MDAV microaggregation over the protected attributes.

    Unlike the base class's column-at-a-time contract, MDAV groups
    *records* using all protected attributes jointly, so
    :meth:`protect` is overridden wholesale; :meth:`protect_column`
    delegates to a single-attribute grouping for interface completeness.
    """

    method_name = "mdav"

    def __init__(self, k: int = 3) -> None:
        if k < 2:
            raise ProtectionError(f"MDAV needs k >= 2, got {k}")
        self.k = k

    def describe(self) -> str:
        return f"mdav(k={self.k})"

    def _partition(
        self, codes: np.ndarray, sizes: np.ndarray, ordinal: np.ndarray
    ) -> list[np.ndarray]:
        """MDAV grouping; returns index arrays, each of size >= k."""
        n = codes.shape[0]
        remaining = np.arange(n)
        groups: list[np.ndarray] = []
        while remaining.size >= 3 * self.k:
            sub = codes[remaining]
            center = _centroid(sub, ordinal, sizes)
            to_center = _pairwise_distance_to(sub, center, sizes, ordinal)
            farthest = int(np.argmax(to_center))
            # Group 1: k nearest to the farthest record r.
            to_r = _pairwise_distance_to(sub, sub[farthest], sizes, ordinal)
            group1_local = np.argsort(to_r, kind="stable")[: self.k]
            # Record s: farthest from r among the rest.
            opposite = int(np.argmax(to_r))
            to_s = _pairwise_distance_to(sub, sub[opposite], sizes, ordinal)
            mask = np.ones(remaining.size, dtype=bool)
            mask[group1_local] = False
            candidates = np.where(mask)[0]
            order = candidates[np.argsort(to_s[candidates], kind="stable")]
            group2_local = order[: self.k]
            groups.append(remaining[group1_local])
            groups.append(remaining[group2_local])
            keep = np.ones(remaining.size, dtype=bool)
            keep[group1_local] = False
            keep[group2_local] = False
            remaining = remaining[keep]
        if remaining.size >= 2 * self.k:
            sub = codes[remaining]
            center = _centroid(sub, ordinal, sizes)
            to_center = _pairwise_distance_to(sub, center, sizes, ordinal)
            farthest = int(np.argmax(to_center))
            to_r = _pairwise_distance_to(sub, sub[farthest], sizes, ordinal)
            group_local = np.argsort(to_r, kind="stable")[: self.k]
            groups.append(remaining[group_local])
            keep = np.ones(remaining.size, dtype=bool)
            keep[group_local] = False
            remaining = remaining[keep]
        if remaining.size:
            groups.append(remaining)
        return groups

    def protect(
        self,
        original: CategoricalDataset,
        attributes: Sequence[str],
        seed: int | np.random.Generator | None = None,
        name: str | None = None,
    ) -> CategoricalDataset:
        if not attributes:
            raise ProtectionError("protect() needs at least one attribute")
        columns = require_attributes(original, attributes)
        as_generator(seed)  # accepted for interface symmetry; MDAV is deterministic
        sizes = np.array([original.schema.domain(c).size for c in columns])
        ordinal = np.array([original.schema.domain(c).ordinal for c in columns])
        sub_codes = original.codes[:, columns]

        masked = original.codes_copy()
        for group in self._partition(sub_codes, sizes, ordinal):
            for slot, column in enumerate(columns):
                masked[group, column] = _aggregate(sub_codes[group, slot], bool(ordinal[slot]))
        label = name if name is not None else f"{original.name}:{self.describe()}"
        return original.with_codes(masked, name=label)

    def protect_column(self, dataset: CategoricalDataset, column: int, rng: np.random.Generator) -> np.ndarray:
        attr = dataset.schema.domain(column).name
        return self.protect(dataset, [attr], seed=rng).column(column).copy()


registry.register(MdavMicroaggregation)
