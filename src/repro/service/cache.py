"""Persistent evaluation cache — scores that survive the process.

The paper notes (and the engine's timing records confirm) that fitness
evaluation dominates GA wall-clock time.  The in-process memo cache of
:class:`~repro.metrics.evaluation.ProtectionEvaluator` already collapses
re-scoring *within* a run; :class:`EvaluationCache` extends that across
runs, restarts and worker processes with a disk-backed sqlite store.

Keys are the evaluator's :meth:`~repro.metrics.evaluation
.ProtectionEvaluator.cache_key` — a hash covering the original file, the
masked candidate and the full measure configuration — so a hit is exactly
as trustworthy as recomputing.  sqlite (WAL mode) gives safe concurrent
access from the thread and process execution backends; every worker
simply opens its own handle on the same file.

Long-lived deployments bound the file with ``max_entries``: every row
carries an ``accessed_at`` timestamp (refreshed on each hit), and when
the store exceeds its bound the least-recently-used rows are evicted.
Eviction only ever discards *cached* work — an evicted key is simply
recomputed on next use, so scores are unchanged and only the
``fresh_evaluations`` accounting of later runs goes up.  Caches created
before the ``accessed_at`` column existed are migrated in place on open.

Two hot-path costs are kept off the disk: the entry count each bounded
``put`` needs is maintained in memory (seeded with one ``COUNT`` on
open, corrected from actual delete counts, re-synced whenever
``len``/``stats`` run a real count), and ``accessed_at`` refreshes are
batched — hits record a pending touch that is flushed every
``_TOUCH_FLUSH_EVERY`` hits and always before an eviction decision, so
LRU ordering still sees every hit.  Both are per-handle bookkeeping;
because several worker processes may write one file, each handle also
re-runs the real ``COUNT`` every ``_COUNT_SYNC_EVERY`` of its own puts
(and on ``len``/``stats``/``close``), so a bounded store shared by N
handles can only overshoot its bound by the inserts other handles land
inside one sync window — transiently, and never changing a score.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.exceptions import ServiceError
from repro.metrics.evaluation import ProtectionScore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS evaluations (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    accessed_at REAL NOT NULL DEFAULT 0
)
"""


def score_to_dict(score: ProtectionScore) -> dict:
    """JSON-ready representation of a :class:`ProtectionScore`."""
    return {
        "information_loss": score.information_loss,
        "disclosure_risk": score.disclosure_risk,
        "score": score.score,
        "il_components": dict(score.il_components),
        "dr_components": dict(score.dr_components),
    }


def score_from_dict(payload: dict) -> ProtectionScore:
    """Rebuild a :class:`ProtectionScore` from :func:`score_to_dict` output."""
    try:
        return ProtectionScore(
            information_loss=payload["information_loss"],
            disclosure_risk=payload["disclosure_risk"],
            score=payload["score"],
            il_components=dict(payload.get("il_components", {})),
            dr_components=dict(payload.get("dr_components", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed cached score payload: {exc}") from exc


class EvaluationCache:
    """Disk-backed score store implementing the evaluator's cache protocol.

    Parameters
    ----------
    path:
        sqlite file location; parent directories are created on demand.
    readonly:
        When true, :meth:`put` becomes a no-op — useful for serving
        traffic from a pre-warmed cache without write contention.
    max_entries:
        When set, the store never holds more than this many rows: every
        :meth:`put` that would exceed the bound evicts the
        least-recently-used entries first.  ``None`` (the default) keeps
        the store unbounded.
    """

    def __init__(
        self,
        path: str | Path,
        readonly: bool = False,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ServiceError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path)
        self.readonly = readonly
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self._entries_at_close = 0
        self._pending_touches: dict[str, float] = {}
        self._puts_since_count = 0
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._migrate_locked()
            self._conn.commit()
            self._entries = self._count_locked()

    #: Hits between ``accessed_at`` flushes; also flushed by eviction,
    #: ``len``/``stats`` and ``close``, so LRU order never misses a hit.
    _TOUCH_FLUSH_EVERY = 64

    #: Bounded puts between real ``COUNT`` re-syncs of the in-memory
    #: entry count — the cap on how long another process's inserts can
    #: go unseen by this handle's eviction decisions.
    _COUNT_SYNC_EVERY = 256

    def _count_locked(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM evaluations").fetchone()
        return int(count)

    def _flush_touches_locked(self) -> None:
        if not self._pending_touches:
            return
        self._conn.executemany(
            "UPDATE evaluations SET accessed_at = ? WHERE key = ?",
            [(stamp, key) for key, stamp in self._pending_touches.items()],
        )
        self._conn.commit()
        self._pending_touches.clear()

    def _migrate_locked(self) -> None:
        """Add ``accessed_at`` to stores created before it existed."""
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(evaluations)")
        }
        if "accessed_at" not in columns:
            self._conn.execute(
                "ALTER TABLE evaluations ADD COLUMN accessed_at REAL NOT NULL DEFAULT 0"
            )

    # -- ScoreCache protocol ------------------------------------------------

    def get(self, key: str) -> ProtectionScore | None:
        """Stored score for ``key``, or ``None`` on a miss.

        On a bounded handle a hit refreshes the row's ``accessed_at`` so
        recently-used entries survive LRU eviction — recorded as a
        pending touch and flushed in batches (and always before an
        eviction orders by ``accessed_at``), so the hit path pays a
        disk write once per :data:`_TOUCH_FLUSH_EVERY` hits, not per
        hit.  Unbounded handles keep the read path free of disk writes
        entirely — their rows carry the ``accessed_at`` of the last
        write, so an ``evict()`` run against a store only ever touched
        unbounded is least-recently-*written* eviction, which is still
        oldest-work-first.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM evaluations WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            if not self.readonly and self.max_entries is not None:
                self._pending_touches[key] = time.time()
                if len(self._pending_touches) >= self._TOUCH_FLUSH_EVERY:
                    self._flush_touches_locked()
        return score_from_dict(json.loads(row[0]))

    #: SQLite's default host-parameter limit is 999; chunk IN-lists under it.
    _SELECT_CHUNK = 500

    def get_many(self, keys: "list[str] | tuple[str, ...]") -> dict[str, ProtectionScore]:
        """Stored scores for ``keys`` in one SELECT round (missing keys absent).

        The bulk face of :meth:`get`, used by the batch evaluator: one
        indexed ``IN`` query per ~500 keys instead of a query per key.
        Counters and LRU touches behave exactly as if :meth:`get` had
        been called once per key.
        """
        wanted = list(keys)
        rows: dict[str, str] = {}
        with self._lock:
            for start in range(0, len(wanted), self._SELECT_CHUNK):
                chunk = wanted[start : start + self._SELECT_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                for key, payload in self._conn.execute(
                    f"SELECT key, payload FROM evaluations WHERE key IN ({placeholders})",
                    chunk,
                ):
                    rows[key] = payload
            hits = sum(1 for key in wanted if key in rows)
            self.hits += hits
            self.misses += len(wanted) - hits
            if rows and not self.readonly and self.max_entries is not None:
                now = time.time()
                for key in rows:
                    self._pending_touches[key] = now
                if len(self._pending_touches) >= self._TOUCH_FLUSH_EVERY:
                    self._flush_touches_locked()
        return {key: score_from_dict(json.loads(payload))
                for key, payload in rows.items()}

    def put_many(self, items: "list[tuple[str, ProtectionScore]]") -> None:
        """Store many scores in one transaction (last writer wins per key).

        The bulk face of :meth:`put`: one ``executemany`` + one commit
        for the whole batch, with the same in-memory entry accounting
        and at most one LRU eviction pass at the end.
        """
        if self.readonly or not items:
            return
        now = time.time()
        payloads = [(key, json.dumps(score_to_dict(score)), now)
                    for key, score in items]
        with self._lock:
            new_keys = {key for key, _, _ in payloads}
            for start in range(0, len(payloads), self._SELECT_CHUNK):
                chunk = [key for key, _, _ in payloads[start : start + self._SELECT_CHUNK]]
                placeholders = ",".join("?" * len(chunk))
                for (key,) in self._conn.execute(
                    f"SELECT key FROM evaluations WHERE key IN ({placeholders})", chunk
                ):
                    new_keys.discard(key)
            self._conn.executemany(
                "INSERT OR REPLACE INTO evaluations (key, payload, accessed_at) "
                "VALUES (?, ?, ?)",
                payloads,
            )
            self._entries += len(new_keys)
            for key, _, _ in payloads:
                self._pending_touches.pop(key, None)
            if self.max_entries is not None:
                self._puts_since_count += len(payloads)
                if self._puts_since_count >= self._COUNT_SYNC_EVERY:
                    self._entries = self._count_locked()
                    self._puts_since_count = 0
                self.evictions += self._evict_locked(self.max_entries)
            self._conn.commit()
            self.writes += len(payloads)

    def put(self, key: str, score: ProtectionScore) -> None:
        """Store ``score`` under ``key`` (last writer wins).

        With ``max_entries`` set, evicts least-recently-used rows so the
        store never exceeds its bound after this call returns.
        """
        if self.readonly:
            return
        payload = json.dumps(score_to_dict(score))
        with self._lock:
            # Maintain the in-memory count with an indexed existence
            # probe instead of the old COUNT(*)-per-put table scan.
            exists = self._conn.execute(
                "SELECT 1 FROM evaluations WHERE key = ?", (key,)
            ).fetchone() is not None
            self._conn.execute(
                "INSERT OR REPLACE INTO evaluations (key, payload, accessed_at) "
                "VALUES (?, ?, ?)",
                (key, payload, time.time()),
            )
            if not exists:
                self._entries += 1
            # The write stamps accessed_at itself; a pending hit touch
            # for the same key is superseded.
            self._pending_touches.pop(key, None)
            if self.max_entries is not None:
                self._puts_since_count += 1
                if self._puts_since_count >= self._COUNT_SYNC_EVERY:
                    # See the inserts other handles on this file made
                    # since the last sync, or a shared bound would only
                    # ever be enforced against our own writes.
                    self._entries = self._count_locked()
                    self._puts_since_count = 0
                self.evictions += self._evict_locked(self.max_entries)
            self._conn.commit()
            self.writes += 1

    # -- maintenance --------------------------------------------------------

    def _evict_locked(self, bound: int) -> int:
        """Delete least-recently-used rows down to ``bound``; count removed."""
        excess = self._entries - bound
        if excess <= 0:
            return 0
        # LRU order must see every hit: flush batched touches first.
        self._flush_touches_locked()
        # Ties on accessed_at (e.g. never-touched migrated rows at 0)
        # break by rowid, i.e. insertion order — still oldest-first.
        cursor = self._conn.execute(
            "DELETE FROM evaluations WHERE key IN ("
            "SELECT key FROM evaluations ORDER BY accessed_at ASC, rowid ASC LIMIT ?)",
            (excess,),
        )
        # The actual delete count corrects any drift another process's
        # handle introduced into our in-memory count.
        removed = cursor.rowcount if cursor.rowcount >= 0 else excess
        self._entries -= removed
        return removed

    def evict(self, max_entries: int | None = None) -> int:
        """Evict least-recently-used entries down to a bound, now.

        Uses ``max_entries`` when given, else the instance bound; with
        neither this call cannot know a target and raises
        :class:`ServiceError`.  Returns how many entries were removed.
        """
        bound = max_entries if max_entries is not None else self.max_entries
        if bound is None:
            raise ServiceError("evict() needs a max_entries bound")
        if bound < 0:
            raise ServiceError(f"max_entries must be >= 0, got {bound}")
        with self._lock:
            removed = self._evict_locked(bound)
            self._conn.commit()
            self.evictions += removed
        return removed

    def __len__(self) -> int:
        with self._lock:
            if self._closed:
                return self._entries_at_close
            self._flush_touches_locked()
            # A real count, which also re-syncs the in-memory counter
            # with whatever other handles on this file have done.
            self._entries = self._count_locked()
            self._puts_since_count = 0
            return self._entries

    def clear(self) -> int:
        """Drop every stored evaluation; returns how many were removed."""
        with self._lock:
            removed = self._conn.execute("DELETE FROM evaluations").rowcount
            self._conn.commit()
            self._pending_touches.clear()
            self._entries = 0
        return int(removed)

    def stats(self) -> dict[str, int]:
        """Session counters plus the current on-disk entry count.

        Safe to call after :meth:`close`: the entry count is then the
        last value observed at close time.
        """
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    def close(self) -> None:
        """Flush pending touches and close the sqlite handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._flush_touches_locked()
            self._entries_at_close = self._count_locked()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EvaluationCache({str(self.path)!r}, hits={self.hits}, misses={self.misses})"
