"""Persistent evaluation cache — scores that survive the process.

The paper notes (and the engine's timing records confirm) that fitness
evaluation dominates GA wall-clock time.  The in-process memo cache of
:class:`~repro.metrics.evaluation.ProtectionEvaluator` already collapses
re-scoring *within* a run; :class:`EvaluationCache` extends that across
runs, restarts and worker processes with a disk-backed sqlite store.

Keys are the evaluator's :meth:`~repro.metrics.evaluation
.ProtectionEvaluator.cache_key` — a hash covering the original file, the
masked candidate and the full measure configuration — so a hit is exactly
as trustworthy as recomputing.  sqlite (WAL mode) gives safe concurrent
access from the thread and process execution backends; every worker
simply opens its own handle on the same file.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path

from repro.exceptions import ServiceError
from repro.metrics.evaluation import ProtectionScore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS evaluations (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
)
"""


def score_to_dict(score: ProtectionScore) -> dict:
    """JSON-ready representation of a :class:`ProtectionScore`."""
    return {
        "information_loss": score.information_loss,
        "disclosure_risk": score.disclosure_risk,
        "score": score.score,
        "il_components": dict(score.il_components),
        "dr_components": dict(score.dr_components),
    }


def score_from_dict(payload: dict) -> ProtectionScore:
    """Rebuild a :class:`ProtectionScore` from :func:`score_to_dict` output."""
    try:
        return ProtectionScore(
            information_loss=payload["information_loss"],
            disclosure_risk=payload["disclosure_risk"],
            score=payload["score"],
            il_components=dict(payload.get("il_components", {})),
            dr_components=dict(payload.get("dr_components", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed cached score payload: {exc}") from exc


class EvaluationCache:
    """Disk-backed score store implementing the evaluator's cache protocol.

    Parameters
    ----------
    path:
        sqlite file location; parent directories are created on demand.
    readonly:
        When true, :meth:`put` becomes a no-op — useful for serving
        traffic from a pre-warmed cache without write contention.
    """

    def __init__(self, path: str | Path, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._conn.commit()

    # -- ScoreCache protocol ------------------------------------------------

    def get(self, key: str) -> ProtectionScore | None:
        """Stored score for ``key``, or ``None`` on a miss."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM evaluations WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return score_from_dict(json.loads(row[0]))

    def put(self, key: str, score: ProtectionScore) -> None:
        """Store ``score`` under ``key`` (last writer wins)."""
        if self.readonly:
            return
        payload = json.dumps(score_to_dict(score))
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO evaluations (key, payload) VALUES (?, ?)",
                (key, payload),
            )
            self._conn.commit()
        self.writes += 1

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM evaluations").fetchone()
        return int(count)

    def clear(self) -> int:
        """Drop every stored evaluation; returns how many were removed."""
        with self._lock:
            removed = self._conn.execute("DELETE FROM evaluations").rowcount
            self._conn.commit()
        return int(removed)

    def stats(self) -> dict[str, int]:
        """Session counters plus the current on-disk entry count."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def close(self) -> None:
        """Close the underlying sqlite handle."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EvaluationCache({str(self.path)!r}, hits={self.hits}, misses={self.misses})"
