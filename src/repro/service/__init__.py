"""Job-orchestration service: queueing, parallel execution, caching, resume.

The service layer turns the library's single-run building blocks into an
operable system: :class:`ProtectionJob` is the durable unit of work,
:class:`JobRunner` fans jobs out over serial / thread / process
backends, :class:`EvaluationCache` persists fitness evaluations across
runs and processes (optionally LRU-bounded via ``max_entries``),
:class:`CheckpointManager` makes long GA runs interrupt-safe,
:class:`JobStore` keeps job lifecycle state on disk for the ``repro
submit`` / ``status`` / ``resume`` CLI, and :class:`Worker` claims
queued jobs for detached execution (``repro submit --detach`` +
``repro worker``) — safe with any number of workers per state
directory.  :class:`JobStoreServer` serves a store over HTTP (``repro
serve``) and :class:`RemoteJobStore` is the client with the identical
:data:`STORE_PROTOCOL` surface (``--store-url``), extending the same
claim/heartbeat contract across machines.  :class:`SqliteJobStore`
keeps the whole store in one transactional SQLite database for heavy
fleets; :class:`ShardedJobStore` composes N child stores behind the
same contract (rendezvous placement + fleet work-stealing);
:func:`store_from_spec` opens any backend from its spec string
(``file:DIR`` / ``sqlite:PATH`` / ``http://...`` / ``shard:...``) and
:func:`migrate_store` moves state between them.
:func:`plan_island_jobs` splits one seeded search into an island-model
group — member jobs exchanging elite migrants through the store on a
fixed cadence plus a merge job consolidating the Pareto front
(``repro submit --islands P``) — that any fleet of the above drives
deterministically.
"""

from repro.service.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)
from repro.service.cache import EvaluationCache, score_from_dict, score_to_dict
from repro.service.checkpoint import (
    CheckpointManager,
    checkpoint_from_dict,
    checkpoint_to_dict,
)
from repro.service.islands import (
    MIGRANTS_BLOB_SUFFIX,
    TOPOLOGIES,
    IslandParked,
    drive_group,
    front_dominates_or_matches,
    island_group_id,
    island_topology,
    member_job_ids,
    migrants_blob_id,
    plan_island_jobs,
)
from repro.service.job import JobResult, ProtectionJob
from repro.service.netstore import PROTOCOL_VERSION, JobStoreServer, RemoteJobStore
from repro.service.runner import JobOutcome, JobRunner
from repro.service.shardstore import ShardedJobStore, parse_shard_spec
from repro.service.sqlstore import SqliteJobStore
from repro.service.store import (
    STORE_PROTOCOL,
    JobRecord,
    JobStore,
    default_state_dir,
    migrate_store,
    store_from_spec,
)
from repro.service.worker import ClaimHeartbeat, Worker

__all__ = [
    "ProtectionJob",
    "JobResult",
    "JobRunner",
    "JobOutcome",
    "EvaluationCache",
    "score_to_dict",
    "score_from_dict",
    "CheckpointManager",
    "checkpoint_to_dict",
    "checkpoint_from_dict",
    "JobStore",
    "JobRecord",
    "SqliteJobStore",
    "ShardedJobStore",
    "parse_shard_spec",
    "JobStoreServer",
    "RemoteJobStore",
    "store_from_spec",
    "migrate_store",
    "PROTOCOL_VERSION",
    "STORE_PROTOCOL",
    "Worker",
    "ClaimHeartbeat",
    "IslandParked",
    "MIGRANTS_BLOB_SUFFIX",
    "TOPOLOGIES",
    "plan_island_jobs",
    "island_topology",
    "island_group_id",
    "member_job_ids",
    "migrants_blob_id",
    "drive_group",
    "front_dominates_or_matches",
    "default_state_dir",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "create_backend",
]
