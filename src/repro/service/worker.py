"""Queue worker: claims queued jobs from a shared store and executes them.

This is the execution half of the detached submission flow.  ``repro
submit --detach`` only *writes* ``queued`` records; a :class:`Worker`
(the ``repro worker`` command — any number of them, on a shared state
directory or against a :class:`~repro.service.netstore.RemoteJobStore`
over HTTP) later claims each record via the store's atomic claim
protocol, runs it through the existing
:class:`~repro.service.runner.JobRunner`, and marks it ``completed`` or
``failed``.  Because a claim either exists or does not — there is no
in-between state the store can expose — two workers draining one queue
never execute the same job, which is the invariant cross-machine
distribution builds on.

The claim protocol, spelled out:

1. list queued records, oldest first;
2. for each, try ``store.claim(job_id)`` — losing the race simply means
   another worker owns that job, move on — until up to ``capacity``
   claims are won;
3. after winning, *re-read the record*: a job that finished between the
   listing and the claim is skipped, not re-run;
4. heartbeat every claim from a background thread while the jobs run,
   so the store knows this worker is still alive however long they take;
5. run, mark, and release the claims in a ``finally`` block.

A worker that dies between claiming and releasing leaves a claim whose
heartbeats have stopped;
:meth:`~repro.service.store.JobStore.recover_stale_claims` (run at every
worker start and poll) requeues such jobs once the claim's ``last_seen``
outlives ``stale_after`` seconds.  An *actively heartbeating* claim is
never recovered, no matter how long its job runs.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid

from repro.exceptions import WorkerError
from repro.obs import emit_event, get_registry, trace
from repro.service.backends import create_backend
from repro.service.checkpoint import FORMAT_VERSION
from repro.service.runner import JobOutcome, JobRunner
from repro.service.store import QUEUED, JobRecord, JobStore


def unique_owner(prefix: str = "") -> str:
    """A claim-owner identity that is unique per caller, not just per host.

    ``claim()`` treats a same-owner re-claim as "you already own it", so
    owner identities must never collide: host-pid alone is shared by two
    workers in one process and can be recycled onto a crashed worker's
    pid.  The random suffix rules both out.
    """
    label = f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    return f"{prefix}-{label}" if prefix else label


class ClaimHeartbeat:
    """Background thread keeping a set of claims alive while jobs run.

    Beats once immediately on :meth:`start` (so even a job faster than
    the interval records liveness) and then every ``interval`` seconds
    until :meth:`stop`.  A beat that fails — store briefly unreachable,
    claim recovered from under us — never kills the thread: liveness is
    advisory, and the run loop's owner-checked marks and releases are
    what protect correctness.  But a *silent* dying heartbeat would only
    surface once its claims went stale, so every failed beat is routed
    through the event log (``heartbeat_error``) and counted in
    ``repro_heartbeat_total{result="error"}``.
    """

    def __init__(self, store: JobStore, job_ids: list[str], owner: str,
                 interval: float) -> None:
        self.store = store
        self.job_ids = list(job_ids)
        self.owner = owner
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="claim-heartbeat", daemon=True
        )

    def _run(self) -> None:
        registry = get_registry()
        while True:
            for job_id in self.job_ids:
                try:
                    alive = self.store.heartbeat(job_id, self.owner)
                except Exception as error:  # noqa: BLE001 - any dead beat < dead thread
                    # A missed beat just lets last_seen age one tick —
                    # but it must be *visible* before the claim goes stale.
                    registry.inc("repro_heartbeat_total", result="error")
                    emit_event("heartbeat_error", job_id=job_id,
                               owner=self.owner, error=repr(error))
                else:
                    registry.inc("repro_heartbeat_total",
                                 result="ok" if alive else "lost")
                    if not alive:
                        emit_event("heartbeat_lost", job_id=job_id,
                                   owner=self.owner)
            if self._stop.wait(self.interval):
                return

    def start(self) -> "ClaimHeartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def claim_queued(
    store: JobStore,
    candidates: list[JobRecord],
    owner: str,
    limit: int = 0,
    on_skipped=None,
) -> list[JobRecord]:
    """Win claims over still-queued ``candidates`` for ``owner``.

    The one implementation of the claim-validate step every executor
    shares (workers, inline ``repro submit``/``resume``): try to claim
    each record (losing just means someone else owns it), then *re-read*
    inside the claim — a record that stopped being queued in the
    meantime is released again, not run.  Stops after ``limit`` wins
    when positive.  On any error, every claim already held is released
    (best-effort) before the error propagates, so a transient store
    failure cannot strand claimed-but-unrun jobs until stale recovery.

    ``on_skipped(record, reason)`` is called for records passed over,
    with reason ``"claimed"`` (someone else holds it) or ``"not-queued"``
    (it left the queue before our claim landed).
    """
    registry = get_registry()
    mine: list[JobRecord] = []
    held: list[str] = []
    try:
        for record in candidates:
            if limit and len(mine) >= limit:
                break
            if not store.claim(record.job_id, owner=owner):
                registry.inc("repro_worker_claims_total", result="lost")
                if on_skipped is not None:
                    on_skipped(record, "claimed")
                continue
            held.append(record.job_id)
            current = store.get(record.job_id, missing_ok=True)
            if current is None or current.status != QUEUED:
                store.release(record.job_id, owner=owner)
                held.pop()
                if on_skipped is not None:
                    on_skipped(record, "not-queued")
                continue
            mine.append(current)
            registry.inc("repro_worker_claims_total", result="won")
    except BaseException:
        release_quietly(store, held, owner)
        raise
    return mine


def release_quietly(store: JobStore, job_ids: list[str], owner: str) -> None:
    """Release each claim, best-effort.

    Cleanup paths must release *every* claim they can: one failed
    release (store briefly unreachable) aborting the rest would leak
    sibling claims and crash callers whose jobs all succeeded.  A claim
    that could not be released ages out via stale recovery.
    """
    for job_id in job_ids:
        try:
            store.release(job_id, owner=owner)
        except Exception as error:  # noqa: BLE001 - stale recovery is the backstop
            # The leak is survivable but must not be silent: the claim
            # now only clears via stale recovery, which an operator
            # should see coming.
            emit_event("release_error", job_id=job_id, owner=owner,
                       error=repr(error))


class Worker:
    """Claims and executes queued jobs from a job store.

    Parameters
    ----------
    store:
        Any :data:`~repro.service.store.STORE_PROTOCOL` implementation —
        a shared-directory :class:`~repro.service.store.JobStore` or a
        :class:`~repro.service.netstore.RemoteJobStore`; multiple
        workers may point at one.
    backend / max_workers:
        Execution backend for the runner each claimed batch goes
        through.  With the default (``serial``) parallelism comes from
        running more workers; with ``capacity`` above 1, pick ``thread``
        or ``process`` so a batch actually runs concurrently.
    use_cache:
        Thread the store's persistent evaluation cache through each job
        (worker-local when the store is remote).
    cache_max_entries:
        LRU bound for worker-opened cache handles (``None`` = unbounded).
    worker_id:
        Identity recorded in claim files; defaults to
        :func:`unique_owner` (host-pid plus a random suffix, so two
        workers never share one identity).  If you set it yourself,
        keep it unique per live worker — claims are idempotent per
        owner.
    stale_after:
        Claims whose last heartbeat is older than this many seconds are
        treated as abandoned and their jobs requeued (must be positive).
        Heartbeats decouple this from job length: a long job stays safe
        as long as its worker keeps beating.
    capacity:
        How many jobs this worker claims per batch (its share of the
        queue); each batch is executed on the configured backend.
    heartbeat_every:
        Seconds between claim heartbeats; defaults to ``stale_after / 4``
        so a single missed beat never looks like a death.
    eval_workers / eval_backend:
        Default in-run parallel fitness evaluation for jobs that did
        not pin their own ``eval_workers`` (pure throughput — results
        are bit-identical whatever the worker count).
    """

    def __init__(
        self,
        store: JobStore,
        backend: str = "serial",
        max_workers: int | None = None,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
        worker_id: str = "",
        stale_after: float = 3600.0,
        capacity: int = 1,
        heartbeat_every: float | None = None,
        eval_workers: int = 0,
        eval_backend: str = "thread",
    ) -> None:
        if stale_after <= 0:
            raise WorkerError(f"stale_after must be positive, got {stale_after}")
        if capacity < 1:
            raise WorkerError(f"capacity must be >= 1, got {capacity}")
        if heartbeat_every is not None and heartbeat_every <= 0:
            raise WorkerError(
                f"heartbeat_every must be positive, got {heartbeat_every}"
            )
        # Fail fast on bad runner configuration: discovering it only
        # after claiming and marking a job running would strand records.
        create_backend(backend, max_workers)
        if eval_workers < 0:
            raise WorkerError(f"eval_workers must be >= 0, got {eval_workers}")
        if eval_backend not in ("thread", "process"):
            raise WorkerError(
                f"eval_backend must be 'thread' or 'process', got {eval_backend!r}"
            )
        if cache_max_entries is not None and cache_max_entries < 1:
            raise WorkerError(
                f"cache_max_entries must be >= 1, got {cache_max_entries}"
            )
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.cache_max_entries = cache_max_entries
        self.worker_id = worker_id or unique_owner()
        self.stale_after = float(stale_after)
        self.capacity = int(capacity)
        self.eval_workers = int(eval_workers)
        self.eval_backend = eval_backend
        self.heartbeat_every = (
            float(heartbeat_every) if heartbeat_every is not None
            else self.stale_after / 4.0
        )
        self._last_telemetry_push = 0.0
        # (start, duration) of the most recent claim round; feeds the
        # ``repro.claim`` span of every record won in that round.
        self._last_claim = (0.0, 0.0)
        if self.heartbeat_every >= self.stale_after:
            # Beating slower than the staleness bound means this
            # worker's live jobs look abandoned and get double-executed.
            raise WorkerError(
                f"heartbeat_every ({self.heartbeat_every}) must be smaller "
                f"than stale_after ({self.stale_after})"
            )

    def _runner_for(self, record: JobRecord) -> JobRunner:
        """A runner honouring the record's submit-time checkpoint cadence."""
        return JobRunner(
            backend=self.backend,
            max_workers=self.max_workers,
            cache_path=str(self.store.cache_path) if self.use_cache else None,
            cache_max_entries=self.cache_max_entries,
            checkpoint_dir=str(self.store.checkpoints_dir),
            checkpoint_every=int(record.extras.get("checkpoint_every", 0)),
            eval_workers=self.eval_workers,
            eval_backend=self.eval_backend,
            # Island-group jobs exchange migrants and durable segment
            # checkpoints through this worker's store.
            store=self.store,
        )

    def _resumable(self, record: JobRecord) -> bool:
        """A valid checkpoint for exactly this job exists on disk."""
        path = self.store.checkpoints_dir / f"{record.job_id}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return False
        return (
            payload.get("version") == FORMAT_VERSION
            and payload.get("fingerprint") == record.job.fingerprint()
        )

    def _claim_batch(
        self, limit: int, candidates: list[JobRecord] | None = None
    ) -> list[JobRecord]:
        """Win up to ``limit`` claims over still-queued records.

        Without explicit candidates the store's own ``claim_batch``
        does the whole queue-walk-and-claim — one transaction on a
        database store, one round trip on a remote one.  A sharded
        store exposes ``steal_batch`` and gets it instead: drain this
        worker's home shard first (its own rendezvous placement, so a
        balanced fleet self-partitions with no contention), then steal
        from the most-backlogged healthy shard.  With candidates (the
        single-record :meth:`process` path) the claim loop runs here
        over exactly those records.
        """
        claim_started = time.time()
        if candidates is None:
            steal = getattr(self.store, "steal_batch", None)
            if callable(steal):
                batch = steal(owner=self.worker_id, limit=limit)
            else:
                batch = self.store.claim_batch(owner=self.worker_id, limit=limit)
            if batch:
                # claim_batch reports only wins; losses stay inside the
                # store transaction (claim_queued counts both sides).
                get_registry().inc("repro_worker_claims_total",
                                   len(batch), result="won")
        else:
            batch = claim_queued(self.store, candidates, self.worker_id,
                                 limit=limit)
        self._last_claim = (claim_started, max(0.0, time.time() - claim_started))
        return batch

    def _run_claimed(self, records: list[JobRecord]) -> list[JobOutcome]:
        """Execute records this worker owns; marks, heartbeats, releases.

        Records are grouped by checkpoint cadence and resumability so
        each group shares one runner call over the configured backend;
        a job left behind by an interrupted worker continues from its
        (fingerprint-validated) checkpoint instead of restarting.  All
        claims beat from one background thread for the whole batch and
        are released in the ``finally``, whatever happens mid-run.
        """
        beat = ClaimHeartbeat(
            self.store, [r.job_id for r in records], self.worker_id,
            self.heartbeat_every,
        ).start()
        outcomes: dict[str, JobOutcome] = {}
        try:
            groups: dict[tuple[int, bool], list[JobRecord]] = {}
            for record in records:
                key = (int(record.extras.get("checkpoint_every", 0)),
                       self._resumable(record))
                groups.setdefault(key, []).append(record)
            for (_, resume), group in groups.items():
                # Build the runner before mark_running: a construction
                # error must leave these records queued, not stranded.
                runner = self._runner_for(group[0])
                for record in group:
                    self.store.mark_running(record)
                settled = runner.run_settled(
                    [record.job for record in group],
                    resume=resume,
                    traces=[
                        trace.trace_context_from_extras(record.extras)
                        for record in group
                    ],
                )
                registry = get_registry()
                for record, outcome in zip(group, settled):
                    if outcome.ok:
                        self.store.mark_completed(record, outcome.result)
                        registry.inc("repro_worker_jobs_total",
                                     outcome="completed")
                        emit_event("job_completed", job_id=record.job_id,
                                   worker=self.worker_id,
                                   wall_seconds=round(
                                       outcome.result.wall_seconds, 3))
                    elif outcome.parked is not None:
                        # An island job yielded at an exchange boundary:
                        # its state is durably checkpointed — requeue it
                        # (behind the queue) rather than mark it failed.
                        from repro.service.islands import park_record

                        park_record(self.store, record, outcome.parked)
                        registry.inc("repro_worker_jobs_total",
                                     outcome="parked")
                        emit_event("job_parked", job_id=record.job_id,
                                   worker=self.worker_id,
                                   round=outcome.parked.get("round"),
                                   generation=outcome.parked.get("generation"),
                                   waiting_on=outcome.parked.get("waiting_on"))
                    else:
                        self.store.mark_failed(record, outcome.error)
                        registry.inc("repro_worker_jobs_total",
                                     outcome="failed")
                        emit_event("job_failed", job_id=record.job_id,
                                   worker=self.worker_id,
                                   error=str(outcome.error))
                    outcomes[record.job_id] = outcome
        finally:
            beat.stop()
            release_started = time.time()
            release_quietly(self.store, [r.job_id for r in records],
                            self.worker_id)
            # Flush after the release so the release span makes the
            # trace (trace-blob writes are owner-ungated, so losing the
            # claim first does not block them).
            self._flush_traces(
                records, outcomes,
                release=(release_started,
                         max(0.0, time.time() - release_started)),
            )
        return [outcomes[r.job_id] for r in records if r.job_id in outcomes]

    def _flush_traces(
        self,
        records: list[JobRecord],
        outcomes: dict[str, JobOutcome],
        release: tuple[float, float],
    ) -> None:
        """Persist each traced record's spans to its durable trace blob.

        Synthesizes the boundary spans only the worker can see — queue
        wait (submit to claim), the claim round, the batch release —
        merges the runner's spans (run / generations / evaluation
        batches), and leaves the root span plus the head-sampling
        decision to :func:`repro.obs.trace.flush_job_trace` (failed
        jobs always persist).  Telemetry: flush failures are swallowed
        and counted, never raised.
        """
        claim_started, claim_seconds = self._last_claim
        release_started, release_seconds = release
        shard_name_for = getattr(self.store, "shard_name_for", None)
        for record in records:
            info = trace.trace_context_from_extras(record.extras)
            if info is None:
                continue
            trace_id, root = info["id"], info["root"]
            shard = None
            if callable(shard_name_for):
                try:
                    shard = shard_name_for(record.job_id)
                except Exception:  # noqa: BLE001 - attribute only
                    shard = None
            spans = []
            if record.submitted_at and claim_started > record.submitted_at:
                spans.append(trace.make_span(
                    trace_id, root, "repro.queue.wait",
                    start=record.submitted_at,
                    duration=claim_started - record.submitted_at,
                ))
            if claim_started:
                spans.append(trace.make_span(
                    trace_id, root, "repro.claim",
                    start=claim_started, duration=claim_seconds,
                    worker=self.worker_id, shard=shard,
                ))
            outcome = outcomes.get(record.job_id)
            if outcome is not None:
                spans.extend(outcome.trace_spans)
            spans.append(trace.make_span(
                trace_id, root, "repro.release",
                start=release_started, duration=release_seconds,
                worker=self.worker_id,
            ))
            # Re-read so the root span carries the post-run status (the
            # sampling override keys off "failed"); fall back to the
            # claimed-time record if the store read fails.
            try:
                current = self.store.get(record.job_id)
            except Exception:  # noqa: BLE001 - telemetry only
                current = record
            trace.flush_job_trace(
                self.store, current, spans,
                end=release_started + release_seconds,
            )

    def process(self, record: JobRecord) -> JobOutcome | None:
        """Claim and execute one record; ``None`` when it isn't ours to run.

        Returns the settled :class:`JobOutcome` (the record is marked
        ``completed`` or ``failed`` accordingly) when this worker won the
        claim, ``None`` when another worker holds the job or the record
        stopped being queued before the claim landed.
        """
        mine = self._claim_batch(1, candidates=[record])
        if not mine:
            return None
        (outcome,) = self._run_claimed(mine)
        return outcome

    def run_once(self, max_jobs: int = 0) -> list[JobOutcome]:
        """Drain the queue: claim and run batches until none are claimable.

        Jobs claimed by other workers are left alone; the loop exits
        when a full pass over the queue wins no claim, or — with
        ``max_jobs`` set — as soon as that many jobs have run.  Stale
        claims are recovered first, so jobs abandoned by a crashed
        worker re-enter this very drain.

        Parked island jobs neither count toward ``max_jobs`` (they are
        yields, not finishes) nor keep the drain alive on their own:
        once *every* queued job has re-parked at an unchanged exchange
        boundary since the last real progress, the missing migrants
        must come from outside this worker, so spinning here cannot
        help — the drain returns and the poll loop (or a peer worker)
        takes over.  The every-queued-job bar matters on a sharded
        store, where claim order favours the worker's home shard: one
        stalled home-shard island must not mask runnable peers on
        other shards.
        """
        self.store.recover_stale_claims(self.stale_after)
        outcomes: list[JobOutcome] = []
        finished = 0
        parked_sigs: dict[str, tuple] = {}
        stalled: set[str] = set()
        bypass_stalled = False
        while True:
            limit = self.capacity
            if max_jobs:
                limit = min(limit, max_jobs - finished)
                if limit <= 0:
                    return outcomes
            if bypass_stalled:
                # The store's own claim order (home shard first on a
                # sharded fleet) would hand the stalled job straight
                # back; claim around it from the explicit queue walk.
                pool = [record for record in self.store.queued()
                        if record.job_id not in stalled]
                if not pool:
                    return outcomes
                batch = self._claim_batch(limit, candidates=pool)
            else:
                batch = self._claim_batch(limit)
            if not batch:
                return outcomes
            for record in batch:
                # A record parked by an earlier drain carries its last
                # park signature; seeding it here makes an immediate
                # re-park read as "no progress" on the first pass.
                prior = record.extras.get("island_parked")
                if isinstance(prior, dict) and record.job_id not in parked_sigs:
                    parked_sigs[record.job_id] = (prior.get("round"),
                                                  prior.get("generation"))
            settled = self._run_claimed(batch)
            outcomes.extend(settled)
            progressed = False
            for outcome in settled:
                if outcome.parked is None:
                    finished += 1
                    progressed = True
                    continue
                signature = (outcome.parked.get("round"),
                             outcome.parked.get("generation"))
                if parked_sigs.get(outcome.job_id) != signature:
                    progressed = True
                else:
                    stalled.add(outcome.job_id)
                parked_sigs[outcome.job_id] = signature
            if progressed:
                stalled.clear()
                bypass_stalled = False
                continue
            queued_now = {record.job_id for record in self.store.queued()}
            if queued_now <= stalled:
                return outcomes
            bypass_stalled = True

    def run(
        self,
        poll_seconds: float = 2.0,
        max_jobs: int = 0,
        idle_exit: int = 0,
        poll_max: float | None = None,
    ) -> list[JobOutcome]:
        """Poll-and-drain loop for a long-lived worker process.

        Drains the queue, sleeps, repeats.  ``max_jobs`` stops after
        that many executed jobs and ``idle_exit`` after that many
        consecutive empty polls; both default to 0, meaning "no limit"
        — the loop then only ends by external termination.

        With ``poll_max`` set, an idle worker backs off: each
        consecutive empty poll doubles the sleep, from ``poll_seconds``
        up to ``poll_max``, and the first successful claim resets it —
        so an idle fleet stops hammering the shared server or database
        while a busy one still polls at full cadence.
        """
        if poll_seconds <= 0:
            raise WorkerError(f"poll_seconds must be positive, got {poll_seconds}")
        if poll_max is not None and poll_max < poll_seconds:
            raise WorkerError(
                f"poll_max ({poll_max}) must be >= poll_seconds ({poll_seconds})"
            )
        registry = get_registry()
        outcomes: list[JobOutcome] = []
        finished = 0
        idle_polls = 0
        delay = float(poll_seconds)
        while True:
            remaining = max_jobs - finished if max_jobs else 0
            batch = self.run_once(max_jobs=remaining)
            outcomes.extend(batch)
            # Parked island yields are scheduling, not work done: only
            # finished (completed/failed) jobs count toward max_jobs.
            finished += sum(1 for o in batch if o.parked is None)
            self._maybe_push_telemetry(force=bool(batch))
            if max_jobs and finished >= max_jobs:
                return outcomes
            if batch:
                idle_polls = 0
                delay = float(poll_seconds)
            else:
                idle_polls += 1
            registry.set_gauge("repro_worker_idle_polls", idle_polls)
            registry.set_gauge("repro_worker_poll_delay_seconds", delay)
            if idle_exit and idle_polls >= idle_exit:
                return outcomes
            time.sleep(delay)
            if not batch and poll_max is not None:
                widened = min(delay * 2.0, float(poll_max))
                if widened != delay:
                    emit_event("worker_backoff", worker=self.worker_id,
                               delay_seconds=widened, idle_polls=idle_polls)
                delay = widened

    def _maybe_push_telemetry(self, force: bool = False,
                              min_interval: float = 5.0) -> None:
        """Push this worker's registry snapshot to the store, throttled.

        Only fires when telemetry is enabled and the store exposes the
        push side-channel (:class:`~repro.service.netstore.RemoteJobStore`
        against a ``repro serve`` endpoint); local stores have nothing to
        aggregate into.  ``force`` (after a drained batch) bypasses the
        idle throttle so completed work shows up on the server promptly.
        A failed push is telemetry about telemetry: counted, never raised.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        push = getattr(self.store, "push_telemetry", None)
        if not callable(push):
            return
        now = time.monotonic()
        if not force and now - self._last_telemetry_push < min_interval:
            return
        self._last_telemetry_push = now
        try:
            push(self.worker_id, registry.snapshot())
        except Exception:  # noqa: BLE001 - telemetry must never kill the worker
            registry.inc("repro_errors_total", event="telemetry_push_error")

    def __repr__(self) -> str:
        return f"Worker({self.worker_id!r}, store={self.store!r})"
