"""Queue worker: claims queued jobs from a shared store and executes them.

This is the execution half of the detached submission flow.  ``repro
submit --detach`` only *writes* ``queued`` records; a :class:`Worker`
(the ``repro worker`` command, or any number of them on machines that
share the state directory) later claims each record via the store's
atomic ``O_CREAT | O_EXCL`` claim files, runs it through the existing
:class:`~repro.service.runner.JobRunner`, and marks it ``completed`` or
``failed``.  Because a claim either exists or does not — there is no
in-between state the filesystem can expose — two workers draining one
queue never execute the same job, which is the invariant cross-machine
distribution builds on.

The claim protocol, spelled out:

1. list queued records, oldest first;
2. for each, try ``store.claim(job_id)`` — losing the race simply means
   another worker owns that job, move on;
3. after winning, *re-read the record*: a job that finished between the
   listing and the claim is skipped, not re-run;
4. run, mark, and release the claim in a ``finally`` block.

A worker that dies between claiming and releasing leaves a stale claim;
:meth:`~repro.service.store.JobStore.recover_stale_claims` (run at every
worker start and poll) requeues such jobs once the claim outlives
``stale_after`` seconds.
"""

from __future__ import annotations

import json
import os
import socket
import time

from repro.exceptions import WorkerError
from repro.service.backends import create_backend
from repro.service.checkpoint import FORMAT_VERSION
from repro.service.runner import JobOutcome, JobRunner
from repro.service.store import QUEUED, JobRecord, JobStore


class Worker:
    """Claims and executes queued jobs from a :class:`JobStore`.

    Parameters
    ----------
    store:
        The shared state directory; multiple workers may point at one.
    backend / max_workers:
        Execution backend for the runner each claimed job goes through.
        The default (``serial``) is right for fleets: parallelism comes
        from running more workers, not from fanning out inside one.
    use_cache:
        Thread the store's persistent evaluation cache through each job.
    cache_max_entries:
        LRU bound for worker-opened cache handles (``None`` = unbounded).
    worker_id:
        Identity recorded in claim files; defaults to ``host-pid``.
    stale_after:
        Claims older than this many seconds are treated as abandoned and
        their jobs requeued (must be positive).  Set it comfortably
        above your longest job's wall time: claims are not refreshed
        mid-run, so a job still legitimately running past ``stale_after``
        would be requeued and double-executed (worker heartbeats are a
        ROADMAP item).
    """

    def __init__(
        self,
        store: JobStore,
        backend: str = "serial",
        max_workers: int | None = None,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
        worker_id: str = "",
        stale_after: float = 3600.0,
    ) -> None:
        if stale_after <= 0:
            raise WorkerError(f"stale_after must be positive, got {stale_after}")
        # Fail fast on bad runner configuration: discovering it only
        # after claiming and marking a job running would strand records.
        create_backend(backend, max_workers)
        if cache_max_entries is not None and cache_max_entries < 1:
            raise WorkerError(
                f"cache_max_entries must be >= 1, got {cache_max_entries}"
            )
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.cache_max_entries = cache_max_entries
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.stale_after = float(stale_after)

    def _runner_for(self, record: JobRecord) -> JobRunner:
        """A runner honouring the record's submit-time checkpoint cadence."""
        return JobRunner(
            backend=self.backend,
            max_workers=self.max_workers,
            cache_path=str(self.store.cache_path) if self.use_cache else None,
            cache_max_entries=self.cache_max_entries,
            checkpoint_dir=str(self.store.checkpoints_dir),
            checkpoint_every=int(record.extras.get("checkpoint_every", 0)),
        )

    def _resumable(self, record: JobRecord) -> bool:
        """A valid checkpoint for exactly this job exists on disk."""
        path = self.store.checkpoints_dir / f"{record.job_id}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return False
        return (
            payload.get("version") == FORMAT_VERSION
            and payload.get("fingerprint") == record.job.fingerprint()
        )

    def process(self, record: JobRecord) -> JobOutcome | None:
        """Claim and execute one record; ``None`` when it isn't ours to run.

        Returns the settled :class:`JobOutcome` (the record is marked
        ``completed`` or ``failed`` accordingly) when this worker won the
        claim, ``None`` when another worker holds the job or the record
        stopped being queued before the claim landed.  A job left behind
        by an interrupted worker continues from its checkpoint instead
        of restarting: checkpoints are fingerprint-validated, so only a
        checkpoint of this exact job is ever resumed.
        """
        if not self.store.claim(record.job_id, owner=self.worker_id):
            return None
        try:
            current = self.store.get(record.job_id, missing_ok=True)
            if current is None or current.status != QUEUED:
                return None
            # Build the runner before mark_running: a construction error
            # must leave the record queued, not stranded in running.
            runner = self._runner_for(current)
            self.store.mark_running(current)
            (outcome,) = runner.run_settled(
                [current.job], resume=self._resumable(current)
            )
            if outcome.ok:
                self.store.mark_completed(current, outcome.result)
            else:
                self.store.mark_failed(current, outcome.error)
            return outcome
        finally:
            self.store.release(record.job_id, owner=self.worker_id)

    def run_once(self, max_jobs: int = 0) -> list[JobOutcome]:
        """Drain the queue: claim and run jobs until none are claimable.

        Jobs claimed by other workers are left alone; the loop exits
        when a full pass over the queue wins no claim, or — with
        ``max_jobs`` set — as soon as that many jobs have run.  Stale
        claims are recovered first, so jobs abandoned by a crashed
        worker re-enter this very drain.
        """
        self.store.recover_stale_claims(self.stale_after)
        outcomes: list[JobOutcome] = []
        while True:
            progressed = False
            for record in self.store.queued():
                if max_jobs and len(outcomes) >= max_jobs:
                    return outcomes
                outcome = self.process(record)
                if outcome is not None:
                    outcomes.append(outcome)
                    progressed = True
            if not progressed or (max_jobs and len(outcomes) >= max_jobs):
                return outcomes

    def run(
        self,
        poll_seconds: float = 2.0,
        max_jobs: int = 0,
        idle_exit: int = 0,
    ) -> list[JobOutcome]:
        """Poll-and-drain loop for a long-lived worker process.

        Drains the queue, sleeps ``poll_seconds``, repeats.  ``max_jobs``
        stops after that many executed jobs and ``idle_exit`` after that
        many consecutive empty polls; both default to 0, meaning "no
        limit" — the loop then only ends by external termination.
        """
        if poll_seconds <= 0:
            raise WorkerError(f"poll_seconds must be positive, got {poll_seconds}")
        outcomes: list[JobOutcome] = []
        idle_polls = 0
        while True:
            remaining = max_jobs - len(outcomes) if max_jobs else 0
            batch = self.run_once(max_jobs=remaining)
            outcomes.extend(batch)
            if max_jobs and len(outcomes) >= max_jobs:
                return outcomes
            idle_polls = 0 if batch else idle_polls + 1
            if idle_exit and idle_polls >= idle_exit:
                return outcomes
            time.sleep(poll_seconds)

    def __repr__(self) -> str:
        return f"Worker({self.worker_id!r}, store={self.store!r})"
