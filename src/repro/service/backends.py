"""Pluggable execution backends for the job runner.

A backend turns "run this function over these items" into serial,
thread-parallel or process-parallel execution with identical semantics:
results come back in submission order and worker exceptions propagate to
the caller.  The GA itself is deterministic per seed, so the backend is
purely a throughput choice — every backend produces byte-identical
results for the same jobs.

* ``serial`` — in-process loop; zero overhead, the reference semantics.
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; best for
  workloads dominated by numpy (which releases the GIL) or I/O.
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core fan-out, requires picklable functions and payloads.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from repro.exceptions import ServiceError

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(ABC):
    """Maps a function over payloads, preserving submission order."""

    name: str = "abstract"

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Run ``fn`` over ``items``; results in order, exceptions raised."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-process, one-at-a-time execution — the reference backend."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared sizing logic of the two pool-based backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def _workers(self, n_items: int) -> int:
        limit = self.max_workers or os.cpu_count() or 1
        return max(1, min(limit, n_items))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; shares memory, overlaps GIL-releasing work."""

    name = "thread"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self._workers(len(items))) as pool:
            return list(pool.map(fn, items))


class ProcessBackend(_PoolBackend):
    """Process-pool execution; full parallelism, picklable payloads only."""

    name = "process"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []
        with ProcessPoolExecutor(max_workers=self._workers(len(items))) as pool:
            return list(pool.map(fn, items))


BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def create_backend(
    backend: str | ExecutionBackend, max_workers: int | None = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance).

    ``max_workers`` caps pool size for the pooled backends and is
    rejected for ``serial``, where it could only mislead.  A pre-built
    instance already fixed its pool size at construction, so combining
    one with ``max_workers`` is also rejected rather than silently
    ignoring the cap.
    """
    if isinstance(backend, ExecutionBackend):
        if max_workers is not None:
            raise ServiceError(
                f"max_workers={max_workers} cannot be applied to a pre-built "
                f"{type(backend).__name__} instance; set the pool size when "
                "constructing the backend"
            )
        return backend
    if backend not in BACKENDS:
        raise ServiceError(
            f"unknown backend {backend!r}; choose from {', '.join(sorted(BACKENDS))}"
        )
    if backend == SerialBackend.name:
        if max_workers not in (None, 1):
            raise ServiceError("serial backend does not take max_workers")
        return SerialBackend()
    return BACKENDS[backend](max_workers=max_workers)
