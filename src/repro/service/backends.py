"""Pluggable execution backends for the job runner.

A backend turns "run this function over these items" into serial,
thread-parallel or process-parallel execution with identical semantics:
results come back in submission order and worker exceptions propagate to
the caller.  The GA itself is deterministic per seed, so the backend is
purely a throughput choice — every backend produces byte-identical
results for the same jobs.

* ``serial`` — in-process loop; zero overhead, the reference semantics.
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; best for
  workloads dominated by numpy (which releases the GIL) or I/O.
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core fan-out, requires picklable functions and payloads.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from repro.exceptions import ServiceError

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(ABC):
    """Maps a function over payloads, preserving submission order."""

    name: str = "abstract"

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Run ``fn`` over ``items``; results in order, exceptions raised."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-process, one-at-a-time execution — the reference backend."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared pool plumbing of the two pool-based backends.

    The pool is created lazily on the first :meth:`map` and *reused*
    across calls: callers like the batch evaluator map one small batch
    per GA generation, and paying a pool spawn (for processes, a fork
    plus interpreter start) per batch would dwarf the work itself.
    Both executors start their workers on demand, so a large
    ``max_workers`` with small batches never over-spawns.  ``close()``
    tears the pool down; an unclosed pool is reaped when the backend is
    garbage-collected or at interpreter exit.
    """

    _executor_factory: Callable = None  # type: ignore[assignment]

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            size = self.max_workers or os.cpu_count() or 1
            self._pool = type(self)._executor_factory(max_workers=size)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent); the next map re-creates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; shares memory, overlaps GIL-releasing work."""

    name = "thread"
    _executor_factory = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """Process-pool execution; full parallelism, picklable payloads only."""

    name = "process"
    _executor_factory = ProcessPoolExecutor


BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def create_backend(
    backend: str | ExecutionBackend, max_workers: int | None = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance).

    ``max_workers`` caps pool size for the pooled backends and is
    rejected for ``serial``, where it could only mislead.  A pre-built
    instance already fixed its pool size at construction, so combining
    one with ``max_workers`` is also rejected rather than silently
    ignoring the cap.
    """
    if isinstance(backend, ExecutionBackend):
        if max_workers is not None:
            raise ServiceError(
                f"max_workers={max_workers} cannot be applied to a pre-built "
                f"{type(backend).__name__} instance; set the pool size when "
                "constructing the backend"
            )
        return backend
    if backend not in BACKENDS:
        raise ServiceError(
            f"unknown backend {backend!r}; choose from {', '.join(sorted(BACKENDS))}"
        )
    if backend == SerialBackend.name:
        if max_workers not in (None, 1):
            raise ServiceError("serial backend does not take max_workers")
        return SerialBackend()
    return BACKENDS[backend](max_workers=max_workers)
