"""Checkpoint persistence: engine state that survives a crash.

The engine emits :class:`~repro.core.engine.EngineCheckpoint` values via
its ``on_checkpoint`` callback; :class:`CheckpointManager` writes them to
disk (atomically — temp file + rename) and reads them back so a killed
job resumes exactly where it stopped.  Code matrices are compressed
(zlib over the raw int64 buffer, base64 in the JSON), which keeps even
thousand-record populations at checkpoint-per-few-generations cost.

A checkpoint records a caller-chosen configuration fingerprint (the job
service stamps the job's content hash, engine-level callers typically the
evaluator's ``config_fingerprint()``); loading under a different
fingerprint is refused rather than silently producing scores that mean
something else.
"""

from __future__ import annotations

import base64
import json
import zlib
from pathlib import Path

import numpy as np

from repro.core.engine import EngineCheckpoint
from repro.core.history import GenerationRecord
from repro.core.individual import Individual
from repro.data.dataset import CategoricalDataset
from repro.exceptions import ServiceError
from repro.service.cache import score_from_dict, score_to_dict
from repro.service.store import _atomic_write_json

FORMAT_VERSION = 1


def _encode_codes(codes: np.ndarray) -> dict:
    raw = np.ascontiguousarray(codes, dtype=np.int64).tobytes()
    return {
        "shape": list(codes.shape),
        "data": base64.b64encode(zlib.compress(raw)).decode("ascii"),
    }


def _decode_codes(payload: dict) -> np.ndarray:
    raw = zlib.decompress(base64.b64decode(payload["data"]))
    return np.frombuffer(raw, dtype=np.int64).reshape(payload["shape"])


def _individual_to_dict(individual: Individual) -> dict:
    return {
        "name": individual.dataset.name,
        "origin": individual.origin,
        "birth_generation": individual.birth_generation,
        "codes": _encode_codes(individual.dataset.codes),
        "evaluation": score_to_dict(individual.evaluation),
    }


def _individual_from_dict(payload: dict, reference: CategoricalDataset) -> Individual:
    dataset = reference.with_codes(_decode_codes(payload["codes"]), name=payload["name"])
    return Individual(
        dataset=dataset,
        evaluation=score_from_dict(payload["evaluation"]),
        origin=payload["origin"],
        birth_generation=payload["birth_generation"],
    )


def _record_to_dict(record: GenerationRecord) -> dict:
    return {
        "generation": record.generation,
        "operator": record.operator,
        "max_score": record.max_score,
        "mean_score": record.mean_score,
        "min_score": record.min_score,
        "evaluations": record.evaluations,
        "fitness_seconds": record.fitness_seconds,
        "other_seconds": record.other_seconds,
        "accepted": record.accepted,
    }


def checkpoint_to_dict(checkpoint: EngineCheckpoint, fingerprint: str = "") -> dict:
    """JSON-ready representation of a full engine checkpoint."""
    return {
        "version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "generation": checkpoint.generation,
        "rng_state": checkpoint.rng_state,
        "initial": [_individual_to_dict(ind) for ind in checkpoint.initial],
        "individuals": [_individual_to_dict(ind) for ind in checkpoint.individuals],
        "records": [_record_to_dict(r) for r in checkpoint.records],
    }


def checkpoint_from_dict(
    payload: dict,
    reference: CategoricalDataset,
    expected_fingerprint: str = "",
) -> EngineCheckpoint:
    """Rebuild an :class:`EngineCheckpoint` from :func:`checkpoint_to_dict`.

    ``reference`` supplies the schema the protected files are decoded
    against (any dataset schema-compatible with the run's original).
    When ``expected_fingerprint`` is given and the checkpoint carries a
    fingerprint, the two must match.
    """
    if payload.get("version") != FORMAT_VERSION:
        raise ServiceError(f"unsupported checkpoint version: {payload.get('version')!r}")
    written_under = payload.get("fingerprint", "")
    if expected_fingerprint and written_under and written_under != expected_fingerprint:
        raise ServiceError(
            "checkpoint was written under a different evaluator configuration; "
            "refusing to resume (scores would not be comparable)"
        )
    return EngineCheckpoint(
        generation=payload["generation"],
        initial=[_individual_from_dict(p, reference) for p in payload["initial"]],
        individuals=[_individual_from_dict(p, reference) for p in payload["individuals"]],
        records=[GenerationRecord(**r) for r in payload["records"]],
        rng_state=payload["rng_state"],
    )


class CheckpointManager:
    """Owns one checkpoint file: atomic saves, verified loads.

    Install :meth:`save` as the engine's ``on_checkpoint`` callback (the
    job runner does this automatically when given a checkpoint
    directory).
    """

    def __init__(self, path: str | Path, fingerprint: str = "") -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.saves = 0

    def exists(self) -> bool:
        """True when a checkpoint file is present on disk."""
        return self.path.exists()

    def save(self, checkpoint: EngineCheckpoint) -> None:
        """Atomically persist ``checkpoint`` (unique temp file + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path, checkpoint_to_dict(checkpoint, self.fingerprint))
        self.saves += 1

    def load(self, reference: CategoricalDataset) -> EngineCheckpoint:
        """Read the checkpoint back, decoding against ``reference``'s schema."""
        if not self.exists():
            raise ServiceError(f"no checkpoint at {self.path}")
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        return checkpoint_from_dict(payload, reference, self.fingerprint)

    def delete(self) -> None:
        """Remove the checkpoint file if present."""
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"CheckpointManager({str(self.path)!r}, saves={self.saves})"
