"""On-disk job store: the service's durable state directory.

The store owns one directory (default ``$REPRO_HOME`` or ``~/.repro``)
with a fixed layout::

    <root>/jobs/<job_id>.json        one JobRecord per submitted job
    <root>/claims/<job_id>.claim     worker ownership markers (O_EXCL)
    <root>/checkpoints/<job_id>.json periodic engine checkpoints
    <root>/cache/evaluations.sqlite  the shared persistent evaluation cache

Records move through ``queued -> running -> completed | failed``; a
record stuck in ``running`` with a checkpoint on disk is exactly the
interrupted-job case ``repro resume`` repairs.  Everything is plain JSON
so operators can inspect and repair state with standard tools.

Claim files are how concurrent workers partition the queue without a
coordinator: a worker owns ``job_id`` exactly while
``<root>/claims/<job_id>.claim`` exists and was created by it.  Creation
uses ``O_CREAT | O_EXCL``, which is atomic on POSIX filesystems (and on
NFS since v3), so two workers sharing one state directory can never both
claim the same job.  A live worker refreshes its claims' ``last_seen``
field via :meth:`JobStore.heartbeat`; a claim whose worker has gone
silent (crash, kill -9, network partition) is recovered by
:meth:`JobStore.recover_stale_claims` once ``last_seen`` is older than
the staleness bound.

The method surface below — :data:`STORE_PROTOCOL` — is the store
contract: any other implementation (the network-backed
:class:`~repro.service.netstore.RemoteJobStore`) must expose exactly
these operations with the same semantics, enforced by the parametrized
conformance suite in ``tests/test_store_contract.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ServiceError, WorkerError
from repro.service.job import JobResult, ProtectionJob

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
STATUSES = (QUEUED, RUNNING, COMPLETED, FAILED)

#: The job-store contract: every store implementation (file-backed or
#: networked) exposes exactly these operations, and the conformance
#: suite asserts their shared semantics against each implementation.
STORE_PROTOCOL = (
    "submit",
    "save",
    "get",
    "records",
    "queued",
    "mark_running",
    "mark_completed",
    "mark_failed",
    "requeue",
    "claim",
    "claim_batch",
    "release",
    "heartbeat",
    "claim_info",
    "claims",
    "claimed_job_ids",
    "recover_stale_claims",
    "get_checkpoint",
    "put_checkpoint",
)


def default_state_dir() -> Path:
    """The service state directory: ``$REPRO_HOME`` or ``~/.repro``."""
    env = os.environ.get("REPRO_HOME", "")
    return Path(env) if env else Path.home() / ".repro"


def _atomic_write_json(path: Path, payload: dict, indent: int | None = None) -> None:
    """Write JSON via a uniquely-named temp file + atomic rename.

    The temp name must be unique per writer: the network server saves
    records from concurrent handler threads, and a shared ``.tmp`` path
    would let two writers interleave into one file before the rename
    installs it.  (Readers glob ``*.json``, which never matches the
    ``.tmp`` suffix.)
    """
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


@dataclass
class JobRecord:
    """One job's lifecycle: specification, status, timestamps, outcome."""

    job: ProtectionJob
    status: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: JobResult | None = None
    error: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """The job's content-derived identifier."""
        return self.job.job_id

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "job": self.job.to_dict(),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        result = payload.get("result")
        return cls(
            job=ProtectionJob.from_dict(payload["job"]),
            status=payload.get("status", QUEUED),
            submitted_at=payload.get("submitted_at", 0.0),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            result=JobResult.from_dict(result) if result else None,
            error=payload.get("error", ""),
            extras=payload.get("extras", {}),
        )


class JobStore:
    """Directory-backed persistence for job records, checkpoints, cache."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_state_dir()
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.checkpoints_dir = self.root / "checkpoints"
        self.cache_dir = self.root / "cache"
        for directory in (self.jobs_dir, self.claims_dir, self.checkpoints_dir,
                          self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Status index: job_id -> (mtime_ns, size, status, submitted_at),
        # validated by stat on every use, so queue polls and stale
        # recovery re-parse only records that actually changed since the
        # last tick instead of re-reading the whole job table.
        self._index: dict[str, tuple[int, int, str, float]] = {}
        # Claim index: job_id -> (mtime_ns, size, payload), same scheme —
        # claims() serves monitoring from one directory scan, re-reading
        # only claim files whose stat changed (each heartbeat rewrite
        # bumps mtime, so a beat is never served stale).
        self._claims_index: dict[str, tuple[int, int, dict]] = {}

    @property
    def spec(self) -> str:
        """The :func:`store_from_spec` spec that reopens this store."""
        return f"file:{self.root}"

    # -- locations ----------------------------------------------------------

    @property
    def cache_path(self) -> Path:
        """The shared persistent evaluation cache file."""
        return self.cache_dir / "evaluations.sqlite"

    def record_path(self, job_id: str) -> Path:
        """Where ``job_id``'s record lives."""
        return self.jobs_dir / f"{job_id}.json"

    def claim_path(self, job_id: str) -> Path:
        """Where ``job_id``'s worker claim marker lives."""
        return self.claims_dir / f"{job_id}.claim"

    def checkpoint_path(self, job_id: str) -> Path:
        """Where ``job_id``'s engine checkpoint lives."""
        return self.checkpoints_dir / f"{job_id}.json"

    # -- record lifecycle ---------------------------------------------------

    def submit(self, job: ProtectionJob, extras: dict | None = None) -> JobRecord:
        """Register a job as queued (idempotent).

        Resubmission never clobbers live state: a ``completed`` record is
        returned untouched, and so are ``queued`` and ``running`` ones —
        resetting a running job to queued would orphan the worker that
        owns it and lose ``started_at``.  Only a ``failed`` record is
        replaced by a fresh queued submission.

        ``extras`` (e.g. the checkpoint cadence) ride in the initial
        queued write itself: adding them with a second save would open a
        window where a polling worker claims the record without them.
        Resubmission keeps the existing record's extras.
        """
        existing = self.get(job.job_id, missing_ok=True)
        if existing is not None and existing.status != FAILED:
            return existing
        if existing is not None:
            # A worker that crashed between mark_failed and release can
            # leave a claim behind; drop it, or the fresh queued record
            # would be unclaimable until the claim ages out.
            self.release(job.job_id)
        record = JobRecord(job=job, status=QUEUED, submitted_at=time.time(),
                           extras=dict(extras or {}))
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record``."""
        if record.status not in STATUSES:
            raise ServiceError(f"unknown job status {record.status!r}")
        path = self.record_path(record.job_id)
        _atomic_write_json(path, record.to_dict(), indent=2)

    def get(self, job_id: str, missing_ok: bool = False) -> JobRecord | None:
        """Load one record; raises :class:`ServiceError` unless ``missing_ok``."""
        path = self.record_path(job_id)
        if not path.exists():
            if missing_ok:
                return None
            raise ServiceError(f"unknown job {job_id!r} (no record in {self.jobs_dir})")
        return JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def records(self) -> list[JobRecord]:
        """Every stored record, oldest submission first."""
        loaded = [
            JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.jobs_dir.glob("*.json"))
        ]
        return sorted(loaded, key=lambda r: r.submitted_at)

    def iter_records(self):
        """Yield records one at a time, in record-file name order.

        The streaming sibling of :meth:`records` (not part of
        :data:`STORE_PROTOCOL` — callers feature-detect it): a
        migration over a large table holds one record in memory, not
        the whole store.  Ordered by job id, not submission time —
        global time-ordering would force materializing everything,
        which is the point of not using :meth:`records`.
        """
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # torn mid-write; a migration snapshot skips it
            if isinstance(payload, dict):
                yield JobRecord.from_dict(payload)

    def _status_index(self) -> dict[str, tuple[str, float]]:
        """``job_id -> (status, submitted_at)`` without a full table read.

        Every record file is stat'ed (cheap) but only files whose
        mtime/size changed since the last call are re-parsed, so a
        polling worker's steady-state tick costs one stat per job, not
        one JSON parse per job.  A file that vanishes or tears mid-read
        (a save racing this scan) is simply skipped — records are
        written by atomic rename, so the next tick sees its final
        state.  A fresh store instance seeds the index with one full
        scan, which is exactly the old behaviour.
        """
        fresh: dict[str, tuple[int, int, str, float]] = {}
        for path in sorted(self.jobs_dir.glob("*.json")):
            job_id = path.stem
            try:
                stat = path.stat()
            except OSError:
                continue
            cached = self._index.get(job_id)
            if (cached is not None and cached[0] == stat.st_mtime_ns
                    and cached[1] == stat.st_size):
                fresh[job_id] = cached
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            fresh[job_id] = (stat.st_mtime_ns, stat.st_size,
                             payload.get("status", QUEUED),
                             float(payload.get("submitted_at") or 0.0))
        self._index = fresh
        return {job_id: (entry[2], entry[3]) for job_id, entry in fresh.items()}

    def queued(self) -> list[JobRecord]:
        """Queued records only, oldest submission first (the work queue).

        Uses the status index to load only the records it will return:
        a poll over a mostly-finished job table no longer re-reads every
        completed record.  Each candidate is re-read (and re-checked)
        through :meth:`get`, so a record that left the queue between
        the index scan and the load is filtered out, never returned
        stale.
        """
        index = self._status_index()
        candidates = sorted(
            (submitted_at, job_id)
            for job_id, (status, submitted_at) in index.items()
            if status == QUEUED
        )
        records = []
        for _, job_id in candidates:
            record = self.get(job_id, missing_ok=True)
            if record is not None and record.status == QUEUED:
                records.append(record)
        return records

    def mark_running(self, record: JobRecord) -> None:
        """Transition to ``running`` and persist."""
        record.status = RUNNING
        record.started_at = time.time()
        self.save(record)

    def mark_completed(self, record: JobRecord, result: JobResult) -> None:
        """Transition to ``completed`` with its result and persist."""
        record.status = COMPLETED
        record.finished_at = time.time()
        record.result = result
        record.error = ""
        self.save(record)

    def mark_failed(self, record: JobRecord, error: str) -> None:
        """Transition to ``failed`` with the error text and persist.

        Checked against the on-disk record first: a worker whose claim
        was stale-recovered mid-run may report its failure after the
        takeover worker already completed the job, and a finished result
        must never be clobbered by a stale failure.  In that case the
        caller's record is refreshed to the completed truth instead.
        """
        current = self.get(record.job_id, missing_ok=True)
        if current is not None and current.status == COMPLETED:
            record.status = current.status
            record.finished_at = current.finished_at
            record.result = current.result
            record.error = current.error
            return
        record.status = FAILED
        record.finished_at = time.time()
        record.error = error
        self.save(record)

    def requeue(self, record: JobRecord) -> JobRecord:
        """Put a ``running`` or ``failed`` record back on the queue.

        Clears the previous attempt's timestamps, result and error, and
        releases any claim so another worker can pick the job up.
        Requeueing a ``completed`` record would discard a finished
        result and raises :class:`WorkerError` instead — checked against
        the on-disk record, not just the caller's snapshot, so a job
        that completed since the caller last looked is protected too.
        """
        current = self.get(record.job_id, missing_ok=True) or record
        if COMPLETED in (record.status, current.status):
            raise WorkerError(f"refusing to requeue completed job {record.job_id!r}")
        current.status = QUEUED
        current.started_at = None
        current.finished_at = None
        current.result = None
        current.error = ""
        self.save(current)
        self.release(current.job_id)
        return current

    # -- worker claims ------------------------------------------------------

    def claim(self, job_id: str, owner: str = "") -> bool:
        """Atomically claim ``job_id`` for ``owner``.

        Returns ``True`` when this call created the claim file (the
        caller now owns the job), ``False`` when another worker already
        holds it.  ``O_CREAT | O_EXCL`` makes the create-or-fail decision
        a single atomic filesystem operation.  The claim starts with
        ``last_seen == claimed_at``; the owner keeps it alive with
        :meth:`heartbeat`.

        For a named ``owner`` the claim is idempotent: re-claiming a job
        that owner already holds returns ``True``.  Worker identities
        are unique (host-pid by default), so this can only say "yes, you
        still own it" — it exists for retried network claims, where the
        first attempt's response was lost after the claim file landed.
        Anonymous claims (empty owner) stay strictly exclusive.
        """
        now = time.time()
        payload = {"owner": owner, "pid": os.getpid(), "claimed_at": now,
                   "last_seen": now}
        try:
            fd = os.open(self.claim_path(job_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if owner:
                info = self.claim_info(job_id)
                if info is not None and info.get("owner") == owner:
                    return True
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return True

    def claim_batch(self, owner: str = "", limit: int = 0) -> list[JobRecord]:
        """Win claims over up to ``limit`` queued records for ``owner``.

        The one-call form of the worker claim loop: walk the queue
        oldest-first, claim each record, re-read inside the claim (a
        record that stopped being queued in the meantime is released
        again, not returned), and stop after ``limit`` wins when
        positive.  On any error every claim already held is released
        best-effort before the error propagates.  Database-backed
        stores implement this as one transaction; here it is the same
        claim-file protocol the single-job path uses.

        Only *new* wins are returned: a job this owner already holds is
        skipped, not re-won — ``claim()``'s per-owner idempotency would
        otherwise hand a polling worker its own running jobs back on
        every batch pull, forever.
        """
        mine: list[JobRecord] = []
        held: list[str] = []
        try:
            for record in self.queued():
                if limit and len(mine) >= limit:
                    break
                if self.claim_info(record.job_id) is not None:
                    continue  # held by someone — possibly by this owner
                if not self.claim(record.job_id, owner=owner):
                    continue
                held.append(record.job_id)
                current = self.get(record.job_id, missing_ok=True)
                if current is None or current.status != QUEUED:
                    self.release(record.job_id, owner=owner)
                    held.pop()
                    continue
                mine.append(current)
        except BaseException:
            for job_id in held:
                try:
                    self.release(job_id, owner=owner)
                except Exception:  # noqa: BLE001 - stale recovery backstops
                    pass
            raise
        return mine

    def release(self, job_id: str, owner: str | None = None) -> bool:
        """Drop ``job_id``'s claim (no-op when none exists).

        With ``owner`` given, the claim is only dropped on an exact,
        readable owner match — a worker releasing in its ``finally``
        must not unlink a claim that was recovered from it and
        re-granted to someone else in the meantime, and a claim whose
        owner cannot be read right now (torn mid-heartbeat by its true
        holder) is left alone rather than guessed at.  The check and the
        unlink are two filesystem operations, so an adversarial
        interleaving (release + re-claim between them) can still slip
        through; heartbeat-based recovery is the backstop for that
        window.  Without ``owner`` the release is unconditional (the
        recovery/requeue paths).  Returns whether a claim was removed.
        """
        if owner is not None:
            info = self.claim_info(job_id)
            if info is None:
                return False
            if info.get("owner") != owner:
                return False
        try:
            self.claim_path(job_id).unlink()
        except FileNotFoundError:
            return False
        return True

    def heartbeat(self, job_id: str, owner: str = "") -> bool:
        """Refresh ``job_id``'s claim liveness for ``owner``.

        Updates the claim's ``last_seen`` timestamp so
        :meth:`recover_stale_claims` knows the owning worker is still
        alive — a long job only has to beat more often than the
        staleness bound, however long it runs.  With ``owner`` given the
        beat only lands when that owner holds the claim.  Returns
        whether the claim was refreshed; ``False`` means the claim is
        gone (or owned by someone else) and the caller should assume it
        lost the job.

        The read and the rewrite go through one file descriptor, opened
        without ``O_CREAT``: a beat racing a release must not resurrect
        the claim file it lost, and a beat racing a release *plus a
        re-claim by another worker* must not overwrite the new owner's
        claim — the re-claim is a fresh inode, so a straggler's write
        lands on the old, already-unlinked one and changes nothing
        anybody can see.
        """
        try:
            fd = os.open(self.claim_path(job_id), os.O_RDWR)
        except FileNotFoundError:
            return False
        with os.fdopen(fd, "r+", encoding="utf-8") as handle:
            try:
                info = json.load(handle)
            except json.JSONDecodeError:
                # Mid-write by the true owner; their beat already counts.
                return False
            if not isinstance(info, dict):
                return False
            if owner and info.get("owner", "") not in ("", owner):
                return False
            info["last_seen"] = time.time()
            handle.seek(0)
            handle.truncate()
            json.dump(info, handle)
        return True

    def claim_info(self, job_id: str) -> dict | None:
        """The claim payload (owner, pid, claimed_at), or ``None``."""
        path = self.claim_path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Claim created but not yet written (or torn by a crash):
            # treat it as held with unknown metadata.
            return {}

    def claimed_job_ids(self) -> list[str]:
        """Every job id currently claimed by some worker."""
        return sorted(path.stem for path in self.claims_dir.glob("*.claim"))

    def claims(self) -> dict[str, dict]:
        """Every live claim's payload keyed by job id, in one bulk read.

        What monitoring wants (``repro status`` shows each claim's owner
        and heartbeat age): one operation — and, for the network store,
        one round trip — instead of a ``claim_info`` per claimed job.
        A claim released between the listing and its read is skipped.

        Served from a single directory scan backed by the stat-validated
        claim index: every claim file is stat'ed (cheap), but only files
        whose mtime/size changed since the last call are re-parsed —
        a monitoring poll over a large fleet costs one ``scandir`` plus
        one parse per *changed* claim, not one read per claim.

        Each payload gains an ``age_seconds`` field — seconds since the
        claim's last heartbeat, computed against *this store's* clock.
        Remote monitors must prefer it over doing their own arithmetic
        on ``last_seen``: their clock and the workers' need not agree.
        """
        now = time.time()
        suffix = ".claim"
        entries = []
        with os.scandir(self.claims_dir) as scan:
            for entry in scan:
                if entry.name.endswith(suffix):
                    entries.append(entry)
        fresh: dict[str, tuple[int, int, dict]] = {}
        payloads: dict[str, dict] = {}
        for entry in sorted(entries, key=lambda e: e.name):
            job_id = entry.name[: -len(suffix)]
            try:
                stat = entry.stat()
            except OSError:
                continue  # released between the scan and the stat
            cached = self._claims_index.get(job_id)
            if (cached is not None and cached[0] == stat.st_mtime_ns
                    and cached[1] == stat.st_size):
                info = cached[2]
            else:
                info = self.claim_info(job_id)
                if info is None:
                    continue
            fresh[job_id] = (stat.st_mtime_ns, stat.st_size, info)
            payload = dict(info)
            last_seen = float(payload.get("last_seen") or payload.get("claimed_at") or 0.0)
            if last_seen:
                payload["age_seconds"] = max(0.0, now - last_seen)
            payloads[job_id] = payload
        self._claims_index = fresh
        return payloads

    def recover_stale_claims(self, max_age_seconds: float = 3600.0) -> list[str]:
        """Release claims whose worker is evidently gone.

        Two cases are recovered: a claim for a job that already finished
        (``completed``/``failed`` — the worker crashed between marking
        and releasing) is simply dropped, and a claim whose worker has
        not heartbeated for ``max_age_seconds`` (by ``last_seen``,
        falling back to ``claimed_at`` and finally the claim file's
        mtime for claims written by pre-heartbeat workers) on an
        unfinished job is dropped *and* the record is requeued so
        another worker can take over.  Returns the recovered job ids.
        """
        recovered = []
        now = time.time()
        for job_id in self.claimed_job_ids():
            record = self.get(job_id, missing_ok=True)
            if record is None or record.status in (COMPLETED, FAILED):
                self.release(job_id)
                recovered.append(job_id)
                continue
            info = self.claim_info(job_id) or {}
            last_seen = float(info.get("last_seen") or info.get("claimed_at") or 0.0)
            if not last_seen:
                try:
                    last_seen = self.claim_path(job_id).stat().st_mtime
                except FileNotFoundError:
                    continue
            if now - last_seen > max_age_seconds:
                # Re-read just before acting: the job may have finished
                # between the listing above and now, and a finished
                # record only needs its claim dropped, never a requeue.
                current = self.get(job_id, missing_ok=True)
                if current is None or current.status in (COMPLETED, FAILED):
                    self.release(job_id)
                else:
                    try:
                        self.requeue(current)
                    except WorkerError:
                        # Completed in the window since the re-read;
                        # requeue protected the result, drop the claim.
                        self.release(job_id)
                recovered.append(job_id)
        # A record can also strand in `running` with *no* claim — the
        # worker died between releasing and marking, or its final mark
        # failed after the claims were already dropped.  The claim scan
        # above can't see those (there is no claim), and they are in no
        # queue, so requeue them here.  Running-with-no-claim is never a
        # legitimate state: marks happen strictly inside the claim.
        # The status index keeps this scan from re-reading every record.
        index = self._status_index()
        running = sorted(
            (submitted_at, job_id)
            for job_id, (status, submitted_at) in index.items()
            if status == RUNNING
        )
        for _, job_id in running:
            if job_id in recovered:
                continue
            # Re-read right before acting, and re-check the claim: a
            # worker may have claimed or finished it since the listing.
            current = self.get(job_id, missing_ok=True)
            if (
                current is not None
                and current.status == RUNNING
                and self.claim_info(job_id) is None
            ):
                try:
                    self.requeue(current)
                except WorkerError:
                    continue  # finished in the window; nothing to recover
                recovered.append(job_id)
        return recovered

    # -- checkpoints ---------------------------------------------------------

    def get_checkpoint(self, job_id: str) -> dict | None:
        """The stored engine checkpoint for ``job_id``, or ``None``."""
        try:
            payload = json.loads(
                self.checkpoint_path(job_id).read_text(encoding="utf-8")
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put_checkpoint(self, job_id: str, payload: dict,
                       owner: str | None = None) -> None:
        """Durably store ``job_id``'s checkpoint.

        With ``owner`` given the write is claim-gated: a worker whose
        claim was recovered and re-granted must not overwrite the new
        owner's fresher state.  Exact match only — a torn claim
        (unreadable mid-heartbeat) refuses rather than guesses, like
        release and heartbeat do.
        """
        if not isinstance(payload, dict):
            raise ServiceError("checkpoint payload must be a JSON object")
        if owner is not None:
            info = self.claim_info(job_id)
            if info is None or info.get("owner") != owner:
                raise WorkerError(
                    f"checkpoint upload rejected: {job_id!r} is not "
                    f"claimed by {owner!r}"
                )
        _atomic_write_json(self.checkpoint_path(job_id), payload)

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r})"


def store_from_spec(spec: str = "", *, token: str = "",
                    state_dir: str | Path | None = None):
    """Open a job store from its selection spec — the one factory the
    CLI, workers and tests share instead of ad-hoc backend branching.

    Spec grammar (the selection contract, recorded in the ROADMAP):

    - ``""`` — the default file store (``state_dir``, else
      ``$REPRO_HOME`` or ``~/.repro``);
    - ``file:DIR`` or a bare directory path — a file store on ``DIR``;
    - ``sqlite:PATH`` — a :class:`~repro.service.sqlstore.SqliteJobStore`
      on the database file ``PATH`` (empty path: ``jobs.sqlite`` under
      the default state directory);
    - ``http://...`` / ``https://...`` — a
      :class:`~repro.service.netstore.RemoteJobStore` client of a
      ``repro serve`` endpoint, authenticated with ``token`` and
      spooling under ``state_dir``;
    - ``shard:CHILD[,CHILD...]`` or ``shard:@MANIFEST.json`` — a
      :class:`~repro.service.shardstore.ShardedJobStore` composing the
      child specs (any mix of the grammars above; ``token`` is shared
      by HTTP children, ``state_dir`` is the local checkpoint spool).

    Local paths are ``~``-expanded here: a spec like ``file:~/.repro``
    reaches this factory verbatim (shells do not tilde-expand after the
    colon), and silently creating a literal ``./~`` directory instead
    of opening the home-dir store would make a migration look
    successful while copying nothing.

    An unrecognized ``scheme:`` prefix (say, a typo like
    ``sqllite:jobs.db``) is an error, not a file store on a directory
    literally named that — a fleet quietly writing into
    ``./sqllite:jobs.db`` looks healthy while sharing state with
    no one.

    Every returned store exposes the full :data:`STORE_PROTOCOL`.
    """
    spec = (spec or "").strip()
    if spec.startswith(("http://", "https://")):
        from repro.service.netstore import RemoteJobStore

        return RemoteJobStore(spec, token=token,
                              spool=state_dir if state_dir else None)
    if spec.startswith("sqlite:"):
        from repro.service.sqlstore import SqliteJobStore

        path = spec[len("sqlite:"):]
        return SqliteJobStore(Path(path).expanduser() if path else None)
    if spec.startswith("shard:"):
        from repro.service.shardstore import ShardedJobStore

        return ShardedJobStore.from_spec(spec[len("shard:"):], token=token,
                                         state_dir=state_dir)
    if spec.startswith("file:"):
        spec = spec[len("file:"):]
    elif _looks_like_unknown_scheme(spec):
        scheme = spec.split(":", 1)[0]
        raise ServiceError(
            f"unrecognized store scheme {scheme + ':'!r} in spec {spec!r} "
            "— valid specs: \"\" (default file store), file:DIR or a bare "
            "directory path, sqlite:PATH, http(s)://HOST:PORT, and "
            "shard:CHILD[,CHILD...] / shard:@MANIFEST.json"
        )
    if not spec:
        return JobStore(state_dir) if state_dir else JobStore()
    return JobStore(Path(spec).expanduser())


def _looks_like_unknown_scheme(spec: str) -> bool:
    """Whether a non-``file:`` spec reads as ``scheme:rest`` rather than
    a path.  Alphabetic tokens of length >= 2 only, so Windows drive
    letters (``C:\\jobs``) and paths with colons deeper in (``a/b:c``)
    still open as file stores; an existing path always wins — the user
    demonstrably means that directory."""
    head, sep, _ = spec.partition(":")
    if not sep or not head.isalpha() or len(head) < 2:
        return False
    return not Path(spec).expanduser().exists()


def migrate_store(source, target, *, chunk_size: int = 100) -> dict[str, int]:
    """Copy every job record and checkpoint from ``source`` to ``target``.

    Works across any two :data:`STORE_PROTOCOL` stores (this is the
    ``repro migrate`` export/import pair: file directory -> sqlite
    database and back, or shard -> shard for rebalancing).  Records
    keep their status, timestamps and results byte-for-byte;
    checkpoints ride along keyed by job id.  Live claims are
    deliberately *not* carried: migrate a quiesced fleet — a record
    mid-``running`` at snapshot time arrives with no claim and is
    requeued by the first ``recover_stale_claims`` pass on the target,
    which is exactly the crashed-worker repair path.

    The copy streams: a source exposing ``iter_records()`` (the file
    and sqlite stores do) is traversed one record at a time, so a
    million-job table never materializes in memory; other sources fall
    back to ``records()``.  Every ``chunk_size`` records a
    ``migrate_progress`` event is emitted — ``repro migrate
    --log-json`` on a large store shows a heartbeat, not an hour of
    silence.  Returns counts of what was copied.

    Durable trace blobs (``<job_id>.trace``, see
    :mod:`repro.obs.trace`) and island migrant buffers
    (``<job_id>.migrants``, see :mod:`repro.service.islands`) ride the
    same checkpoint path, so a migrated job keeps its waterfall and a
    migrated island group keeps its exchange history too.
    """
    from repro.obs import emit_event
    from repro.obs.trace import trace_blob_id
    from repro.service.islands import migrants_blob_id

    if chunk_size < 1:
        raise ServiceError(f"chunk_size must be >= 1, got {chunk_size}")
    iterator = getattr(source, "iter_records", None)
    stream = iterator() if callable(iterator) else source.records()
    copied = 0
    checkpoints = 0
    traces = 0
    migrants = 0
    for record in stream:
        target.save(record)
        copied += 1
        payload = source.get_checkpoint(record.job_id)
        if payload is not None:
            target.put_checkpoint(record.job_id, payload)
            checkpoints += 1
        blob = source.get_checkpoint(trace_blob_id(record.job_id))
        if blob is not None:
            target.put_checkpoint(trace_blob_id(record.job_id), blob)
            traces += 1
        buffer = source.get_checkpoint(migrants_blob_id(record.job_id))
        if buffer is not None:
            target.put_checkpoint(migrants_blob_id(record.job_id), buffer)
            migrants += 1
        if copied % chunk_size == 0:
            emit_event("migrate_progress", records=copied,
                       checkpoints=checkpoints, traces=traces,
                       migrants=migrants)
    emit_event("migrate_progress", records=copied, checkpoints=checkpoints,
               traces=traces, migrants=migrants, done=True)
    return {"records": copied, "checkpoints": checkpoints, "traces": traces,
            "migrants": migrants}
