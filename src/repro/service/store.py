"""On-disk job store: the service's durable state directory.

The store owns one directory (default ``$REPRO_HOME`` or ``~/.repro``)
with a fixed layout::

    <root>/jobs/<job_id>.json        one JobRecord per submitted job
    <root>/checkpoints/<job_id>.json periodic engine checkpoints
    <root>/cache/evaluations.sqlite  the shared persistent evaluation cache

Records move through ``queued -> running -> completed | failed``; a
record stuck in ``running`` with a checkpoint on disk is exactly the
interrupted-job case ``repro resume`` repairs.  Everything is plain JSON
so operators can inspect and repair state with standard tools.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.job import JobResult, ProtectionJob

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
STATUSES = (QUEUED, RUNNING, COMPLETED, FAILED)


def default_state_dir() -> Path:
    """The service state directory: ``$REPRO_HOME`` or ``~/.repro``."""
    env = os.environ.get("REPRO_HOME", "")
    return Path(env) if env else Path.home() / ".repro"


@dataclass
class JobRecord:
    """One job's lifecycle: specification, status, timestamps, outcome."""

    job: ProtectionJob
    status: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: JobResult | None = None
    error: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """The job's content-derived identifier."""
        return self.job.job_id

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "job": self.job.to_dict(),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        result = payload.get("result")
        return cls(
            job=ProtectionJob.from_dict(payload["job"]),
            status=payload.get("status", QUEUED),
            submitted_at=payload.get("submitted_at", 0.0),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            result=JobResult.from_dict(result) if result else None,
            error=payload.get("error", ""),
            extras=payload.get("extras", {}),
        )


class JobStore:
    """Directory-backed persistence for job records, checkpoints, cache."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_state_dir()
        self.jobs_dir = self.root / "jobs"
        self.checkpoints_dir = self.root / "checkpoints"
        self.cache_dir = self.root / "cache"
        for directory in (self.jobs_dir, self.checkpoints_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- locations ----------------------------------------------------------

    @property
    def cache_path(self) -> Path:
        """The shared persistent evaluation cache file."""
        return self.cache_dir / "evaluations.sqlite"

    def record_path(self, job_id: str) -> Path:
        """Where ``job_id``'s record lives."""
        return self.jobs_dir / f"{job_id}.json"

    # -- record lifecycle ---------------------------------------------------

    def submit(self, job: ProtectionJob) -> JobRecord:
        """Register a job as queued (idempotent: resubmitting an already
        completed job returns the existing record untouched)."""
        existing = self.get(job.job_id, missing_ok=True)
        if existing is not None and existing.status == COMPLETED:
            return existing
        record = JobRecord(job=job, status=QUEUED, submitted_at=time.time())
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record``."""
        if record.status not in STATUSES:
            raise ServiceError(f"unknown job status {record.status!r}")
        path = self.record_path(record.job_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(record.to_dict(), indent=2), encoding="utf-8")
        os.replace(tmp, path)

    def get(self, job_id: str, missing_ok: bool = False) -> JobRecord | None:
        """Load one record; raises :class:`ServiceError` unless ``missing_ok``."""
        path = self.record_path(job_id)
        if not path.exists():
            if missing_ok:
                return None
            raise ServiceError(f"unknown job {job_id!r} (no record in {self.jobs_dir})")
        return JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def records(self) -> list[JobRecord]:
        """Every stored record, oldest submission first."""
        loaded = [
            JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.jobs_dir.glob("*.json"))
        ]
        return sorted(loaded, key=lambda r: r.submitted_at)

    def mark_running(self, record: JobRecord) -> None:
        """Transition to ``running`` and persist."""
        record.status = RUNNING
        record.started_at = time.time()
        self.save(record)

    def mark_completed(self, record: JobRecord, result: JobResult) -> None:
        """Transition to ``completed`` with its result and persist."""
        record.status = COMPLETED
        record.finished_at = time.time()
        record.result = result
        record.error = ""
        self.save(record)

    def mark_failed(self, record: JobRecord, error: str) -> None:
        """Transition to ``failed`` with the error text and persist."""
        record.status = FAILED
        record.finished_at = time.time()
        record.error = error
        self.save(record)

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r})"
