"""Transactional SQLite-backed job store: one database, indexed queues.

The file-backed :class:`~repro.service.store.JobStore` scales with the
filesystem: every queue poll reads record files and every claim is its
own ``O_CREAT | O_EXCL`` marker.  That is perfect for a handful of
workers on one directory, but a heavy fleet turns both into hot spots —
the ROADMAP's "horizontal store scale-out" item.  This module keeps the
*contract* (the :data:`~repro.service.store.STORE_PROTOCOL` surface,
enforced by ``tests/test_store_contract.py``) and swaps the substrate:

- jobs, claims and checkpoint blobs live in indexed tables of a single
  SQLite database in WAL mode, so ``queued()``, ``claim_batch()``,
  ``recover_stale_claims()`` and ``repro status`` are indexed queries
  instead of full directory scans;
- :meth:`SqliteJobStore.claim` is one ``BEGIN IMMEDIATE`` transaction
  that checks and inserts the claim row atomically — safe under N
  concurrent workers in any number of processes, and a claimer killed
  between transaction start and commit rolls back cleanly (the job
  stays queued, never stranded half-claimed);
- :meth:`SqliteJobStore.claim_batch` claims a whole capacity batch in
  one transaction, so a worker's queue pull is a single indexed query
  however long the job table grows.

Checkpoint blobs get the same durability treatment the network store
gives them: the ``checkpoints`` table owns the fleet's copy, while the
runner keeps writing plain files under ``checkpoints_dir`` (no engine
layer changes).  Winning a claim copies the table blob into the local
file (resume from the fleet's latest state); every successful heartbeat
or owner release syncs a changed file back into the table — so the
database file is the one artifact an operator backs up or migrates.

WAL caveat: SQLite's WAL mode requires shared memory between writers,
which network filesystems (NFS, SMB) do not reliably provide.  Put the
database on a local disk and front it with ``repro serve --backend
sqlite`` when workers live on other machines; use the file store when
you genuinely want shared-filesystem coordination.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import ServiceError, WorkerError
from repro.service.job import JobResult, ProtectionJob
from repro.service.store import (
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    STATUSES,
    JobRecord,
    _atomic_write_json,
    default_state_dir,
)

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    status TEXT NOT NULL,
    submitted_at REAL NOT NULL DEFAULT 0,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, submitted_at);
CREATE TABLE IF NOT EXISTS claims (
    job_id TEXT PRIMARY KEY,
    owner TEXT,
    pid INTEGER,
    claimed_at REAL,
    last_seen REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS claims_by_last_seen ON claims (last_seen);
CREATE TABLE IF NOT EXISTS checkpoints (
    job_id TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    updated_at REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def default_db_path() -> Path:
    """The default database location: ``jobs.sqlite`` in the state dir."""
    return default_state_dir() / "jobs.sqlite"


class SqliteJobStore:
    """The :data:`~repro.service.store.STORE_PROTOCOL` on one SQLite file.

    ``path`` is the database file; its parent directory becomes the
    store root, holding the ``checkpoints/`` spool the runner writes to
    and the ``cache/`` directory for the shared evaluation cache —
    the same worker-facing locations every store exposes, so
    :class:`~repro.service.worker.Worker`, the runner and the CLI run
    unchanged.  A single connection serves all threads (handler threads
    of a fronting :class:`~repro.service.netstore.JobStoreServer`
    included), serialized by a lock; cross-process safety comes from
    SQLite's own locking — every mutation runs inside ``BEGIN
    IMMEDIATE``, so concurrent claimers in different worker processes
    are decided by the database, atomically, with crash rollback.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_db_path()
        self.root = self.path.parent
        self.checkpoints_dir = self.root / "checkpoints"
        self.cache_dir = self.root / "cache"
        for directory in (self.checkpoints_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # mtime of each checkpoint file as last synced with the table,
        # so heartbeats only pay a write when the file actually changed.
        self._synced_mtimes: dict[str, float] = {}
        self._lock = threading.Lock()
        # isolation_level=None: autocommit, with explicit BEGIN
        # IMMEDIATE transactions where multi-statement atomicity (and
        # cross-process exclusion) is the point.
        self._conn = sqlite3.connect(self.path, check_same_thread=False,
                                     isolation_level=None)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=10000")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )

    # -- locations -----------------------------------------------------------

    @property
    def spec(self) -> str:
        """The :func:`~repro.service.store.store_from_spec` spec."""
        return f"sqlite:{self.path}"

    @property
    def cache_path(self) -> Path:
        """The shared persistent evaluation cache file."""
        return self.cache_dir / "evaluations.sqlite"

    def checkpoint_path(self, job_id: str) -> Path:
        """The runner-facing checkpoint file (local mirror of the table)."""
        return self.checkpoints_dir / f"{job_id}.json"

    # -- transactions --------------------------------------------------------

    @contextmanager
    def _tx(self):
        """One ``BEGIN IMMEDIATE`` transaction; rollback on any error.

        IMMEDIATE takes the database write lock up front, so the
        read-check-write sequences inside (claim, submit, recovery) are
        atomic against writers in *other processes*, not just other
        threads.  A process killed inside the block leaves no partial
        state: SQLite rolls the transaction back on next open.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def _save_locked(self, record: JobRecord) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO jobs (job_id, status, submitted_at, payload) "
            "VALUES (?, ?, ?, ?)",
            (record.job_id, record.status, record.submitted_at,
             json.dumps(record.to_dict())),
        )

    def _get_locked(self, job_id: str) -> JobRecord | None:
        row = self._conn.execute(
            "SELECT payload FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return JobRecord.from_dict(json.loads(row[0])) if row else None

    def _requeue_locked(self, record: JobRecord) -> JobRecord:
        record.status = QUEUED
        record.started_at = None
        record.finished_at = None
        record.result = None
        record.error = ""
        self._save_locked(record)
        return record

    # -- record lifecycle ----------------------------------------------------

    def submit(self, job: ProtectionJob, extras: dict | None = None) -> JobRecord:
        """Register a job as queued (idempotent); see :meth:`JobStore.submit`.

        One transaction covers the existence check and the write, so
        two workers submitting the same job concurrently cannot both
        replace a failed record or interleave their writes.
        """
        with self._lock, self._tx():
            existing = self._get_locked(job.job_id)
            if existing is not None and existing.status != FAILED:
                return existing
            if existing is not None:
                # A worker that crashed between mark_failed and release
                # can leave a claim behind; drop it with the resubmit.
                self._conn.execute("DELETE FROM claims WHERE job_id = ?",
                                   (job.job_id,))
            record = JobRecord(job=job, status=QUEUED, submitted_at=time.time(),
                               extras=dict(extras or {}))
            self._save_locked(record)
            return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record``."""
        if record.status not in STATUSES:
            raise ServiceError(f"unknown job status {record.status!r}")
        with self._lock, self._tx():
            self._save_locked(record)

    def get(self, job_id: str, missing_ok: bool = False) -> JobRecord | None:
        """Load one record; raises :class:`ServiceError` unless ``missing_ok``."""
        with self._lock:
            record = self._get_locked(job_id)
        if record is None and not missing_ok:
            raise ServiceError(f"unknown job {job_id!r} (no record in {self.path})")
        return record

    def records(self) -> list[JobRecord]:
        """Every stored record, oldest submission first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM jobs ORDER BY submitted_at, job_id"
            ).fetchall()
        return [JobRecord.from_dict(json.loads(row[0])) for row in rows]

    def iter_records(self, batch_size: int = 256):
        """Yield records one at a time, in job-id order.

        The streaming sibling of :meth:`records` (not in
        :data:`STORE_PROTOCOL`; ``migrate_store`` feature-detects it).
        Pages through the table ``batch_size`` rows per query, keyed on
        the primary key rather than a long-lived cursor, so concurrent
        writers never block behind a reader holding the connection.
        """
        last = ""
        while True:
            with self._lock:
                rows = self._conn.execute(
                    "SELECT job_id, payload FROM jobs WHERE job_id > ? "
                    "ORDER BY job_id LIMIT ?",
                    (last, batch_size),
                ).fetchall()
            if not rows:
                return
            for job_id, payload in rows:
                yield JobRecord.from_dict(json.loads(payload))
            last = rows[-1][0]

    def queued(self) -> list[JobRecord]:
        """Queued records only, oldest first — one indexed query."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM jobs WHERE status = ? "
                "ORDER BY submitted_at, job_id",
                (QUEUED,),
            ).fetchall()
        return [JobRecord.from_dict(json.loads(row[0])) for row in rows]

    def mark_running(self, record: JobRecord) -> None:
        """Transition to ``running`` and persist."""
        record.status = RUNNING
        record.started_at = time.time()
        self.save(record)

    def mark_completed(self, record: JobRecord, result: JobResult) -> None:
        """Transition to ``completed`` with its result and persist."""
        record.status = COMPLETED
        record.finished_at = time.time()
        record.result = result
        record.error = ""
        self.save(record)

    def mark_failed(self, record: JobRecord, error: str) -> None:
        """Transition to ``failed`` — unless the job completed meanwhile.

        Same stale-failure protection as the file store, but the check
        and the write share one transaction, so a completion landing
        between them is impossible rather than merely unlikely.
        """
        with self._lock, self._tx():
            current = self._get_locked(record.job_id)
            if current is not None and current.status == COMPLETED:
                record.status = current.status
                record.finished_at = current.finished_at
                record.result = current.result
                record.error = current.error
                return
            record.status = FAILED
            record.finished_at = time.time()
            record.error = error
            self._save_locked(record)

    def requeue(self, record: JobRecord) -> JobRecord:
        """Put a ``running`` or ``failed`` record back on the queue.

        Transactional version of :meth:`JobStore.requeue`: the
        completed-record guard, the queued rewrite and the claim drop
        commit together or not at all.
        """
        with self._lock, self._tx():
            current = self._get_locked(record.job_id) or record
            if COMPLETED in (record.status, current.status):
                raise WorkerError(
                    f"refusing to requeue completed job {record.job_id!r}"
                )
            self._requeue_locked(current)
            self._conn.execute("DELETE FROM claims WHERE job_id = ?",
                               (record.job_id,))
            return current

    # -- worker claims -------------------------------------------------------

    def claim(self, job_id: str, owner: str = "") -> bool:
        """Atomically claim ``job_id`` for ``owner``.

        The check-and-insert is one ``BEGIN IMMEDIATE`` transaction:
        exactly one of N concurrent claimers — threads or processes —
        inserts the row, and a claimer that dies mid-transaction rolls
        back to "unclaimed", never to a half-claim.  Same-owner
        re-claims are idempotent for named owners, exactly like the
        file store (retried network claims); anonymous claims stay
        strictly exclusive.  Winning pulls the fleet's checkpoint blob
        into the local file spool so a resumed job continues from the
        latest saved state.
        """
        now = time.time()
        with self._lock, self._tx():
            row = self._conn.execute(
                "SELECT owner FROM claims WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is not None:
                won = bool(owner) and row[0] == owner
            else:
                self._conn.execute(
                    "INSERT INTO claims (job_id, owner, pid, claimed_at, last_seen) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (job_id, owner, os.getpid(), now, now),
                )
                won = True
        if won:
            self._pull_checkpoint(job_id)
        return won

    def claim_batch(self, owner: str = "", limit: int = 0) -> list[JobRecord]:
        """Claim up to ``limit`` queued, unclaimed records in one transaction.

        One indexed query selects the oldest claimable records and the
        claim rows land in the same transaction — there is no window
        for another worker to slip in between "saw it queued" and
        "claimed it", so no re-read/release dance is needed.
        """
        now = time.time()
        query = (
            "SELECT job_id, payload FROM jobs WHERE status = ? "
            "AND job_id NOT IN (SELECT job_id FROM claims) "
            "ORDER BY submitted_at, job_id"
        )
        params: list[object] = [QUEUED]
        if limit:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock, self._tx():
            rows = self._conn.execute(query, params).fetchall()
            for job_id, _ in rows:
                self._conn.execute(
                    "INSERT INTO claims (job_id, owner, pid, claimed_at, last_seen) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (job_id, owner, os.getpid(), now, now),
                )
        records = [JobRecord.from_dict(json.loads(payload)) for _, payload in rows]
        for record in records:
            self._pull_checkpoint(record.job_id)
        return records

    def release(self, job_id: str, owner: str | None = None) -> bool:
        """Drop ``job_id``'s claim; owner-checked when ``owner`` is given.

        An owner releasing its own claim first syncs its final
        checkpoint file into the table — the last chance before another
        worker may take the job over.  A torn claim (owner unreadable)
        never matches an owner check, mirroring the file store.
        """
        if owner is not None:
            self._push_checkpoint_if_changed(job_id, owner=owner)
        with self._lock, self._tx():
            if owner is None:
                cursor = self._conn.execute(
                    "DELETE FROM claims WHERE job_id = ?", (job_id,)
                )
            else:
                cursor = self._conn.execute(
                    "DELETE FROM claims WHERE job_id = ? "
                    "AND owner IS NOT NULL AND owner = ?",
                    (job_id, owner),
                )
            return cursor.rowcount > 0

    def heartbeat(self, job_id: str, owner: str = "") -> bool:
        """Refresh claim liveness; piggybacks checkpoint table sync.

        One UPDATE carries the whole owner-check contract: a torn claim
        (NULL owner) refuses every beat, an anonymous claim accepts any
        beater, and a named claim accepts its owner (or an ownerless
        beat).  A beat that lands also syncs a changed checkpoint file
        into the table, so the database trails a live worker's progress
        by at most one heartbeat interval.
        """
        with self._lock, self._tx():
            cursor = self._conn.execute(
                "UPDATE claims SET last_seen = ? WHERE job_id = ? "
                "AND owner IS NOT NULL AND (? = '' OR owner = '' OR owner = ?)",
                (time.time(), job_id, owner, owner),
            )
            alive = cursor.rowcount > 0
        if alive:
            self._push_checkpoint_if_changed(job_id, owner=owner or None)
        return alive

    def claim_info(self, job_id: str) -> dict | None:
        """The claim payload (owner, pid, claimed_at, last_seen), or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT owner, pid, claimed_at, last_seen FROM claims "
                "WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        if row[0] is None:
            # Torn claim: held, metadata unreadable — like the file store.
            return {}
        return {"owner": row[0], "pid": row[1], "claimed_at": row[2],
                "last_seen": row[3]}

    def claimed_job_ids(self) -> list[str]:
        """Every job id currently claimed by some worker."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id FROM claims ORDER BY job_id"
            ).fetchall()
        return [row[0] for row in rows]

    def claims(self) -> dict[str, dict]:
        """Every live claim's payload keyed by job id, in one query.

        Payloads gain ``age_seconds`` against this store's clock,
        exactly like the file store's bulk view.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, owner, pid, claimed_at, last_seen FROM claims "
                "ORDER BY job_id"
            ).fetchall()
        payloads: dict[str, dict] = {}
        for job_id, owner, pid, claimed_at, last_seen in rows:
            if owner is None:
                payloads[job_id] = {}
                continue
            info: dict = {"owner": owner, "pid": pid, "claimed_at": claimed_at,
                          "last_seen": last_seen}
            seen = float(last_seen or claimed_at or 0.0)
            if seen:
                info["age_seconds"] = max(0.0, now - seen)
            payloads[job_id] = info
        return payloads

    def recover_stale_claims(self, max_age_seconds: float = 3600.0) -> list[str]:
        """Release claims whose worker is evidently gone — one transaction.

        Indexed queries find the three recoverable shapes (claims on
        finished or missing jobs, silent claims on unfinished jobs,
        records stranded ``running`` with no claim); the requeues and
        claim drops commit atomically, so a crashed recovery pass
        changes nothing.  A claim refreshed by a heartbeat after this
        transaction began cannot be stolen: IMMEDIATE transactions
        serialize against the beat's own write transaction.
        """
        recovered: list[str] = []
        now = time.time()
        with self._lock, self._tx():
            rows = self._conn.execute(
                "SELECT c.job_id, c.claimed_at, c.last_seen, j.status "
                "FROM claims c LEFT JOIN jobs j USING (job_id) "
                "ORDER BY c.job_id"
            ).fetchall()
            for job_id, claimed_at, last_seen, status in rows:
                if status is None or status in (COMPLETED, FAILED):
                    self._conn.execute("DELETE FROM claims WHERE job_id = ?",
                                       (job_id,))
                    recovered.append(job_id)
                    continue
                seen = float(last_seen or claimed_at or 0.0)
                if now - seen > max_age_seconds:
                    current = self._get_locked(job_id)
                    if current is not None and current.status not in (
                        COMPLETED, FAILED
                    ):
                        self._requeue_locked(current)
                    self._conn.execute("DELETE FROM claims WHERE job_id = ?",
                                       (job_id,))
                    recovered.append(job_id)
            stranded = self._conn.execute(
                "SELECT job_id, payload FROM jobs WHERE status = ? "
                "AND job_id NOT IN (SELECT job_id FROM claims) "
                "ORDER BY submitted_at, job_id",
                (RUNNING,),
            ).fetchall()
            for job_id, payload in stranded:
                if job_id in recovered:
                    continue
                self._requeue_locked(JobRecord.from_dict(json.loads(payload)))
                recovered.append(job_id)
        return recovered

    # -- checkpoints ---------------------------------------------------------

    def get_checkpoint(self, job_id: str) -> dict | None:
        """The durable checkpoint blob — table first, file fallback.

        The table is the fleet's copy; the file fallback covers jobs
        checkpointed by a purely local runner before any claim/release
        cycle synced them in.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM checkpoints WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is not None:
            try:
                payload = json.loads(row[0])
            except json.JSONDecodeError:
                payload = None
            if isinstance(payload, dict):
                return payload
        try:
            payload = json.loads(
                self.checkpoint_path(job_id).read_text(encoding="utf-8")
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put_checkpoint(self, job_id: str, payload: dict,
                       owner: str | None = None) -> None:
        """Store a checkpoint blob in the table (claim-gated with ``owner``)
        and mirror it to the runner-facing file."""
        if not isinstance(payload, dict):
            raise ServiceError("checkpoint payload must be a JSON object")
        with self._lock, self._tx():
            if owner is not None:
                row = self._conn.execute(
                    "SELECT owner FROM claims WHERE job_id = ?", (job_id,)
                ).fetchone()
                if row is None or row[0] != owner:
                    raise WorkerError(
                        f"checkpoint upload rejected: {job_id!r} is not "
                        f"claimed by {owner!r}"
                    )
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints (job_id, payload, updated_at) "
                "VALUES (?, ?, ?)",
                (job_id, json.dumps(payload), time.time()),
            )
        path = self.checkpoint_path(job_id)
        _atomic_write_json(path, payload)
        self._synced_mtimes[job_id] = path.stat().st_mtime

    def _pull_checkpoint(self, job_id: str) -> None:
        """Table blob -> local file, so the runner resumes fleet state."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM checkpoints WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return
        try:
            payload = json.loads(row[0])
        except json.JSONDecodeError:
            return
        if not isinstance(payload, dict):
            return
        path = self.checkpoint_path(job_id)
        _atomic_write_json(path, payload)
        self._synced_mtimes[job_id] = path.stat().st_mtime

    def _push_checkpoint_if_changed(self, job_id: str,
                                    owner: str | None = None) -> None:
        """Local file -> table, only when the file changed since last sync.

        Table-only on purpose: the file is the runner's working copy and
        must not be rewritten here — an atomic-rename race could replace
        a checkpoint the runner wrote *after* this read with the older
        payload.  The owner gate refuses silently (the new owner's
        state wins), like the remote client's upload does.
        """
        path = self.checkpoint_path(job_id)
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return
        if self._synced_mtimes.get(job_id) == mtime:
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # mid-write or gone; the next beat will retry
        if not isinstance(payload, dict):
            return
        with self._lock, self._tx():
            if owner is not None:
                row = self._conn.execute(
                    "SELECT owner FROM claims WHERE job_id = ?", (job_id,)
                ).fetchone()
                if row is None or row[0] != owner:
                    return
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints (job_id, payload, updated_at) "
                "VALUES (?, ?, ?)",
                (job_id, json.dumps(payload), time.time()),
            )
        self._synced_mtimes[job_id] = mtime

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the database handle (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SqliteJobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SqliteJobStore({str(self.path)!r})"
