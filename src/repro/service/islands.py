"""Island-model GA: the whole fleet accelerating a *single* search.

One serial GA loop per job means ten workers finish ten searches in the
time of one — but never make *one* search faster.  This module splits a
search into ``P`` cooperating :class:`~repro.service.job.ProtectionJob`
members (plus one final Pareto-merge job), each evolving its own
population on its own RNG stream and exchanging its top-``k`` elites
every ``M`` generations through the job store.

**Determinism is the design center.**  Three rules make a seeded island
run bit-identical regardless of worker count, claim interleaving, or
which island happens to run ahead:

1. *Disjoint streams*: island ``i`` draws from
   ``np.random.SeedSequence(seed).spawn(P)[i]`` — the spawn tree
   guarantees independence and reproducibility.
2. *Generation-stamped buffers*: migrants are published under their
   exchange round (``generation // M``), and an island entering round
   ``r`` consumes exactly the round-``r`` payloads of its topology
   neighbours — never "whatever is newest".
3. *Pure exchange*: publishing and injecting draw nothing from the run
   RNG; injection is a deterministic replacement plan (worst slots
   first, improvements only, senders in index order).

An island whose inbound migrants have not been published yet does not
spin inside its claim: it *parks* — persists a full engine checkpoint
(plus island state) on the store's checkpoint-blob path, requeues its
own record behind the rest of the queue, and releases the claim.  A
single worker therefore round-robins all ``P`` islands segment by
segment with no deadlock; a fleet runs them genuinely in parallel and
parks only when it outruns a peer.  Whether an injection happened live
or through a park/resume cycle is unobservable in the results: the
checkpoint is captured *before* injection, and re-injecting into the
restored checkpoint replays the identical plan.

If a peer dies (its record ``failed``) or stays silent past the wait
timeout, the island **degrades to solo continuation** — sticky, counted
in ``repro_island_degraded_total``, announced by an ``island_degraded``
event — rather than blocking the fleet forever.  It keeps *publishing*
so downstream islands are unaffected.

Migrant payloads ride the checkpoint-blob path as
``<job_id>.migrants`` (:data:`MIGRANTS_BLOB_SUFFIX`), shard-co-located
with the member's record via the suffix-stripping placement and carried
by ``repro migrate``.  **The payload format and exchange cadence are a
stability contract** (see ROADMAP): ``{"version", "group", "island",
"topology", "rounds": {"<r>": {"generation", "migrants": [...]}}}``
with individuals encoded exactly like engine checkpoints.

Islands are pure clients of :data:`~repro.service.store.STORE_PROTOCOL`
— no store grew a new method for them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import weakref
from dataclasses import replace

import numpy as np

from repro.core.engine import EngineCheckpoint, EvolutionaryProtector
from repro.core.individual import Individual
from repro.core.pareto import non_dominated_sort
from repro.datasets.registry import load_dataset, protected_attributes
from repro.exceptions import ServiceError
from repro.experiments.population_builder import build_initial_population
from repro.experiments.runner import drop_best
from repro.metrics.evaluation import ProtectionEvaluator
from repro.metrics.score import score_function_by_name
from repro.obs import emit_event, get_registry, timeline_from_history, trace
from repro.service.backends import create_backend
from repro.service.cache import EvaluationCache
from repro.service.checkpoint import (
    FORMAT_VERSION,
    _individual_from_dict,
    _individual_to_dict,
    checkpoint_from_dict,
    checkpoint_to_dict,
)
from repro.service.job import JobResult, ProtectionJob
from repro.service.store import (
    COMPLETED,
    FAILED,
    QUEUED,
    JobRecord,
    store_from_spec,
)

#: Blob-id suffix of an island's durable migrant buffer on the
#: checkpoint path.  Like ``.trace`` blobs, the sharded store strips it
#: for placement so the buffer lives on the shard that owns the record.
MIGRANTS_BLOB_SUFFIX = ".migrants"

#: Wire version of the migrant payload (a stability contract — bump it
#: like a store wire-protocol change, never silently).
MIGRANTS_BLOB_VERSION = 1

#: The fixed, seeded migration topologies (inbound-neighbour maps).
TOPOLOGIES = ("ring", "star", "full")

#: Seconds an island waits (across park/resume cycles) for a silent
#: peer's migrants before degrading to solo continuation.
DEFAULT_WAIT_TIMEOUT = 600.0

#: Seconds an island polls in-claim for inbound migrants before
#: parking.  Small: with one worker the peers *cannot* publish while we
#: hold the only execution slot, so long grace is pure waste.
DEFAULT_GRACE = 0.25


def _wait_timeout() -> float:
    raw = os.environ.get("REPRO_ISLAND_WAIT_TIMEOUT", "")
    try:
        return float(raw) if raw else DEFAULT_WAIT_TIMEOUT
    except ValueError:
        return DEFAULT_WAIT_TIMEOUT


def _grace_seconds() -> float:
    raw = os.environ.get("REPRO_ISLAND_GRACE", "")
    try:
        return float(raw) if raw else DEFAULT_GRACE
    except ValueError:
        return DEFAULT_GRACE


class IslandParked(ServiceError):
    """An island job yielded its claim at an unfulfilled exchange round.

    Not a failure: the job's full engine state is durably checkpointed
    and its record is requeued (behind the rest of the queue, so
    sibling islands get the worker first).  The next claim resumes the
    segment — :meth:`to_dict` is what rides back through the settled
    runner outcome so the worker can requeue instead of marking failed.
    """

    def __init__(self, job_id: str, round_index: int, generation: int,
                 waiting_on: tuple[str, ...] = ()) -> None:
        self.job_id = job_id
        self.round_index = int(round_index)
        self.generation = int(generation)
        self.waiting_on = tuple(waiting_on)
        peers = ", ".join(self.waiting_on) or "peers"
        super().__init__(
            f"island job {job_id!r} parked at exchange round "
            f"{self.round_index} (generation {self.generation}) "
            f"waiting on {peers}"
        )

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "round": self.round_index,
            "generation": self.generation,
            "waiting_on": list(self.waiting_on),
        }


# -- identity, topology, planning -------------------------------------------


def migrants_blob_id(job_id: str) -> str:
    """The checkpoint-path blob id holding ``job_id``'s migrant buffer."""
    return f"{job_id}{MIGRANTS_BLOB_SUFFIX}"


def island_group_id(job: ProtectionJob) -> str:
    """Stable group identity shared by every member of one island search.

    Every island-varying *identity* field except ``island_index`` (and
    the pure execution fields) participates, so all ``P`` members plus
    the merge job hash to one group and nothing else does.
    """
    excluded = set(ProtectionJob._EXECUTION_FIELDS) | {"island_index"}
    payload = {
        key: value
        for key, value in job.to_dict().items()
        if key not in excluded
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return "ig-" + hashlib.sha256(blob).hexdigest()[:12]


def island_topology(name: str, islands: int) -> dict[int, tuple[int, ...]]:
    """The fixed inbound-neighbour map ``island -> senders`` for ``name``.

    - ``ring``: island ``i`` receives from ``(i - 1) % P``;
    - ``star``: island 0 (the hub) receives from every spoke, each spoke
      receives from the hub;
    - ``full``: everyone receives from everyone else.

    Every island *publishes* every round regardless of topology, so an
    unfulfilled inbound edge always resolves once the sender reaches
    the round — there is no topology with a starvation cycle.
    """
    if islands < 2:
        raise ServiceError(f"a topology needs islands >= 2, got {islands}")
    if name == "ring":
        return {i: ((i - 1) % islands,) for i in range(islands)}
    if name == "star":
        inbound: dict[int, tuple[int, ...]] = {0: tuple(range(1, islands))}
        for i in range(1, islands):
            inbound[i] = (0,)
        return inbound
    if name == "full":
        return {
            i: tuple(j for j in range(islands) if j != i)
            for i in range(islands)
        }
    raise ServiceError(
        f"unknown topology {name!r}; choose from {', '.join(TOPOLOGIES)}"
    )


def plan_island_jobs(
    base: ProtectionJob,
    islands: int,
    migrate_every: int = 25,
    migrants: int = 2,
    topology: str = "ring",
) -> list[ProtectionJob]:
    """The job group for one island search: ``P`` members + the merge.

    ``islands == 1`` returns ``[base]`` untouched — the serial engine,
    bit-identical to a plain submission (the equivalence the regression
    tests pin).  Member ``i`` carries ``island_index=i``; the merge job
    carries ``island_index == islands`` and consolidates the finished
    members into one Pareto front.
    """
    if islands < 1:
        raise ServiceError(f"islands must be >= 1, got {islands}")
    if islands == 1:
        return [base]
    if migrate_every < 1:
        raise ServiceError(f"migrate_every must be >= 1, got {migrate_every}")
    if migrants < 1:
        raise ServiceError(f"migrants must be >= 1, got {migrants}")
    island_topology(topology, islands)  # validates the name
    group = [
        replace(
            base,
            islands=islands,
            island_index=i,
            migrate_every=int(migrate_every),
            migrants=int(migrants),
            topology=topology,
        )
        for i in range(islands + 1)  # members 0..P-1, merge at P
    ]
    return group


def member_job_ids(job: ProtectionJob) -> list[str]:
    """The job ids of the ``P`` member islands of ``job``'s group."""
    return [replace(job, island_index=i).job_id for i in range(job.islands)]


# -- live-store registry ------------------------------------------------------

# Island executors need the *job store* (records + checkpoint blobs),
# which plain run payloads never carried.  In-process backends resolve
# the exact live store object through this weak registry — critical for
# programmatically-built stores (a test's sharded store over tmp dirs)
# whose spec may not be independently reopenable.  Process backends and
# any registry miss fall back to reopening from the spec.
_LIVE_STORES: "weakref.WeakValueDictionary[str, object]" = (
    weakref.WeakValueDictionary()
)
_STORE_SEQ = iter(range(1, 1 << 62))


def register_store(store: object) -> str:
    """Register a live store; returns the token for ``resolve_store``."""
    token = f"st-{next(_STORE_SEQ)}-{id(store):x}"
    _LIVE_STORES[token] = store
    return token


def store_spec_of(store: object) -> tuple[str, str]:
    """Best-effort ``(spec, token)`` that reopens ``store`` elsewhere."""
    spec = getattr(store, "spec", "")
    if spec:
        return str(spec), ""
    base = getattr(store, "base_url", "")
    if base:
        return str(base), str(getattr(store, "token", "") or "")
    return "", ""


def resolve_store(payload: dict):
    """The job store an island payload points at.

    Prefers the live in-process object (``store_ref``), falls back to
    reopening from ``store_spec``.  Raising here rather than returning
    ``None`` turns a mis-wired submission into a clear failed job.
    """
    ref = str(payload.get("store_ref") or "")
    if ref:
        store = _LIVE_STORES.get(ref)
        if store is not None:
            return store
    spec = str(payload.get("store_spec") or "")
    if spec:
        return store_from_spec(spec, token=str(payload.get("store_token") or ""))
    raise ServiceError(
        "island job payload carries no usable job-store reference "
        "(store_ref dead and store_spec empty) — island jobs must run "
        "through a store-connected worker or runner"
    )


# -- migrant buffers ----------------------------------------------------------


def select_migrants(individuals: list[Individual], k: int) -> list[Individual]:
    """The ``k`` elites (lowest score first, stable on ties)."""
    if k <= 0 or not individuals:
        return []
    scores = np.array([float(ind.score) for ind in individuals])
    order = np.argsort(scores, kind="stable")
    return [individuals[int(i)] for i in order[: min(k, len(individuals))]]


def publish_migrants(
    store,
    job: ProtectionJob,
    round_index: int,
    generation: int,
    individuals: list[Individual],
) -> bool:
    """Merge this island's round-``round_index`` elites into its buffer.

    Read-modify-write like trace blobs — but an already-published round
    is kept, not overwritten: a re-claimed island recomputes the exact
    same elites (determinism), so first-write-wins is both safe and
    idempotent.  Returns whether this call added the round.
    """
    blob_id = migrants_blob_id(job.job_id)
    group = island_group_id(job)
    payload = store.get_checkpoint(blob_id)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != MIGRANTS_BLOB_VERSION
        or payload.get("group") != group
    ):
        payload = {
            "version": MIGRANTS_BLOB_VERSION,
            "group": group,
            "island": job.island_index,
            "topology": job.topology,
            "rounds": {},
        }
    rounds = payload.setdefault("rounds", {})
    key = str(int(round_index))
    if key in rounds:
        return False
    elites = select_migrants(individuals, job.migrants)
    rounds[key] = {
        "generation": int(generation),
        "migrants": [_individual_to_dict(ind) for ind in elites],
    }
    store.put_checkpoint(blob_id, payload)
    return True


def read_round_migrants(
    store,
    sender_job_id: str,
    group: str,
    round_index: int,
    reference,
) -> list[Individual] | None:
    """The sender's round-``round_index`` migrants, or ``None`` if unpublished."""
    payload = store.get_checkpoint(migrants_blob_id(sender_job_id))
    if (
        not isinstance(payload, dict)
        or payload.get("version") != MIGRANTS_BLOB_VERSION
        or payload.get("group") != group
    ):
        return None
    entry = (payload.get("rounds") or {}).get(str(int(round_index)))
    if not isinstance(entry, dict):
        return None
    return [
        _individual_from_dict(item, reference)
        for item in entry.get("migrants", [])
    ]


def plan_injection(
    individuals: list[Individual], migrants: list[Individual]
) -> list[tuple[int, Individual]]:
    """Deterministic elite injection: ``(slot, replacement)`` pairs.

    Migrants (in their given order: senders ascending, elite rank
    ascending) each target the worst not-yet-replaced slot and land
    only when strictly better than it — slots are ordered worst-first,
    so a migrant the worst remaining slot beats would lose everywhere.
    Pure function of its inputs; never touches an RNG.
    """
    if not migrants:
        return []
    scores = np.array([float(ind.score) for ind in individuals])
    worst_first = [int(i) for i in np.argsort(scores, kind="stable")[::-1]]
    taken: set[int] = set()
    plan: list[tuple[int, Individual]] = []
    for migrant in migrants:
        slot = next((s for s in worst_first if s not in taken), None)
        if slot is None:
            break
        if float(migrant.score) < float(scores[slot]):
            plan.append((slot, replace(migrant, origin="migrant")))
            taken.add(slot)
    return plan


# -- the member executor ------------------------------------------------------


class _ParkSignal(Exception):
    """Internal: unwinds the engine loop out to the executor for a park."""

    def __init__(self, round_index: int, generation: int,
                 waiting_on: tuple[str, ...]) -> None:
        self.round_index = round_index
        self.generation = generation
        self.waiting_on = waiting_on
        super().__init__(f"park at round {round_index}")


def _state_payload(state: dict) -> dict:
    return {
        "pending_round": int(state.get("pending_round") or 0),
        "wait_since": float(state.get("wait_since") or 0.0),
        "degraded": bool(state.get("degraded")),
        "rounds": int(state.get("rounds") or 0),
        "injected": int(state.get("injected") or 0),
    }


def _fresh_state() -> dict:
    return {"pending_round": 0, "wait_since": 0.0, "degraded": False,
            "rounds": 0, "injected": 0}


def _gather_inbound(
    store, job: ProtectionJob, senders: list[tuple[int, str]],
    group: str, round_index: int, reference,
) -> tuple[list[Individual], list[str]]:
    """(migrants in sender order, sender job ids still unpublished)."""
    inbound: list[Individual] = []
    missing: list[str] = []
    for _, sender_id in senders:
        migrants = read_round_migrants(store, sender_id, group, round_index,
                                       reference)
        if migrants is None:
            missing.append(sender_id)
        else:
            inbound.extend(migrants)
    return inbound, missing


def _failed_senders(store, sender_ids: list[str]) -> list[str]:
    failed = []
    for sender_id in sender_ids:
        record = store.get(sender_id, missing_ok=True)
        if record is not None and record.status == FAILED:
            failed.append(sender_id)
    return failed


def _persist_island_checkpoint(
    store, job: ProtectionJob, checkpoint: EngineCheckpoint, state: dict
) -> None:
    payload = checkpoint_to_dict(checkpoint, fingerprint=job.fingerprint())
    payload["island_state"] = _state_payload(state)
    store.put_checkpoint(job.job_id, payload)


def _degrade(job: ProtectionJob, state: dict, reason: str,
             waiting_on: list[str], round_index: int) -> None:
    """Sticky solo continuation: stop consuming, keep publishing."""
    state["degraded"] = True
    state["wait_since"] = 0.0
    state["pending_round"] = 0
    registry = get_registry()
    if registry.enabled:
        registry.inc("repro_island_degraded_total",
                     island=str(job.island_index))
        emit_event("island_degraded", job_id=job.job_id,
                   island=job.island_index, round=round_index,
                   reason=reason, waiting_on=list(waiting_on))


def _complete_exchange(
    job: ProtectionJob,
    state: dict,
    round_index: int,
    received: list[Individual],
    individuals: list[Individual],
    apply_replacement,
    waited_seconds: float,
) -> int:
    """Inject ``received`` via ``apply_replacement(slot, individual)``."""
    plan = plan_injection(individuals, received)
    for slot, individual in plan:
        apply_replacement(slot, individual)
    state["rounds"] += 1
    state["injected"] += len(plan)
    state["pending_round"] = 0
    state["wait_since"] = 0.0
    registry = get_registry()
    if registry.enabled:
        registry.inc("repro_island_migrations_total", len(plan),
                     island=str(job.island_index))
        registry.observe("repro_island_migrant_wait_seconds",
                         max(0.0, waited_seconds))
        emit_event("island_exchange", job_id=job.job_id,
                   island=job.island_index, round=round_index,
                   received=len(received), injected=len(plan),
                   wait_seconds=round(max(0.0, waited_seconds), 3))
    return len(plan)


def _execute_member_job(job: ProtectionJob, payload: dict) -> JobResult:
    store = resolve_store(payload)
    original = load_dataset(job.dataset)
    attributes = protected_attributes(job.dataset)
    group = island_group_id(job)
    fingerprint = job.fingerprint()
    inbound_map = island_topology(job.topology, job.islands)
    senders = [
        (s, replace(job, island_index=s).job_id)
        for s in sorted(inbound_map[job.island_index])
    ]
    sender_ids = [sender_id for _, sender_id in senders]

    cache_path = payload.get("cache_path") or ""
    cache = (
        EvaluationCache(cache_path,
                        max_entries=payload.get("cache_max_entries") or None)
        if cache_path
        else None
    )
    eval_workers = job.eval_workers or int(payload.get("eval_workers") or 0)
    executor = None
    if eval_workers >= 2:
        backend_name = (
            job.eval_backend if job.eval_workers
            else str(payload.get("eval_backend") or "thread")
        )
        executor = create_backend(backend_name, max_workers=eval_workers)
    evaluator = ProtectionEvaluator(
        original,
        attributes,
        score_function=score_function_by_name(job.score),
        persistent_cache=cache,
        executor=executor,
    )
    # Rule 1: disjoint, reproducible per-island streams off the run seed.
    stream = np.random.SeedSequence(job.seed).spawn(job.islands)[job.island_index]
    engine = EvolutionaryProtector(
        evaluator,
        mutation_probability=job.mutation_probability,
        leader_fraction=job.leader_fraction,
        selection_strategy=job.selection_strategy,
        seed=np.random.default_rng(stream),
    )

    state = _fresh_state()
    grace = _grace_seconds()
    timeout = _wait_timeout()

    def exchange(population, generation, capture) -> None:
        # The engine fires on every migrate_every boundary; the final
        # generation has nothing downstream to inject into, so skip it.
        if generation >= job.generations:
            return
        round_index = generation // job.migrate_every
        with trace.span("repro.island.exchange", island=job.island_index,
                        round=round_index, generation=generation):
            members = list(population)
            publish_migrants(store, job, round_index, generation, members)
            if state["degraded"]:
                _persist_island_checkpoint(store, job, capture(), state)
                return
            wait_started = time.monotonic()
            while True:
                received, missing = _gather_inbound(
                    store, job, senders, group, round_index, original)
                if not missing:
                    break
                if time.monotonic() - wait_started >= grace:
                    break
                time.sleep(min(0.05, grace))
            if missing:
                failed = _failed_senders(store, missing)
                if failed:
                    _degrade(job, state, "sender-failed", failed, round_index)
                    _persist_island_checkpoint(store, job, capture(), state)
                    return
                wait_since = float(state.get("wait_since") or 0.0)
                if wait_since and time.time() - wait_since > timeout:
                    _degrade(job, state, "timeout", missing, round_index)
                    _persist_island_checkpoint(store, job, capture(), state)
                    return
                if not wait_since:
                    state["wait_since"] = time.time()
                state["pending_round"] = round_index
                # Pre-injection checkpoint: resume re-runs this very
                # exchange against the same stamped buffers, so the
                # parked path replays the live path bit for bit.
                _persist_island_checkpoint(store, job, capture(), state)
                raise _ParkSignal(round_index, generation, tuple(missing))
            wait_since = float(state.get("wait_since") or 0.0)
            waited = (time.time() - wait_since) if wait_since else (
                time.monotonic() - wait_started)
            _complete_exchange(job, state, round_index, received,
                               list(population), population.replace, waited)
            _persist_island_checkpoint(store, job, capture(), state)

    start = time.perf_counter()
    try:
        blob = store.get_checkpoint(job.job_id)
        resumable = (
            isinstance(blob, dict)
            and blob.get("version") == FORMAT_VERSION
            and blob.get("fingerprint") == fingerprint
        )
        with trace.span("repro.run", dataset=job.dataset, seed=job.seed,
                        island=job.island_index, resume=resumable or None):
            if resumable:
                checkpoint = checkpoint_from_dict(
                    blob, original, expected_fingerprint=fingerprint)
                state.update(_state_payload(blob.get("island_state") or {}))
                pending = int(state.get("pending_round") or 0)
                if pending and not state["degraded"]:
                    checkpoint = _settle_pending_round(
                        store, job, state, checkpoint, senders, group,
                        original, grace, timeout)
                outcome = engine.resume(
                    checkpoint,
                    stopping=job.generations,
                    migration_every=job.migrate_every,
                    on_migration=exchange,
                )
            else:
                protections = build_initial_population(
                    original, dataset_name=job.dataset,
                    seed=job.population_seed)
                individuals = engine.evaluate_initial(protections)
                kept, _ = drop_best(individuals, job.drop_best_fraction)
                outcome = engine.run(
                    kept,
                    stopping=job.generations,
                    migration_every=job.migrate_every,
                    on_migration=exchange,
                )
    except _ParkSignal as signal:
        raise IslandParked(job.job_id, signal.round_index, signal.generation,
                           signal.waiting_on) from None
    finally:
        if cache is not None:
            cache.close()

    best = outcome.best
    _, _, percent = outcome.history.improvement("mean")
    return JobResult(
        job_id=job.job_id,
        dataset=job.dataset,
        seed=job.seed,
        generations=len(outcome.history),
        best_score=float(best.score),
        best_information_loss=float(best.information_loss),
        best_disclosure_risk=float(best.disclosure_risk),
        final_scores=tuple(float(ind.score) for ind in outcome.population),
        mean_improvement_percent=float(percent),
        fresh_evaluations=evaluator.evaluations,
        memo_hits=evaluator.cache_hits,
        persistent_hits=evaluator.persistent_hits,
        wall_seconds=time.perf_counter() - start,
        extras={
            "evaluator_stats": evaluator.stats(),
            "timeline": timeline_from_history(outcome.history.records),
            "island": {
                "group": group,
                "role": "member",
                "index": job.island_index,
                "islands": job.islands,
                "topology": job.topology,
                "migrate_every": job.migrate_every,
                "migrants": job.migrants,
                "rounds": state["rounds"],
                "injected": state["injected"],
                "degraded": state["degraded"],
                # The final (IL, DR, score) cloud: what the merge job's
                # Pareto consolidation runs over.
                "population": [
                    [float(ind.information_loss),
                     float(ind.disclosure_risk),
                     float(ind.score)]
                    for ind in outcome.population
                ],
            },
        },
    )


def _settle_pending_round(
    store,
    job: ProtectionJob,
    state: dict,
    checkpoint: EngineCheckpoint,
    senders: list[tuple[int, str]],
    group: str,
    original,
    grace: float,
    timeout: float,
) -> EngineCheckpoint:
    """Finish the exchange a previous claim parked on, pre-resume.

    The checkpoint holds the pre-injection population at the exchange
    boundary.  If the round's inbound migrants are now published, the
    injection plan is recomputed (identical — pure function of stamped
    buffers) against the checkpoint and the run resumes as if it never
    parked.  Still unfulfilled: re-park, or degrade on failed/silent
    peers past the timeout.
    """
    round_index = int(state["pending_round"])
    generation = checkpoint.generation
    wait_started = time.monotonic()
    while True:
        received, missing = _gather_inbound(
            store, job, senders, group, round_index, original)
        if not missing:
            break
        if time.monotonic() - wait_started >= grace:
            break
        time.sleep(min(0.05, grace))
    if missing:
        failed = _failed_senders(store, missing)
        if failed:
            _degrade(job, state, "sender-failed", failed, round_index)
            _persist_island_checkpoint(store, job, checkpoint, state)
            return checkpoint
        wait_since = float(state.get("wait_since") or 0.0)
        if wait_since and time.time() - wait_since > timeout:
            _degrade(job, state, "timeout", missing, round_index)
            _persist_island_checkpoint(store, job, checkpoint, state)
            return checkpoint
        if not wait_since:
            state["wait_since"] = time.time()
            _persist_island_checkpoint(store, job, checkpoint, state)
        raise _ParkSignal(round_index, generation, tuple(missing))
    individuals = list(checkpoint.individuals)
    wait_since = float(state.get("wait_since") or 0.0)
    waited = (time.time() - wait_since) if wait_since else (
        time.monotonic() - wait_started)

    def apply(slot: int, individual: Individual) -> None:
        individuals[slot] = individual

    _complete_exchange(job, state, round_index, received, list(individuals),
                       apply, waited)
    settled = EngineCheckpoint(
        generation=checkpoint.generation,
        initial=checkpoint.initial,
        individuals=individuals,
        records=checkpoint.records,
        rng_state=checkpoint.rng_state,
    )
    _persist_island_checkpoint(store, job, settled, state)
    return settled


# -- the merge executor -------------------------------------------------------


def front_dominates_or_matches(
    candidate: list[tuple[float, float]],
    baseline: list[tuple[float, float]],
) -> bool:
    """Every baseline (IL, DR) point is matched or dominated by ``candidate``."""
    for il, dr in baseline:
        if not any(c_il <= il and c_dr <= dr for c_il, c_dr in candidate):
            return False
    return True


def _execute_merge_job(job: ProtectionJob, payload: dict) -> JobResult:
    store = resolve_store(payload)
    start = time.perf_counter()
    member_ids = member_job_ids(job)
    records: list[JobRecord] = []
    missing: list[str] = []
    failed: list[str] = []
    unfinished: list[str] = []
    for member_id in member_ids:
        record = store.get(member_id, missing_ok=True)
        if record is None:
            missing.append(member_id)
        elif record.status == FAILED:
            failed.append(record.job_id)
        elif record.status != COMPLETED or record.result is None:
            unfinished.append(record.job_id)
        else:
            records.append(record)
    if missing:
        raise ServiceError(
            f"island merge {job.job_id!r}: member jobs never submitted: "
            f"{missing} — submit the whole group (repro submit --islands)"
        )
    if failed:
        raise ServiceError(
            f"island merge {job.job_id!r}: member islands failed: {failed}"
        )
    if unfinished:
        # Not claimable work yet: park behind the members and try again
        # once more of them have finished ("generation" counts them, so
        # the worker's park signature still detects progress).
        raise IslandParked(job.job_id, 0, len(records), tuple(unfinished))

    results = [record.result for record in records]
    points: list[tuple[float, float]] = []
    degraded_members: list[int] = []
    for result in results:
        island = result.extras.get("island") or {}
        population = island.get("population") or []
        if population:
            points.extend(
                (float(entry[0]), float(entry[1])) for entry in population
            )
        else:
            points.append((float(result.best_information_loss),
                           float(result.best_disclosure_risk)))
        if island.get("degraded"):
            degraded_members.append(int(island.get("index", -1)))
    fronts = non_dominated_sort(np.array(points, dtype=np.float64))
    front = sorted({points[int(i)] for i in fronts[0]})

    best = min(results, key=lambda r: float(r.best_score))
    merged = JobResult(
        job_id=job.job_id,
        dataset=job.dataset,
        seed=job.seed,
        generations=max(int(r.generations) for r in results),
        best_score=float(best.best_score),
        best_information_loss=float(best.best_information_loss),
        best_disclosure_risk=float(best.best_disclosure_risk),
        final_scores=tuple(float(r.best_score) for r in results),
        mean_improvement_percent=float(
            np.mean([float(r.mean_improvement_percent) for r in results])
        ),
        fresh_evaluations=sum(int(r.fresh_evaluations) for r in results),
        memo_hits=sum(int(r.memo_hits) for r in results),
        persistent_hits=sum(int(r.persistent_hits) for r in results),
        wall_seconds=time.perf_counter() - start,
        extras={
            "island": {
                "group": island_group_id(job),
                "role": "merge",
                "islands": job.islands,
                "topology": job.topology,
                "migrate_every": job.migrate_every,
                "migrants": job.migrants,
                "members": member_ids,
                "member_best": [float(r.best_score) for r in results],
                "degraded_members": degraded_members,
                "front": [[il, dr] for il, dr in front],
            },
        },
    )
    registry = get_registry()
    if registry.enabled:
        emit_event("island_merge", job_id=job.job_id,
                   group=island_group_id(job), members=len(results),
                   front_size=len(front),
                   best_score=float(best.best_score))
    return merged


# -- dispatch + park plumbing -------------------------------------------------


def execute_island_job(payload: dict) -> JobResult:
    """Run one island-group job (member or merge) from a runner payload.

    The island counterpart of the runner's ``_execute_job``: owns its
    own trace scope (spans ride back in ``extras["trace_spans"]``, or
    as stray spans when the job parks or fails) and raises
    :class:`IslandParked` for the yield path.
    """
    job = ProtectionJob.from_dict(payload["job"])
    if job.islands < 2:
        raise ServiceError(
            f"execute_island_job needs islands >= 2, got {job.islands}"
        )
    if not 0 <= job.island_index <= job.islands:
        raise ServiceError(
            f"island_index must be in [0, {job.islands}], "
            f"got {job.island_index}"
        )
    scope = None
    trace_ctx = payload.get("trace")
    if isinstance(trace_ctx, dict) and trace_ctx.get("id"):
        scope = trace.activate(str(trace_ctx["id"]),
                               str(trace_ctx.get("root") or ""))
    try:
        if job.island_index == job.islands:
            result = _execute_merge_job(job, payload)
        else:
            result = _execute_member_job(job, payload)
    except BaseException:
        if scope is not None:
            trace.deactivate(scope)
        raise
    if scope is not None:
        result.extras["trace_spans"] = trace.deactivate(scope)
    return result


def park_record(store, record: JobRecord, parked: dict) -> None:
    """Requeue a parked island record behind the rest of the queue.

    ``store.requeue`` re-reads disk and would discard the bookkeeping
    below, so the held record is mutated and saved directly — legal
    because the caller still owns the claim (released right after, in
    the worker's ``finally``).  Bumping ``submitted_at`` sends the
    record to the back of the oldest-first queue, so a lone worker
    round-robins the group's islands instead of re-claiming this one.
    """
    record.status = QUEUED
    record.started_at = None
    record.finished_at = None
    record.result = None
    record.error = ""
    record.submitted_at = time.time()
    record.extras["island_parked"] = {
        "round": int(parked.get("round") or 0),
        "generation": int(parked.get("generation") or 0),
        "waiting_on": list(parked.get("waiting_on") or ()),
        "at": record.submitted_at,
    }
    store.save(record)


def parked_signature(parked: dict) -> tuple[int, int]:
    """Progress key of a park: unchanged signature == no forward motion."""
    return (int(parked.get("round") or 0), int(parked.get("generation") or 0))


def drive_group(store, worker, job_ids: list[str],
                poll_seconds: float = 0.2) -> list[JobRecord]:
    """Run an island group to completion with an in-process worker.

    The inline (non-detached) ``repro submit --islands`` path: claim and
    run each group record in turn, treating parks as scheduling — a
    parked island goes back in the queue and its peers get the worker.
    Cooperates with external workers: records claimed or running
    elsewhere are simply awaited.  Sleeps only on full passes with no
    progress (every island parked at an unchanged exchange boundary and
    nothing finished), where the peers' publishes must arrive from
    outside this process.
    """
    signatures: dict[str, tuple[int, int]] = {}
    pending = set(job_ids)
    while pending:
        progress = False
        for job_id in job_ids:
            if job_id not in pending:
                continue
            record = store.get(job_id, missing_ok=True)
            if record is None:
                raise ServiceError(f"island group job {job_id!r} disappeared")
            if record.status in (COMPLETED, FAILED):
                pending.discard(job_id)
                progress = True
                continue
            if record.status != QUEUED:
                continue  # running under another worker; await it
            outcome = worker.process(record)
            if outcome is None:
                continue  # lost the claim race to an external worker
            if outcome.parked is None:
                pending.discard(job_id)
                progress = True
            else:
                signature = parked_signature(outcome.parked)
                if signatures.get(job_id) != signature:
                    progress = True
                signatures[job_id] = signature
        if pending and not progress:
            store.recover_stale_claims(worker.stale_after)
            time.sleep(poll_seconds)
    return [store.get(job_id) for job_id in job_ids]
