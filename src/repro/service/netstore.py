"""Network job store: one shared :class:`JobStore` behind JSON-over-HTTP.

The filesystem claim protocol distributes work across workers that share
a directory; this module distributes it across machines that share only
a network.  A :class:`JobStoreServer` fronts an ordinary on-disk
:class:`~repro.service.store.JobStore` with a stdlib
``ThreadingHTTPServer``, and a :class:`RemoteJobStore` client exposes the
exact :data:`~repro.service.store.STORE_PROTOCOL` method surface, so
:class:`~repro.service.worker.Worker` and the CLI run unchanged against
either store.  The parametrized suite in ``tests/test_store_contract.py``
is the executable contract both sides must keep.

Wire protocol (version 1)::

    POST /rpc     {"method": <name>, "params": {...}}
                  -> 200 {"result": ...}
                  -> 400 {"error": {"type": <exception>, "message": ...}}
                  -> 401 on a bad or missing token
    GET  /health  -> 200 {"ok": true}   (unauthenticated liveness probe)

Two observability side-channels ride next to the protocol (they are
*not* store methods, so the protocol version is untouched)::

    GET  /metrics    -> Prometheus text exposition of the server's
                        telemetry registry (authenticated like /rpc);
                        rendered output is cached ~1s, surfaced via the
                        ``X-Repro-Cache-Status: hit|miss`` header
    POST /telemetry  {"source": <worker id>, "snapshot": {...}}
                     -> ingest one worker's registry snapshot, so a
                        single /metrics scrape shows the whole fleet
                        (each source's series carry a ``source`` label)

Every response also carries ``X-Repro-Duration`` (seconds spent in the
handler), and each RPC dispatch lands in the
``repro_rpc_seconds{method=...,status=...}`` histogram.

Authentication is a shared token sent as ``Authorization: Bearer
<token>`` and compared in constant time; an empty server token disables
the check (bind such a server to localhost only).  Domain errors are
re-raised client-side as the same exception type the local store would
have raised, so calling code cannot tell the two stores apart; transport
failures are retried with exponential backoff and surface as
:class:`~repro.exceptions.StoreUnavailableError`.

Checkpoints ride along: the server owns the durable copy, and the client
mirrors it into a local spool directory — downloaded when a claim is
won (so a resumed job continues from the fleet's latest state) and
uploaded whenever a heartbeat or release finds the local file changed
(so a checkpoint survives the worker that wrote it).  The evaluation
cache, by contrast, stays worker-local: scores are deterministic, so a
cold cache costs time, never correctness.
"""

from __future__ import annotations

import hashlib
import hmac
import http.client
import json
import re
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.exceptions import (
    ReproError,
    ServiceError,
    StoreUnavailableError,
    WorkerError,
)
from repro.obs import get_registry, trace
from repro.service.job import JobResult, ProtectionJob
from repro.service.store import (
    JobRecord,
    JobStore,
    _atomic_write_json,
    default_state_dir,
)

PROTOCOL_VERSION = 1

# Largest request body the server will read.  Checkpoints dominate
# legitimate payloads and compress their code matrices, so this is
# generous headroom; anything bigger is a client bug or abuse.
_MAX_BODY_BYTES = 256 * 1024 * 1024

#: Job ids become file names server-side (records, claims, checkpoints);
#: anything that could escape the state directory is rejected before any
#: handler touches the disk — on raw ``job_id`` params and on the ids
#: of records/jobs sent over the wire alike.
_SAFE_JOB_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


def _checked_job_id(job_id: object) -> str:
    if not isinstance(job_id, str) or not _SAFE_JOB_ID.fullmatch(job_id):
        raise ServiceError(f"invalid job id {job_id!r}")
    return job_id


def _checked_record(record: JobRecord) -> JobRecord:
    _checked_job_id(record.job_id)
    return record


# -- server-side method table ------------------------------------------------
#
# Each handler takes (store, params) and returns a JSON-ready value.
# Records cross the wire as their to_dict() form; transitions return the
# updated record so the client can mirror the mutation into the caller's
# object, exactly as the local store mutates it in place.


def _m_submit(store: JobStore, p: dict) -> dict:
    job = ProtectionJob.from_dict(p["job"])
    _checked_job_id(job.job_id)
    extras = p.get("extras")
    if extras is not None and not isinstance(extras, dict):
        raise ServiceError("submit extras must be a JSON object")
    return store.submit(job, extras=extras).to_dict()


def _m_save(store: JobStore, p: dict) -> None:
    store.save(_checked_record(JobRecord.from_dict(p["record"])))


def _m_get(store: JobStore, p: dict) -> dict | None:
    record = store.get(_checked_job_id(p["job_id"]),
                       missing_ok=bool(p.get("missing_ok")))
    return record.to_dict() if record is not None else None


def _m_records(store: JobStore, p: dict) -> list[dict]:
    return [record.to_dict() for record in store.records()]


def _m_queued(store: JobStore, p: dict) -> list[dict]:
    return [record.to_dict() for record in store.queued()]


def _m_mark_running(store: JobStore, p: dict) -> dict:
    record = _checked_record(JobRecord.from_dict(p["record"]))
    store.mark_running(record)
    return record.to_dict()


def _m_mark_completed(store: JobStore, p: dict) -> dict:
    record = _checked_record(JobRecord.from_dict(p["record"]))
    store.mark_completed(record, JobResult.from_dict(p["result"]))
    return record.to_dict()


def _m_mark_failed(store: JobStore, p: dict) -> dict:
    record = _checked_record(JobRecord.from_dict(p["record"]))
    store.mark_failed(record, str(p.get("error", "")))
    return record.to_dict()


def _m_requeue(store: JobStore, p: dict) -> dict:
    return store.requeue(_checked_record(JobRecord.from_dict(p["record"]))).to_dict()


def _m_claim(store: JobStore, p: dict) -> bool:
    return store.claim(_checked_job_id(p["job_id"]), owner=str(p.get("owner", "")))


def _m_claim_batch(store: JobStore, p: dict) -> list[dict]:
    won = store.claim_batch(owner=str(p.get("owner", "")),
                            limit=int(p.get("limit", 0)))
    return [record.to_dict() for record in won]


def _m_release(store: JobStore, p: dict) -> bool:
    owner = p.get("owner")
    return store.release(_checked_job_id(p["job_id"]),
                         owner=None if owner is None else str(owner))


def _m_heartbeat(store: JobStore, p: dict) -> bool:
    return store.heartbeat(_checked_job_id(p["job_id"]), owner=str(p.get("owner", "")))


def _m_claim_info(store: JobStore, p: dict) -> dict | None:
    return store.claim_info(_checked_job_id(p["job_id"]))


def _m_claimed_job_ids(store: JobStore, p: dict) -> list[str]:
    return store.claimed_job_ids()


def _m_claims(store: JobStore, p: dict) -> dict:
    return store.claims()


def _m_recover_stale_claims(store: JobStore, p: dict) -> list[str]:
    return store.recover_stale_claims(float(p.get("max_age_seconds", 3600.0)))


def _m_get_checkpoint(store: JobStore, p: dict) -> dict | None:
    return store.get_checkpoint(_checked_job_id(p["job_id"]))


def _m_put_checkpoint(store: JobStore, p: dict) -> None:
    payload = p.get("payload")
    if not isinstance(payload, dict):
        raise ServiceError("put_checkpoint needs a JSON object payload")
    owner = p.get("owner")
    # The store's put_checkpoint enforces the owner gate (a worker whose
    # claim was recovered must not overwrite the new owner's state); for
    # the sqlite backend it also lands the blob in the database.
    store.put_checkpoint(_checked_job_id(p["job_id"]), payload,
                         owner=None if owner is None else str(owner))


def _m_ping(store: JobStore, p: dict) -> dict:
    return {"protocol": PROTOCOL_VERSION, "root": str(store.root)}


_METHODS = {
    "submit": _m_submit,
    "save": _m_save,
    "get": _m_get,
    "records": _m_records,
    "queued": _m_queued,
    "mark_running": _m_mark_running,
    "mark_completed": _m_mark_completed,
    "mark_failed": _m_mark_failed,
    "requeue": _m_requeue,
    "claim": _m_claim,
    "claim_batch": _m_claim_batch,
    "release": _m_release,
    "heartbeat": _m_heartbeat,
    "claim_info": _m_claim_info,
    "claims": _m_claims,
    "claimed_job_ids": _m_claimed_job_ids,
    "recover_stale_claims": _m_recover_stale_claims,
    "get_checkpoint": _m_get_checkpoint,
    "put_checkpoint": _m_put_checkpoint,
    "ping": _m_ping,
}


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """One RPC request: authenticate, dispatch, serialize."""

    server_version = "repro-jobstore/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", "")
        if trace_id:
            # Joins this response to its request's trace, so server
            # logs, metrics and traces meet on one key.
            self.send_header("X-Repro-Trace-Id", trace_id)
        self._send_duration_header()
        self.end_headers()
        self.wfile.write(body)

    def _send_duration_header(self) -> None:
        started = getattr(self, "_started", None)
        if started is not None:
            self.send_header("X-Repro-Duration",
                             f"{time.perf_counter() - started:.6f}")

    def _observe_rpc(self, method: str, status: int) -> None:
        registry = get_registry()
        started = getattr(self, "_started", None)
        if registry.enabled and started is not None:
            registry.observe("repro_rpc_seconds",
                             time.perf_counter() - started,
                             method=method, status=str(status))

    def _send_error_json(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _authorized(self) -> bool:
        token = self.server.token  # type: ignore[attr-defined]
        if not token:
            return True
        supplied = self.headers.get("Authorization", "")
        # Compare as bytes: compare_digest refuses non-ASCII str, and a
        # garbage header must mean 401, not a handler traceback.
        return hmac.compare_digest(
            supplied.encode("utf-8", "replace"),
            f"Bearer {token}".encode("utf-8", "replace"),
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._started = time.perf_counter()
        self._trace_id = ""  # keep-alive handlers must not leak it across requests
        if self.path.startswith("/trace/"):
            self._handle_trace_get()
            return
        if self.path == "/health":
            self._send_json(200, {"ok": True})
            return
        if self.path == "/metrics":
            # The registry can hold fleet-internal detail (hostnames in
            # source labels), so scrapes authenticate exactly like RPCs.
            if not self._authorized():
                self.close_connection = True
                self._send_error_json(401, "ServiceError",
                                      "unauthorized: bad or missing store token")
                return
            text, cache_status = self._rendered_metrics()
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Repro-Cache-Status", cache_status)
            self._send_duration_header()
            self.end_headers()
            self.wfile.write(body)
            return
        self._send_error_json(404, "ServiceError", f"no such path {self.path!r}")

    def _handle_trace_get(self) -> None:
        """``GET /trace/<job_id>``: the job's stored span tree as JSON.

        Token-authenticated like ``/metrics``, and cached the same way
        (``X-Repro-Cache-Status``): a dashboard polling one waterfall
        must not turn every refresh into a store read.
        """
        if not self._authorized():
            self.close_connection = True
            self._send_error_json(401, "ServiceError",
                                  "unauthorized: bad or missing store token")
            return
        job_id = self.path[len("/trace/"):]
        if not _SAFE_JOB_ID.fullmatch(job_id):
            self._send_error_json(400, "ServiceError",
                                  f"invalid job id {job_id!r}")
            return
        payload, cache_status = self._rendered_trace(job_id)
        if payload is None:
            self._send_error_json(404, "ServiceError",
                                  f"no trace recorded for {job_id!r}")
            return
        self._trace_id = str(payload.get("trace_id", ""))
        body = json.dumps(payload).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Trace-Id", self._trace_id)
        self.send_header("X-Repro-Cache-Status", cache_status)
        self._send_duration_header()
        self.end_headers()
        self.wfile.write(body)

    def _rendered_trace(self, job_id: str) -> tuple[dict | None, str]:
        """The job's trace payload, re-read at most once per cache TTL.

        Missing traces cache too (as ``None``), so a storm of 404 polls
        costs one store read per TTL.  The cache is bounded FIFO — a
        serve process watching thousands of jobs stays flat.
        """
        server = self.server
        lock = getattr(server, "trace_lock", None)
        if lock is None:
            return trace.load_trace(server.store, job_id), "miss"  # type: ignore[attr-defined]
        ttl = getattr(server, "trace_ttl", 1.0)
        now = time.monotonic()
        with lock:
            cached = server.trace_cache.get(job_id)  # type: ignore[attr-defined]
            if cached is not None and now - cached[0] < ttl:
                return cached[1], "hit"
        payload = trace.load_trace(server.store, job_id)  # type: ignore[attr-defined]
        with lock:
            cache = server.trace_cache  # type: ignore[attr-defined]
            cache[job_id] = (now, payload)
            while len(cache) > 256:
                cache.pop(next(iter(cache)))
        return payload, "miss"

    def _rendered_metrics(self) -> tuple[str, str]:
        """The exposition text, re-rendered at most once per cache TTL.

        Rendering walks every series under the registry lock; a scrape
        storm (or a dashboard auto-refreshing several panels) would
        otherwise contend with the hot RPC path.  Within the TTL every
        scrape gets the cached text and a ``hit`` cache status.
        """
        server = self.server
        ttl = getattr(server, "metrics_ttl", 1.0)
        lock = getattr(server, "metrics_lock", None)
        if lock is None:
            return get_registry().render_prometheus(), "miss"
        with lock:
            rendered_at, text = server.metrics_cache  # type: ignore[attr-defined]
            now = time.monotonic()
            if text and now - rendered_at < ttl:
                return text, "hit"
            text = get_registry().render_prometheus()
            server.metrics_cache = (now, text)  # type: ignore[attr-defined]
            return text, "miss"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Reject before reading: buffering an unauthenticated client's
        # body would hand anyone a memory-exhaustion lever.  Closing the
        # connection on rejection keeps keep-alive streams in sync
        # without draining — the unread body dies with the socket.
        self._started = time.perf_counter()
        self._trace_id = ""
        if self.path not in ("/rpc", "/telemetry"):
            self.close_connection = True
            self._send_error_json(404, "ServiceError", f"no such path {self.path!r}")
            return
        if not self._authorized():
            self.close_connection = True
            self._send_error_json(401, "ServiceError",
                                  "unauthorized: bad or missing store token")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(400, "ServiceError", "unacceptable request body")
            return
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send_error_json(400, "ServiceError", "malformed request body")
            return
        if self.path == "/telemetry":
            self._handle_telemetry(request)
            return
        # Optional traceparent riding the envelope (wire-protocol-v1
        # compatible: old clients omit it, and only "method"/"params"
        # drive dispatch).  It comes back as X-Repro-Trace-Id.
        parsed_trace = trace.parse_traceparent(request.get("trace"))
        if parsed_trace is not None:
            self._trace_id = parsed_trace[0]
        method = request.get("method", "")
        params = request.get("params") or {}
        handler = _METHODS.get(method)
        if handler is None or not isinstance(params, dict):
            self._send_error_json(400, "ServiceError", f"unknown method {method!r}")
            return
        store = self.server.store  # type: ignore[attr-defined]
        try:
            result = handler(store, params)
        except ReproError as exc:
            self._observe_rpc(method, 400)
            self._send_error_json(400, type(exc).__name__, str(exc))
            return
        except (KeyError, TypeError, ValueError) as exc:
            self._observe_rpc(method, 400)
            self._send_error_json(400, "ServiceError",
                                  f"bad parameters for {method!r}: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            self._observe_rpc(method, 500)
            self._send_error_json(500, "ServiceError",
                                  f"internal error: {type(exc).__name__}: {exc}")
            return
        self._observe_rpc(method, 200)
        self._send_json(200, {"result": result})

    def _handle_telemetry(self, request: dict) -> None:
        """Ingest one worker's pushed registry snapshot.

        A side-channel, not a store method: snapshots live only in the
        server's in-memory registry (dropped when stale or on restart),
        so the store directory and the wire protocol stay untouched.
        """
        source = request.get("source")
        snapshot = request.get("snapshot")
        if not isinstance(source, str) or not source or not isinstance(snapshot, dict):
            self._send_error_json(400, "ServiceError",
                                  "telemetry push needs a source and a snapshot")
            return
        get_registry().ingest(source, snapshot)
        self._send_json(200, {"ok": True})


class JobStoreServer:
    """Serves one on-disk :class:`JobStore` to remote workers over HTTP.

    The server adds no state of its own — every operation lands in the
    backing store's directory, so an operator can still inspect and
    repair jobs with standard tools, point local workers at the same
    directory, or restart the server without losing anything.  Claim
    atomicity likewise stays where it always was (``O_CREAT | O_EXCL``
    in the backing store), which is what makes remote and local claims
    mutually exclusive even when both kinds of worker run at once.

    Use :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to block (the ``repro serve`` command); both
    are shut down with :meth:`stop`.  ``port=0`` binds an ephemeral
    port, readable back via :attr:`port` / :attr:`url`.
    """

    def __init__(self, store: JobStore, host: str = "127.0.0.1", port: int = 0,
                 token: str = "") -> None:
        self.store = store
        self._httpd = ThreadingHTTPServer((host, port), _StoreRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.store = store  # type: ignore[attr-defined]
        self._httpd.token = token  # type: ignore[attr-defined]
        # /metrics render cache: (monotonic rendered_at, exposition text).
        self._httpd.metrics_lock = threading.Lock()  # type: ignore[attr-defined]
        self._httpd.metrics_cache = (0.0, "")  # type: ignore[attr-defined]
        self._httpd.metrics_ttl = 1.0  # type: ignore[attr-defined]
        # /trace/<job> read cache: job_id -> (monotonic read_at, payload).
        self._httpd.trace_lock = threading.Lock()  # type: ignore[attr-defined]
        self._httpd.trace_cache = {}  # type: ignore[attr-defined]
        self._httpd.trace_ttl = 1.0  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JobStoreServer":
        """Serve on a daemon thread and return immediately."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="jobstore-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or interrupt."""
        self._serving = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent).

        ``shutdown`` would block forever on a server whose serve loop
        never ran, so it is only issued after one actually started.
        """
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "JobStoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"JobStoreServer({self.store!r}, url={self.url!r})"


# -- the client --------------------------------------------------------------

_ERROR_TYPES = {
    "ReproError": ReproError,
    "ServiceError": ServiceError,
    "WorkerError": WorkerError,
    "StoreUnavailableError": StoreUnavailableError,
}


def _mapped_error(exc: urllib.error.HTTPError) -> ReproError:
    """Rebuild the server-side exception type from an error response."""
    try:
        payload = json.loads(exc.read().decode("utf-8"))
    except Exception:  # noqa: BLE001 - any unreadable body means no detail
        payload = {}
    error = payload.get("error") or {}
    cls = _ERROR_TYPES.get(error.get("type", ""), ServiceError)
    return cls(error.get("message") or f"job store returned HTTP {exc.code}")


class RemoteJobStore:
    """Client-side :data:`~repro.service.store.STORE_PROTOCOL` over HTTP.

    Presents the same method surface and semantics as the on-disk
    :class:`~repro.service.store.JobStore` — records in, records out,
    claim booleans, the same exception types — so workers, the runner
    and the CLI take either store interchangeably.  What it adds is
    transport care: every call retries transient connection failures
    with exponential backoff (``retries`` / ``backoff``) before raising
    :class:`~repro.exceptions.StoreUnavailableError`, while HTTP-level
    errors (the server spoke, and said no) are never retried.

    ``spool`` is the client's local state directory: checkpoint mirror
    and worker-local evaluation cache.  It defaults to a per-server
    directory under the regular state root, so two clients of different
    servers never mix state.
    """

    def __init__(
        self,
        base_url: str,
        token: str = "",
        spool: str | Path | None = None,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.2,
    ) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        if spool is None:
            digest = hashlib.sha256(self.base_url.encode("utf-8")).hexdigest()[:12]
            spool = default_state_dir() / "remote" / digest
        self.root = Path(spool)
        self.checkpoints_dir = self.root / "checkpoints"
        self.cache_dir = self.root / "cache"
        for directory in (self.checkpoints_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # mtime of each checkpoint as last synced with the server, so
        # heartbeats only pay an upload when the file actually changed.
        self._synced_mtimes: dict[str, float] = {}

    @property
    def cache_path(self) -> Path:
        """The worker-local evaluation cache (never shared over the wire)."""
        return self.cache_dir / "evaluations.sqlite"

    # -- transport ----------------------------------------------------------

    def _call(self, method: str, **params: object) -> object:
        envelope: dict[str, object] = {"method": method, "params": params}
        traceparent = trace.format_traceparent()
        if traceparent:
            # Optional, wire-protocol-v1 compatible: old servers read
            # only "method"/"params" and ignore the extra field.
            envelope["trace"] = traceparent
        body = json.dumps(envelope).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        last_error: Exception | None = None
        with trace.span("repro.rpc", method=method):
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(self.backoff * (2 ** (attempt - 1)))
                request = urllib.request.Request(
                    f"{self.base_url}/rpc", data=body, headers=headers,
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=self.timeout
                    ) as response:
                        payload = json.loads(response.read().decode("utf-8"))
                    return payload.get("result")
                except urllib.error.HTTPError as exc:
                    raise _mapped_error(exc) from None
                except (OSError, http.client.HTTPException, TimeoutError) as exc:
                    last_error = exc
        raise StoreUnavailableError(
            f"job store at {self.base_url} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def ping(self) -> dict:
        """Round-trip check; returns the server's protocol banner."""
        result = self._call("ping")
        return result if isinstance(result, dict) else {}

    def push_telemetry(self, source: str, snapshot: dict) -> None:
        """Push this process's registry snapshot to the server's ``/telemetry``.

        An observability side-channel, deliberately outside
        :data:`~repro.service.store.STORE_PROTOCOL`: local stores have
        no aggregation point, and the wire protocol version does not
        change.  One attempt, no retries — pushes are periodic and
        cumulative, so the next one supersedes anything a retry would
        have delivered.  Callers (the worker's throttled push loop)
        treat failures as telemetry loss, never as job failure.
        """
        body = json.dumps({"source": source, "snapshot": snapshot}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.base_url}/telemetry", data=body, headers=headers, method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except urllib.error.HTTPError as exc:
            raise _mapped_error(exc) from None
        except (OSError, http.client.HTTPException, TimeoutError) as exc:
            raise StoreUnavailableError(
                f"telemetry push to {self.base_url} failed: {exc}"
            ) from None

    # -- record lifecycle ----------------------------------------------------

    def submit(self, job: ProtectionJob, extras: dict | None = None) -> JobRecord:
        """Register a job as queued (idempotent); see :meth:`JobStore.submit`."""
        return JobRecord.from_dict(
            self._call("submit", job=job.to_dict(), extras=extras)
        )

    def save(self, record: JobRecord) -> None:
        """Persist ``record`` on the server."""
        self._call("save", record=record.to_dict())

    def get(self, job_id: str, missing_ok: bool = False) -> JobRecord | None:
        """Load one record; raises :class:`ServiceError` unless ``missing_ok``."""
        payload = self._call("get", job_id=job_id, missing_ok=missing_ok)
        return JobRecord.from_dict(payload) if payload is not None else None

    def records(self) -> list[JobRecord]:
        """Every stored record, oldest submission first."""
        return [JobRecord.from_dict(item) for item in self._call("records")]

    def queued(self) -> list[JobRecord]:
        """Queued records only, oldest submission first."""
        return [JobRecord.from_dict(item) for item in self._call("queued")]

    def _apply(self, record: JobRecord, payload: dict) -> JobRecord:
        """Mirror a server-side transition into the caller's record.

        The local store mutates the caller's object in place (status,
        timestamps, result); parity requires the remote store to do the
        same, or a worker's follow-up save would clobber server-set
        fields with stale ones.
        """
        updated = JobRecord.from_dict(payload)
        record.status = updated.status
        record.submitted_at = updated.submitted_at
        record.started_at = updated.started_at
        record.finished_at = updated.finished_at
        record.result = updated.result
        record.error = updated.error
        record.extras = updated.extras
        return record

    def mark_running(self, record: JobRecord) -> None:
        """Transition to ``running`` and persist."""
        self._apply(record, self._call("mark_running", record=record.to_dict()))

    def mark_completed(self, record: JobRecord, result: JobResult) -> None:
        """Transition to ``completed`` with its result and persist."""
        self._apply(record, self._call(
            "mark_completed", record=record.to_dict(), result=result.to_dict()
        ))

    def mark_failed(self, record: JobRecord, error: str) -> None:
        """Transition to ``failed`` with the error text and persist."""
        self._apply(record, self._call(
            "mark_failed", record=record.to_dict(), error=error
        ))

    def requeue(self, record: JobRecord) -> JobRecord:
        """Put a ``running`` or ``failed`` record back on the queue."""
        return self._apply(record, self._call("requeue", record=record.to_dict()))

    # -- worker claims -------------------------------------------------------

    def claim(self, job_id: str, owner: str = "") -> bool:
        """Atomically claim ``job_id`` for ``owner`` on the server.

        Winning the claim also pulls the server's checkpoint for the job
        into the local spool, so a worker on a different machine resumes
        from the fleet's latest saved state, not its own.
        """
        won = bool(self._call("claim", job_id=job_id, owner=owner))
        if won:
            self._download_checkpoint(job_id)
        return won

    def claim_batch(self, owner: str = "", limit: int = 0) -> list[JobRecord]:
        """Claim up to ``limit`` queued records in one round trip.

        The whole queue-walk-and-claim loop happens server-side (for a
        database-backed store, in one transaction), so a worker's
        capacity pull costs one RPC however long the queue is.  Each
        won job's checkpoint is pulled into the local spool, exactly as
        a single-job claim does.
        """
        won = [
            JobRecord.from_dict(item)
            for item in self._call("claim_batch", owner=owner, limit=limit)
        ]
        for record in won:
            self._download_checkpoint(record.job_id)
        return won

    def release(self, job_id: str, owner: str | None = None) -> bool:
        """Drop ``job_id``'s claim; owner-checked when ``owner`` is given.

        An owner releasing its own claim first pushes its final
        checkpoint to the server — the last chance before another
        worker may take the job over.  The upload itself is owner-gated
        server-side, so if this claim was recovered and re-granted in
        the meantime, the new owner's fresher checkpoint survives.
        """
        if owner is not None:
            self._upload_checkpoint_if_changed(job_id, owner=owner)
        return bool(self._call("release", job_id=job_id, owner=owner))

    def heartbeat(self, job_id: str, owner: str = "") -> bool:
        """Refresh claim liveness; piggybacks checkpoint sync.

        Each beat that lands also uploads the local checkpoint if it
        changed since the last sync, so a worker killed mid-run loses at
        most one heartbeat interval of checkpoint progress.
        """
        alive = bool(self._call("heartbeat", job_id=job_id, owner=owner))
        if alive:
            self._upload_checkpoint_if_changed(job_id, owner=owner or None)
        return alive

    def claim_info(self, job_id: str) -> dict | None:
        """The claim payload (owner, pid, claimed_at, last_seen), or ``None``."""
        return self._call("claim_info", job_id=job_id)

    def claims(self) -> dict[str, dict]:
        """Every live claim's payload keyed by job id, in one round trip."""
        return dict(self._call("claims"))

    def claimed_job_ids(self) -> list[str]:
        """Every job id currently claimed by some worker."""
        return list(self._call("claimed_job_ids"))

    def recover_stale_claims(self, max_age_seconds: float = 3600.0) -> list[str]:
        """Server-side stale-claim recovery; returns recovered job ids."""
        return list(self._call("recover_stale_claims", max_age_seconds=max_age_seconds))

    # -- checkpoint spool ----------------------------------------------------

    def get_checkpoint(self, job_id: str) -> dict | None:
        """The server's durable checkpoint blob for ``job_id``, or ``None``."""
        payload = self._call("get_checkpoint", job_id=job_id)
        return payload if isinstance(payload, dict) else None

    def put_checkpoint(self, job_id: str, payload: dict,
                       owner: str | None = None) -> None:
        """Upload a checkpoint blob (claim-gated server-side with ``owner``)."""
        self._call("put_checkpoint", job_id=job_id, payload=payload, owner=owner)

    def _local_checkpoint(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.json"

    def _download_checkpoint(self, job_id: str) -> None:
        payload = self.get_checkpoint(job_id)
        if payload is None:
            return
        path = self._local_checkpoint(job_id)
        _atomic_write_json(path, payload)
        self._synced_mtimes[job_id] = path.stat().st_mtime

    def _upload_checkpoint_if_changed(self, job_id: str,
                                      owner: str | None = None) -> None:
        path = self._local_checkpoint(job_id)
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return
        if self._synced_mtimes.get(job_id) == mtime:
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, FileNotFoundError):
            return  # mid-write or gone; the next beat will retry
        try:
            self.put_checkpoint(job_id, payload, owner=owner)
        except WorkerError:
            return  # we no longer own the claim; the new owner's state wins
        self._synced_mtimes[job_id] = mtime

    def __repr__(self) -> str:
        return f"RemoteJobStore({self.base_url!r}, spool={str(self.root)!r})"
