"""Job model of the orchestration service.

A :class:`ProtectionJob` is the unit of work the service moves around:
one fully-specified protection run — dataset reference, GA / engine
configuration, and run seed.  Jobs are frozen values with a stable
content fingerprint, so identical submissions deduplicate, cache entries
survive restarts, and a job can be round-tripped through JSON (the job
store, the process backend) without losing identity.

A finished job is summarized by a :class:`JobResult`: the endpoint
scores plus the evaluation-cache accounting the acceptance tests and the
``repro status`` table report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.exceptions import ServiceError
from repro.experiments.runner import ExperimentConfig


@dataclass(frozen=True)
class ProtectionJob:
    """One fully-specified protection run, identified by its content.

    The fields mirror :class:`repro.experiments.runner.ExperimentConfig`
    so a job converts losslessly to the experiment harness; the service
    adds identity (:meth:`fingerprint`, :attr:`job_id`) on top.
    """

    dataset: str
    score: str = "max"
    generations: int = 300
    seed: int = 42
    population_seed: int = 0
    drop_best_fraction: float = 0.0
    mutation_probability: float = 0.5
    leader_fraction: float = 0.1
    selection_strategy: str = "proportional"
    eval_workers: int = 0
    eval_backend: str = "thread"
    #: Island-model fields (see :mod:`repro.service.islands`): with
    #: ``islands >= 2`` this job is one member of a cooperating group —
    #: ``island_index`` in ``[0, islands)`` runs one population on its
    #: own RNG stream, ``island_index == islands`` is the final
    #: Pareto-merge job — exchanging ``migrants`` elites every
    #: ``migrate_every`` generations over the ``topology`` neighbour
    #: map.  All five default to inactive so plain jobs are unchanged.
    islands: int = 0
    island_index: int = 0
    migrate_every: int = 0
    migrants: int = 0
    topology: str = ""

    #: Pure throughput knobs: evaluation is pure, so these can never
    #: change a run's results and must not change its identity — the
    #: same job run with 1 or 8 evaluation workers is the same job (and
    #: old stores' fingerprints stay valid).
    _EXECUTION_FIELDS = frozenset({"eval_workers", "eval_backend"})

    #: The island-model fields.  Excluded from the fingerprint while
    #: inactive (``islands <= 1``) so every pre-island job keeps its
    #: historical content hash — stores full of finished jobs must not
    #: see their identities shift under a schema extension.  Active
    #: island fields *do* change results (different RNG streams,
    #: migrant exchange), so they are hashed then.
    _ISLAND_FIELDS = frozenset(
        {"islands", "island_index", "migrate_every", "migrants", "topology"}
    )

    def fingerprint(self) -> str:
        """Stable content hash: equal jobs hash equal, always.

        Covers every field that can change the run's results; execution
        fields (:attr:`_EXECUTION_FIELDS`) are excluded, and the island
        fields (:attr:`_ISLAND_FIELDS`) only count while active.
        """
        excluded = self._EXECUTION_FIELDS
        if self.islands <= 1:
            excluded = excluded | self._ISLAND_FIELDS
        payload = {
            key: value
            for key, value in asdict(self).items()
            if key not in excluded
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    @property
    def job_id(self) -> str:
        """Human-scannable id: dataset, seed, and a fingerprint prefix."""
        return f"{self.dataset}-s{self.seed}-{self.fingerprint()[:10]}"

    def with_seed(self, seed: int) -> "ProtectionJob":
        """The same job under a different run seed (replicates)."""
        return replace(self, seed=seed)

    def to_config(self) -> ExperimentConfig:
        """The experiment-harness view of this job.

        The island fields stay behind: the experiment harness runs one
        population — island orchestration happens a layer above it, in
        :mod:`repro.service.islands`.
        """
        payload = {
            key: value
            for key, value in asdict(self).items()
            if key not in self._ISLAND_FIELDS
        }
        return ExperimentConfig(**payload)

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "ProtectionJob":
        """Wrap an existing experiment configuration as a job."""
        return cls(**asdict(config))

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ProtectionJob":
        """Rebuild a job from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(f"unknown job fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class JobResult:
    """Compact, serializable summary of one finished job.

    ``final_scores`` keeps the full final-population score vector in
    population order, which is what the backend-equivalence guarantees
    compare ("byte-identical to the serial path").  The cache counters
    split evaluation work into fresh metric computations
    (``fresh_evaluations``), in-process memo hits (``memo_hits``) and
    persistent-store hits (``persistent_hits``).
    """

    job_id: str
    dataset: str
    seed: int
    generations: int
    best_score: float
    best_information_loss: float
    best_disclosure_risk: float
    final_scores: tuple[float, ...]
    mean_improvement_percent: float
    fresh_evaluations: int
    memo_hits: int
    persistent_hits: int
    wall_seconds: float
    checkpoint_path: str = ""
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["final_scores"] = list(self.final_scores)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        """Rebuild a result from :meth:`to_dict` output."""
        data = dict(payload)
        data["final_scores"] = tuple(data.get("final_scores", ()))
        return cls(**data)
