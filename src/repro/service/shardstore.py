"""Sharded job store: one ``STORE_PROTOCOL`` surface over N child stores.

One ``repro serve`` process over one database is a fleet's ceiling.
:class:`ShardedJobStore` removes it without teaching a single caller
about sharding: it composes any mix of child backends (``file:`` /
``sqlite:`` / ``http(s)://``) behind the exact
:data:`~repro.service.store.STORE_PROTOCOL` surface, and the store
conformance suite (``tests/test_store_contract.py``) runs over it
verbatim.  Callers — workers, the CLI, ``migrate_store`` — cannot tell
a sharded fleet from a single store.

How the pieces fit:

**Placement** is a rendezvous (highest-random-weight) hash of the job
id against each shard's name.  Every client computes the same home
shard for a job independently, and — unlike modulo hashing — the
choice is stable when the shard list is reordered or extended: only
keys whose top-ranked shard changed move.  A job's record, its claim
and its checkpoint blob always live on the *same* shard, so the claim
protocol's atomicity still comes from one child store, never from
cross-shard coordination.

**Reads fan out.** ``records()`` / ``queued()`` / ``claims()`` /
``claimed_job_ids()`` / ``recover_stale_claims()`` merge child results
in one round trip per shard — ``repro status`` over a sharded fleet is
O(shards), not O(jobs).  Single-job operations locate the owning shard
by probing in rendezvous order (home first, so the common case is one
probe) and cache the location.

**Work-stealing.** :meth:`claim_batch` keeps the contract's global
oldest-first semantics: it merges every healthy shard's queue and
claims in submission order, routing each claim to the job's own shard.
:meth:`steal_batch` is the fleet fast path workers use: drain the
worker's *home* shard first with one child ``claim_batch`` (one
transaction on a database shard), then steal remaining capacity from
the most-backlogged healthy shards, oldest jobs first within each.
Every stolen job is counted in ``repro_shard_steals_total{shard}``
(labelled by the shard it was stolen from).

**Health.** Every ``StoreUnavailableError`` from a child opens a
circuit for that shard (``cooldown`` seconds, counted in
``repro_shard_unavailable_total{shard}``).  While open, the shard is
skipped by fan-out reads, by submission placement (new jobs route to
the next shard in their rendezvous order) and by stealing — the rest
of the fleet keeps claiming.  Jobs already *on* the dead shard are
deliberately not re-routed: their claims and records are unreachable,
and silently claiming them elsewhere would double-execute.  When the
shard returns, the first ``recover_stale_claims`` pass requeues its
strays through the existing crashed-worker repair path, and they
complete exactly once.

What degrades when a shard is down, by design: fan-out listings are a
partial view (surviving shards only), and submit idempotency is
best-effort — a job homed on the dead shard resubmitted meanwhile
lands on its next rendezvous shard, and the locate order makes the
recovered original win once both are visible again.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from repro.exceptions import ServiceError, StoreUnavailableError, WorkerError
from repro.obs import emit_event, get_registry, trace
from repro.service.job import JobResult, ProtectionJob
from repro.service.store import (
    QUEUED,
    JobRecord,
    _atomic_write_json,
    default_state_dir,
    store_from_spec,
)

#: Seconds a shard's circuit stays open after a ``StoreUnavailableError``
#: before fan-out reads and placement probe it again.
DEFAULT_COOLDOWN_SECONDS = 30.0


def parse_shard_spec(body: str) -> list[tuple[str, str]]:
    """Parse the body of a ``shard:`` spec into ``(name, child_spec)`` pairs.

    Two grammars:

    - a comma-separated child list — ``sqlite:a.db,sqlite:b.db`` — where
      each child is any non-shard :func:`store_from_spec` spec and the
      child's name is its spec string;
    - ``@PATH`` — a JSON fleet manifest: either a list, or an object
      with a ``"shards"`` list, whose entries are child spec strings or
      ``{"name": ..., "spec": ...}`` objects.  Names let operators keep
      metric labels stable while a shard's address changes.
    """
    body = (body or "").strip()
    if not body:
        raise ServiceError(
            "shard: spec needs at least one child store "
            "(shard:sqlite:a.db,sqlite:b.db or shard:@manifest.json)"
        )
    if body.startswith("@"):
        path = Path(body[1:]).expanduser()
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ServiceError(f"shard manifest not found: {path}")
        except json.JSONDecodeError as exc:
            raise ServiceError(f"shard manifest {path} is not valid JSON: {exc}")
        entries = manifest.get("shards") if isinstance(manifest, dict) else manifest
        if not isinstance(entries, list) or not entries:
            raise ServiceError(
                f"shard manifest {path} must be a JSON list of shards or an "
                "object with a non-empty \"shards\" list"
            )
        pairs: list[tuple[str, str]] = []
        for entry in entries:
            if isinstance(entry, str):
                pairs.append((entry, entry))
            elif isinstance(entry, dict) and isinstance(entry.get("spec"), str):
                pairs.append((str(entry.get("name") or entry["spec"]), entry["spec"]))
            else:
                raise ServiceError(
                    f"bad shard manifest entry {entry!r}: expected a spec "
                    "string or {\"name\": ..., \"spec\": ...}"
                )
    else:
        pairs = [(child.strip(), child.strip())
                 for child in body.split(",") if child.strip()]
    if not pairs:
        raise ServiceError("shard: spec names no child stores")
    for name, spec in pairs:
        if spec.startswith("shard:"):
            raise ServiceError(f"shards cannot nest: child spec {spec!r}")
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ServiceError(f"duplicate shard names in spec: {sorted(names)}")
    return pairs


class _Shard:
    """One child store plus its health state."""

    __slots__ = ("name", "store", "failures", "open_until")

    def __init__(self, name: str, store: object) -> None:
        self.name = name
        self.store = store
        self.failures = 0
        self.open_until = 0.0

    def __repr__(self) -> str:
        return f"_Shard({self.name!r}, failures={self.failures})"


def _hrw_score(shard_name: str, key: str) -> int:
    """Rendezvous weight of ``shard_name`` for ``key`` (higher wins).

    Depends only on the (shard name, key) pair, so every client ranks
    shards identically and reordering the shard list moves no keys.
    """
    digest = hashlib.sha256(f"{shard_name}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardedJobStore:
    """The :data:`~repro.service.store.STORE_PROTOCOL` over N shards.

    ``shards`` are already-open child stores; ``names`` (parallel,
    optional) are the stable identities placement hashes against —
    defaulting to each child's ``spec``/URL.  ``root`` is this client's
    local spool (checkpoint files the runner reads and writes, plus the
    evaluation cache), defaulting to a per-fleet directory under the
    state dir.  Open one from its spec with
    ``store_from_spec("shard:...")``.
    """

    def __init__(
        self,
        shards: list[object],
        names: list[str] | None = None,
        root: str | Path | None = None,
        cooldown: float = DEFAULT_COOLDOWN_SECONDS,
    ) -> None:
        if not shards:
            raise ServiceError("ShardedJobStore needs at least one shard")
        if names is None:
            names = [self._default_name(store, index)
                     for index, store in enumerate(shards)]
        if len(names) != len(shards):
            raise ServiceError(
                f"{len(shards)} shard(s) but {len(names)} name(s)"
            )
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate shard names: {sorted(names)}")
        self._shards = [_Shard(name, store)
                        for name, store in zip(names, shards)]
        self.cooldown = float(cooldown)
        if root is None:
            fleet = hashlib.sha256(
                "\x00".join(sorted(names)).encode("utf-8")
            ).hexdigest()[:12]
            root = default_state_dir() / f"shard-{fleet}"
        self.root = Path(root)
        self.checkpoints_dir = self.root / "checkpoints"
        self.cache_dir = self.root / "cache"
        for directory in (self.checkpoints_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # job_id -> _Shard for jobs whose record we have seen.  Records
        # never move between shards (only migrate_store copies them), so
        # a hit is authoritative; misses fall back to rendezvous probing.
        self._locations: dict[str, _Shard] = {}
        # Local checkpoint file mtimes as last synced with the owning
        # shard, so heartbeats only pay an upload when the runner
        # actually wrote a newer checkpoint.
        self._synced_mtimes: dict[str, float] = {}

    @staticmethod
    def _default_name(store: object, index: int) -> str:
        spec = getattr(store, "spec", "") or getattr(store, "base_url", "")
        return str(spec) if spec else f"shard-{index}"

    @classmethod
    def from_spec(
        cls,
        body: str,
        token: str = "",
        state_dir: str | Path | None = None,
        cooldown: float = DEFAULT_COOLDOWN_SECONDS,
    ) -> "ShardedJobStore":
        """Open the fleet a ``shard:`` spec body describes.

        Child stores open through :func:`store_from_spec` (so every
        child grammar — and every future one — works unchanged);
        ``token`` is shared by any HTTP children.  ``state_dir``
        becomes this client's spool root.
        """
        pairs = parse_shard_spec(body)
        stores = [store_from_spec(spec, token=token) for _, spec in pairs]
        store = cls(stores, names=[name for name, _ in pairs],
                    root=state_dir, cooldown=cooldown)
        store._spec_body = body  # preserve the operator's own spelling
        return store

    # -- identity ------------------------------------------------------------

    @property
    def spec(self) -> str:
        """The :func:`store_from_spec` spec that reopens this fleet."""
        body = getattr(self, "_spec_body", None)
        if body is None:
            body = ",".join(shard.name for shard in self._shards)
        return f"shard:{body}"

    @property
    def shard_names(self) -> list[str]:
        """Every shard's stable name, in configuration order."""
        return [shard.name for shard in self._shards]

    @property
    def cache_path(self) -> Path:
        """The local persistent evaluation cache file."""
        return self.cache_dir / "evaluations.sqlite"

    # -- health --------------------------------------------------------------

    def _available(self, shard: _Shard) -> bool:
        return time.monotonic() >= shard.open_until

    def _mark_failure(self, shard: _Shard, error: Exception) -> None:
        shard.failures += 1
        shard.open_until = time.monotonic() + self.cooldown
        get_registry().inc("repro_shard_unavailable_total", shard=shard.name)
        emit_event("shard_unavailable", shard=shard.name,
                   failures=shard.failures, error=repr(error))

    def _mark_success(self, shard: _Shard) -> None:
        if shard.failures:
            emit_event("shard_recovered", shard=shard.name,
                       failures=shard.failures)
        shard.failures = 0
        shard.open_until = 0.0

    def shard_health(self) -> dict[str, dict]:
        """Each shard's circuit state, for monitoring surfaces."""
        now = time.monotonic()
        return {
            shard.name: {
                "available": now >= shard.open_until,
                "consecutive_failures": shard.failures,
                "cooldown_remaining": max(0.0, shard.open_until - now),
            }
            for shard in self._shards
        }

    # -- placement -----------------------------------------------------------

    def _rendezvous_order(self, key: str) -> list[_Shard]:
        """Every shard, best placement first, identically on any client."""
        return sorted(self._shards,
                      key=lambda shard: _hrw_score(shard.name, key),
                      reverse=True)

    def _find_shard(self, job_id: str) -> _Shard | None:
        """The shard holding ``job_id``'s record, or ``None`` if absent.

        Probes in rendezvous order, home first, so a normally-placed
        job costs one child ``get``.  ``None`` is only returned when
        every shard answered — if any shard is unreachable (or
        circuit-open) and the job was not found elsewhere, the honest
        answer is "unknown", and pretending absence could requeue or
        double-run a live job, so :class:`StoreUnavailableError` is
        raised instead.
        """
        cached = self._locations.get(job_id)
        if cached is not None:
            return cached
        unknown = 0
        for shard in self._rendezvous_order(job_id):
            if not self._available(shard):
                unknown += 1
                continue
            try:
                record = shard.store.get(job_id, missing_ok=True)
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                unknown += 1
                continue
            self._mark_success(shard)
            if record is not None:
                self._locations[job_id] = shard
                return shard
        if unknown:
            raise StoreUnavailableError(
                f"cannot locate job {job_id!r}: {unknown} shard(s) unreachable"
            )
        return None

    def _shard_for(self, job_id: str) -> _Shard:
        """Where ``job_id`` lives — or, absent any record, would live.

        Claims for ids with no record (the raw claim protocol) land on
        the id's rendezvous home, so every contending client agrees on
        one shard and the child's atomicity decides the winner.
        """
        found = self._find_shard(job_id)
        if found is not None:
            return found
        return self._rendezvous_order(job_id)[0]

    def shard_for(self, job_id: str) -> object:
        """The child store that owns ``job_id`` (tests and tooling)."""
        return self._shard_for(job_id).store

    def shard_name_for(self, job_id: str) -> str:
        """The owning shard's name, without a network probe.

        Serves monitoring tables: answers from the location cache (a
        preceding ``records()`` fan-out fills it) or the rendezvous
        home, never a fresh per-job round trip.
        """
        cached = self._locations.get(job_id)
        if cached is not None:
            return cached.name
        return self._rendezvous_order(job_id)[0].name

    def _placement_shard(self, job_id: str) -> _Shard:
        """Where a *new* record for ``job_id`` goes: the first healthy
        shard in rendezvous order (routing submissions around a dead
        home shard)."""
        for shard in self._rendezvous_order(job_id):
            if self._available(shard):
                return shard
        raise StoreUnavailableError(
            f"no shard available to place job {job_id!r} "
            f"({len(self._shards)} circuit-open)"
        )

    def _healthy_shards(self) -> list[_Shard]:
        return [shard for shard in self._shards if self._available(shard)]

    # -- record lifecycle ----------------------------------------------------

    def submit(self, job: ProtectionJob, extras: dict | None = None) -> JobRecord:
        """Register a job as queued on its shard (idempotent fleet-wide).

        Locates an existing record first so resubmission keeps the
        child-store idempotency contract wherever the record lives;
        a genuinely new job goes to its rendezvous home (or, with the
        home circuit-open, the next shard in its order).
        """
        try:
            shard = self._find_shard(job.job_id)
        except StoreUnavailableError:
            # The unreachable shard may hold an old record, but refusing
            # every submission during a shard outage would stall the
            # fleet; place on the healthiest candidate and let locate
            # order make the recovered original win later.
            shard = None
        if shard is None:
            shard = self._placement_shard(job.job_id)
        record = shard.store.submit(job, extras)
        self._locations[job.job_id] = shard
        # The submit-side span cannot know the shard; tag it from here.
        trace.annotate_span(shard=shard.name)
        return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record`` on its shard."""
        self._shard_for(record.job_id).store.save(record)
        self._locations[record.job_id] = self._shard_for(record.job_id)

    def get(self, job_id: str, missing_ok: bool = False) -> JobRecord | None:
        """Load one record from whichever shard holds it."""
        shard = self._find_shard(job_id)
        if shard is None:
            if missing_ok:
                return None
            raise ServiceError(
                f"unknown job {job_id!r} (no record on any of "
                f"{len(self._shards)} shard(s))"
            )
        return shard.store.get(job_id, missing_ok=missing_ok)

    def _fan_out_records(self, method: str) -> list[tuple[_Shard, JobRecord]]:
        """``(shard, record)`` pairs from every reachable shard."""
        out: list[tuple[_Shard, JobRecord]] = []
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                records = getattr(shard.store, method)()
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                continue
            self._mark_success(shard)
            for record in records:
                self._locations[record.job_id] = shard
                out.append((shard, record))
        return out

    def records(self) -> list[JobRecord]:
        """Every shard's records merged, oldest submission first."""
        merged = [record for _, record in self._fan_out_records("records")]
        return sorted(merged, key=lambda r: (r.submitted_at, r.job_id))

    def queued(self) -> list[JobRecord]:
        """The fleet-wide work queue, oldest submission first.

        Also refreshes ``repro_shard_backlog{shard}`` so scrapes see
        per-shard queue depth from any client that polls.
        """
        registry = get_registry()
        by_shard: dict[str, int] = {shard.name: 0 for shard in self._shards}
        merged = []
        for shard, record in self._fan_out_records("queued"):
            by_shard[shard.name] += 1
            merged.append(record)
        for name, backlog in by_shard.items():
            registry.set_gauge("repro_shard_backlog", backlog, shard=name)
        return sorted(merged, key=lambda r: (r.submitted_at, r.job_id))

    def mark_running(self, record: JobRecord) -> None:
        """Transition to ``running`` on the record's shard."""
        self._shard_for(record.job_id).store.mark_running(record)

    def mark_completed(self, record: JobRecord, result: JobResult) -> None:
        """Transition to ``completed`` on the record's shard."""
        self._shard_for(record.job_id).store.mark_completed(record, result)

    def mark_failed(self, record: JobRecord, error: str) -> None:
        """Transition to ``failed`` on the record's shard (the child
        store protects a completed result from stale failures)."""
        self._shard_for(record.job_id).store.mark_failed(record, error)

    def requeue(self, record: JobRecord) -> JobRecord:
        """Requeue on the record's shard (completed records refuse)."""
        return self._shard_for(record.job_id).store.requeue(record)

    # -- worker claims -------------------------------------------------------

    def claim(self, job_id: str, owner: str = "") -> bool:
        """Claim ``job_id`` on the one shard that owns it.

        A record's claim lives with the record; an id with no record
        claims on its rendezvous home.  Either way every contender
        routes to the same shard, so the child's atomic claim protocol
        keeps the one-winner invariant without any cross-shard locking.
        Winning pulls the shard's checkpoint blob into the local spool.
        """
        shard = self._shard_for(job_id)
        won = shard.store.claim(job_id, owner=owner)
        if won:
            self._pull_checkpoint(job_id, shard)
        return won

    def claim_batch(self, owner: str = "", limit: int = 0) -> list[JobRecord]:
        """Win up to ``limit`` claims fleet-wide, oldest submission first.

        The contract path: every healthy shard's queue merges into one
        globally-ordered list and each claim routes to the job's own
        shard.  A shard that dies mid-batch is circuit-broken and its
        remaining candidates skipped — claims already won on surviving
        shards are kept, not thrown away.  (Workers prefer
        :meth:`steal_batch`, which trades global ordering for one-
        transaction home-shard drains.)
        """
        candidates: list[tuple[float, str, _Shard]] = []
        for shard, record in self._fan_out_records("queued"):
            candidates.append((record.submitted_at, record.job_id, shard))
        candidates.sort(key=lambda item: (item[0], item[1]))
        won: list[JobRecord] = []
        held: list[tuple[_Shard, str]] = []
        try:
            for _, job_id, shard in candidates:
                if limit and len(won) >= limit:
                    break
                if not self._available(shard):
                    continue
                try:
                    record = self._claim_validated(shard, job_id, owner)
                except StoreUnavailableError as error:
                    self._mark_failure(shard, error)
                    continue
                if record is not None:
                    held.append((shard, job_id))
                    won.append(record)
        except BaseException:
            for shard, job_id in held:
                try:
                    shard.store.release(job_id, owner=owner)
                except Exception:  # noqa: BLE001 - stale recovery backstops
                    pass
            raise
        return won

    def _claim_validated(self, shard: _Shard, job_id: str,
                         owner: str) -> JobRecord | None:
        """One claim-and-re-read on ``shard``; ``None`` when not won.

        The same validate step the file store's batch claim does:
        skip jobs someone (including this owner) already holds, claim,
        then re-read inside the claim — a record that left the queue
        meanwhile is released, not returned.
        """
        if shard.store.claim_info(job_id) is not None:
            return None
        if not shard.store.claim(job_id, owner=owner):
            return None
        current = shard.store.get(job_id, missing_ok=True)
        if current is None or current.status != QUEUED:
            shard.store.release(job_id, owner=owner)
            return None
        self._locations[job_id] = shard
        self._pull_checkpoint(job_id, shard)
        return current

    def steal_batch(self, owner: str = "", limit: int = 0) -> list[JobRecord]:
        """The worker fast path: drain home, then steal from the backlog.

        The ``owner``'s home shard (its own rendezvous placement) is
        drained first with one child ``claim_batch`` — a single
        transaction on a database shard.  Remaining capacity is stolen
        from the other healthy shards, most-backlogged first, so load
        rebalances toward wherever jobs pile up; each steal is counted
        in ``repro_shard_steals_total{shard}`` against the shard it was
        stolen *from*.  Dead shards are circuit-broken and skipped —
        the surviving fleet keeps claiming.
        """
        registry = get_registry()
        won: list[JobRecord] = []
        home = None
        for shard in self._rendezvous_order(owner or "anonymous-worker"):
            if self._available(shard):
                home = shard
                break
        if home is not None:
            won.extend(self._steal_from(home, owner, limit))
            if limit and len(won) >= limit:
                return won
        backlogged: list[tuple[int, int, _Shard]] = []
        for index, shard in enumerate(self._shards):
            if shard is home or not self._available(shard):
                continue
            try:
                backlog = len(shard.store.queued())
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                continue
            self._mark_success(shard)
            registry.set_gauge("repro_shard_backlog", backlog, shard=shard.name)
            if backlog:
                backlogged.append((-backlog, index, shard))
        for _, _, shard in sorted(backlogged, key=lambda item: item[:2]):
            need = limit - len(won) if limit else 0
            if limit and need <= 0:
                break
            stolen = self._steal_from(shard, owner, need)
            if stolen:
                registry.inc("repro_shard_steals_total", len(stolen),
                             shard=shard.name)
                emit_event("shard_steal", shard=shard.name, owner=owner,
                           jobs=len(stolen))
            won.extend(stolen)
        return won

    def _steal_from(self, shard: _Shard, owner: str,
                    limit: int) -> list[JobRecord]:
        """One child ``claim_batch`` with health accounting."""
        try:
            batch = shard.store.claim_batch(owner=owner, limit=limit)
        except StoreUnavailableError as error:
            self._mark_failure(shard, error)
            return []
        self._mark_success(shard)
        for record in batch:
            self._locations[record.job_id] = shard
            self._pull_checkpoint(record.job_id, shard)
        return batch

    def release(self, job_id: str, owner: str | None = None) -> bool:
        """Drop ``job_id``'s claim on its shard (owner-checked when given).

        An owner release first pushes the final local checkpoint to the
        shard — the last chance before another worker takes over.
        """
        shard = self._shard_for(job_id)
        if owner is not None:
            self._push_checkpoint_if_changed(job_id, shard, owner=owner)
        return shard.store.release(job_id, owner=owner)

    def heartbeat(self, job_id: str, owner: str = "") -> bool:
        """Refresh claim liveness on the owning shard; a beat that lands
        also syncs a changed local checkpoint up, exactly like the
        sqlite and remote stores do."""
        shard = self._shard_for(job_id)
        alive = shard.store.heartbeat(job_id, owner=owner)
        if alive:
            self._push_checkpoint_if_changed(job_id, shard,
                                             owner=owner or None)
        return alive

    def claim_info(self, job_id: str) -> dict | None:
        """The claim payload from the owning shard, or ``None``."""
        return self._shard_for(job_id).store.claim_info(job_id)

    def claimed_job_ids(self) -> list[str]:
        """Every claimed job id across all reachable shards, sorted."""
        ids: list[str] = []
        for shard in self._healthy_shards():
            try:
                ids.extend(shard.store.claimed_job_ids())
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                continue
            self._mark_success(shard)
        return sorted(ids)

    def claims(self) -> dict[str, dict]:
        """Every live claim fleet-wide, one bulk read per shard.

        Each payload gains a ``shard`` field naming its home, which is
        what lets ``repro status`` and ``repro top`` render a sharded
        fleet as one table with per-shard rows.
        """
        merged: dict[str, dict] = {}
        for shard in self._healthy_shards():
            try:
                bulk = shard.store.claims()
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                continue
            self._mark_success(shard)
            for job_id, info in bulk.items():
                payload = dict(info)
                payload["shard"] = shard.name
                merged[job_id] = payload
        return merged

    def recover_stale_claims(self, max_age_seconds: float = 3600.0) -> list[str]:
        """Run every reachable shard's own recovery pass and merge.

        This is also how a revived shard's strays rejoin the fleet: its
        silent claims and stranded-running records requeue through the
        child store's existing crashed-worker repair, and the next
        worker poll (or steal) picks them up — each exactly once.
        """
        recovered: list[str] = []
        for shard in self._healthy_shards():
            try:
                recovered.extend(
                    shard.store.recover_stale_claims(max_age_seconds)
                )
            except StoreUnavailableError as error:
                self._mark_failure(shard, error)
                continue
            self._mark_success(shard)
        return recovered

    # -- checkpoints ---------------------------------------------------------

    @staticmethod
    def _blob_placement_id(blob_id: str) -> str:
        """Placement key for a checkpoint-path blob id.

        A job's trace blob (``<job_id>.trace``) and island migrant
        buffer (``<job_id>.migrants``) must live on the shard that
        holds the record — ``_shard_for`` on the raw blob id would
        rendezvous-hash the suffixed string to a different shard.  The
        suffix literal is kept in :mod:`repro.service.islands`; it is
        duplicated here only through that import, never retyped.
        """
        from repro.service.islands import MIGRANTS_BLOB_SUFFIX

        if blob_id.endswith(trace.TRACE_BLOB_SUFFIX):
            return blob_id[: -len(trace.TRACE_BLOB_SUFFIX)]
        if blob_id.endswith(MIGRANTS_BLOB_SUFFIX):
            return blob_id[: -len(MIGRANTS_BLOB_SUFFIX)]
        return blob_id

    def get_checkpoint(self, job_id: str) -> dict | None:
        """The durable checkpoint blob — owning shard first, local spool
        fallback for purely local runs that never claimed."""
        shard = self._shard_for(self._blob_placement_id(job_id))
        payload = shard.store.get_checkpoint(job_id)
        if payload is not None:
            return payload
        try:
            payload = json.loads(
                self._local_checkpoint(job_id).read_text(encoding="utf-8")
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put_checkpoint(self, job_id: str, payload: dict,
                       owner: str | None = None) -> None:
        """Store the blob on the owning shard (claim-gated with
        ``owner``) and mirror it to the local runner-facing file."""
        shard = self._shard_for(self._blob_placement_id(job_id))
        shard.store.put_checkpoint(job_id, payload, owner=owner)
        path = self._local_checkpoint(job_id)
        _atomic_write_json(path, payload)
        self._synced_mtimes[job_id] = path.stat().st_mtime

    def _local_checkpoint(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.json"

    def _pull_checkpoint(self, job_id: str, shard: _Shard) -> None:
        """Shard blob -> local spool, so the runner resumes fleet state."""
        try:
            payload = shard.store.get_checkpoint(job_id)
        except StoreUnavailableError as error:
            self._mark_failure(shard, error)
            return
        if not isinstance(payload, dict):
            return
        path = self._local_checkpoint(job_id)
        _atomic_write_json(path, payload)
        self._synced_mtimes[job_id] = path.stat().st_mtime

    def _push_checkpoint_if_changed(self, job_id: str, shard: _Shard,
                                    owner: str | None = None) -> None:
        """Local spool -> shard, only when the runner wrote a newer file.

        A lost claim (owner gate refuses) is silently accepted — the
        new owner's fresher state wins, like every other backend.
        """
        path = self._local_checkpoint(job_id)
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return
        if self._synced_mtimes.get(job_id) == mtime:
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # mid-write or gone; the next beat retries
        if not isinstance(payload, dict):
            return
        try:
            shard.store.put_checkpoint(job_id, payload, owner=owner)
        except WorkerError:
            return  # claim recovered from us; the new owner's state wins
        self._synced_mtimes[job_id] = mtime

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every child store that has a ``close`` (idempotent)."""
        for shard in self._shards:
            close = getattr(shard.store, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "ShardedJobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedJobStore({len(self._shards)} shard(s): "
                f"{', '.join(shard.name for shard in self._shards)})")
