"""The job runner: queue of protection jobs, fanned out over a backend.

:class:`JobRunner` is the execution heart of the service layer.  It takes
:class:`~repro.service.job.ProtectionJob` values and runs them through a
pluggable :mod:`execution backend <repro.service.backends>` — serially,
on a thread pool, or on a process pool — while threading the shared
persistent evaluation cache and per-job checkpoint files through every
worker.  Three fan-out shapes cover the workloads the experiments need:

* :meth:`JobRunner.run` / :meth:`JobRunner.run_replicates` — multi-seed
  experiment replicates;
* :meth:`JobRunner.run_grid` — method-comparison grids over datasets,
  score functions and seeds;
* :meth:`JobRunner.score_population` — scoring an initial population of
  protected files in parallel batches.

Because the GA is deterministic per seed and cache hits return exactly
the stored computation, every backend produces byte-identical scores for
the same job list.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.data.dataset import CategoricalDataset
from repro.datasets.registry import load_dataset
from repro.exceptions import ServiceError
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.evaluation import ProtectionEvaluator, ProtectionScore
from repro.metrics.score import score_function_by_name
from repro.obs import timeline_from_history, trace
from repro.service.backends import ExecutionBackend, SerialBackend, create_backend
from repro.service.cache import EvaluationCache
from repro.service.checkpoint import CheckpointManager
from repro.service.islands import IslandParked, register_store, store_spec_of
from repro.service.job import JobResult, ProtectionJob

# -- worker functions (module-level so the process backend can pickle them) --


def _job_result(
    job: ProtectionJob, outcome: ExperimentResult, wall_seconds: float, checkpoint_path: str
) -> JobResult:
    best = outcome.result.best
    initial_mean, final_mean, percent = outcome.history.improvement("mean")
    evaluator = outcome.evaluator
    return JobResult(
        job_id=job.job_id,
        dataset=job.dataset,
        seed=job.seed,
        generations=len(outcome.history),
        best_score=float(best.score),
        best_information_loss=float(best.information_loss),
        best_disclosure_risk=float(best.disclosure_risk),
        final_scores=tuple(float(ind.score) for ind in outcome.result.population),
        mean_improvement_percent=float(percent),
        fresh_evaluations=evaluator.evaluations,
        memo_hits=evaluator.cache_hits,
        persistent_hits=evaluator.persistent_hits,
        wall_seconds=wall_seconds,
        checkpoint_path=checkpoint_path,
        extras={
            "evaluator_stats": evaluator.stats(),
            # The per-generation trace rides with the result through any
            # store backend; ``repro status --job ID`` renders it.
            "timeline": timeline_from_history(outcome.history.records),
        },
    )


def _execute_job(payload: dict) -> JobResult:
    """Run one job end to end inside the current worker.

    ``payload`` is a plain dict (picklable for the process backend):
    the job's own dict plus cache / checkpoint / resume directives.
    A runner-level ``eval_workers`` is the worker's default for jobs
    that did not pin their own — evaluation is pure, so the override
    can never change the job's results (or its identity).
    """
    job = ProtectionJob.from_dict(payload["job"])
    if job.islands >= 2:
        # Island-group jobs have their own executor: they need the job
        # store (migrant buffers, durable segment checkpoints) and can
        # yield mid-run (IslandParked) — neither fits the plain path.
        from repro.service.islands import execute_island_job

        return execute_island_job(payload)
    config = job.to_config()
    runner_eval_workers = int(payload.get("eval_workers") or 0)
    if config.eval_workers == 0 and runner_eval_workers:
        config = replace(
            config,
            eval_workers=runner_eval_workers,
            eval_backend=str(payload.get("eval_backend") or "thread"),
        )
    cache_path = payload.get("cache_path") or ""
    cache_max_entries = payload.get("cache_max_entries") or None
    checkpoint_path = payload.get("checkpoint_path") or ""
    checkpoint_every = int(payload.get("checkpoint_every") or 0)
    resume = bool(payload.get("resume"))

    manager = (
        CheckpointManager(checkpoint_path, fingerprint=job.fingerprint())
        if checkpoint_path
        else None
    )
    resume_from = None
    if resume:
        if manager is None:
            raise ServiceError("cannot resume without a checkpoint path")
        resume_from = manager.load(load_dataset(job.dataset))

    cache = (
        EvaluationCache(cache_path, max_entries=cache_max_entries)
        if cache_path
        else None
    )
    # Arriving trace context re-enables span recording here: a fresh
    # process-pool worker starts with tracing off, but the submit side
    # already opted this job in.
    scope = None
    trace_ctx = payload.get("trace")
    if isinstance(trace_ctx, dict) and trace_ctx.get("id"):
        scope = trace.activate(str(trace_ctx["id"]), str(trace_ctx.get("root") or ""))
    start = time.perf_counter()
    try:
        with trace.span(
            "repro.run", dataset=job.dataset, seed=job.seed, resume=resume or None
        ):
            outcome = run_experiment(
                config,
                evaluation_cache=cache,
                checkpoint_every=checkpoint_every if manager is not None else 0,
                on_checkpoint=manager.save if manager is not None else None,
                resume_from=resume_from,
            )
    except BaseException:
        if scope is not None:
            # Spans from the failed attempt stay recoverable through
            # trace.take_stray_spans() in the settled wrapper.
            trace.deactivate(scope)
        raise
    finally:
        if cache is not None:
            cache.close()
    result = _job_result(job, outcome, time.perf_counter() - start, checkpoint_path)
    if scope is not None:
        result.extras["trace_spans"] = trace.deactivate(scope)
    return result


def _execute_job_settled(payload: dict) -> dict:
    """Like :func:`_execute_job`, but capture failure instead of raising.

    Returns a plain dict (``result`` xor ``error``) so one bad job cannot
    poison a whole fan-out: siblings keep their results and the caller
    records each job's true outcome.  Trace spans ride back as their own
    key — present in the failure case too, so the spans of a dying run
    still reach the durable trace (failed jobs always flush).

    A parked island job (see :mod:`repro.service.islands`) is a third
    outcome — neither result nor error: the ``parked`` key carries the
    yield details so the worker requeues the record instead of marking
    it failed.
    """
    try:
        result = _execute_job(payload)
        spans = result.extras.pop("trace_spans", [])
        return {"result": result.to_dict(), "error": "", "trace_spans": spans}
    except IslandParked as parked:
        return {
            "result": None,
            "error": "",
            "parked": parked.to_dict(),
            "trace_spans": trace.take_stray_spans(),
        }
    except Exception as exc:  # noqa: BLE001 - the error is the outcome
        return {
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "trace_spans": trace.take_stray_spans(),
        }


def _score_batch(payload: tuple) -> list[ProtectionScore]:
    """Score one batch of protected files against a rebuilt evaluator.

    Goes through :meth:`ProtectionEvaluator.evaluate_many`, so each
    batch dedupes its candidates, consults the persistent cache in one
    bulk round, and vectorizes the fresh remainder.
    """
    original, protections, attributes, score_name, cache_path = payload
    cache = EvaluationCache(cache_path) if cache_path else None
    evaluator = ProtectionEvaluator(
        original,
        attributes,
        score_function=score_function_by_name(score_name),
        persistent_cache=cache,
    )
    try:
        return evaluator.evaluate_many(protections)
    finally:
        if cache is not None:
            cache.close()


@dataclass(frozen=True)
class JobOutcome:
    """Settled outcome of one job: a result, an error, or a park.

    ``trace_spans`` carries the run-side spans (run / generations /
    evaluation batches) back to whoever flushes the job's durable trace
    — populated only for jobs that arrived with trace context.

    ``parked`` (island jobs only) means the job yielded its claim at an
    exchange boundary — checkpointed, not failed; the worker requeues
    it (see :func:`repro.service.islands.park_record`).
    """

    job_id: str
    result: JobResult | None = None
    error: str = ""
    trace_spans: tuple = ()
    parked: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the job produced a result."""
        return self.result is not None


# -- the runner -------------------------------------------------------------


class JobRunner:
    """Runs protection jobs over an execution backend with shared caching.

    Parameters
    ----------
    backend:
        Backend name (``serial`` / ``thread`` / ``process``) or a
        pre-built :class:`~repro.service.backends.ExecutionBackend`.
    max_workers:
        Pool-size cap for the pooled backends.
    cache_path:
        Location of the shared persistent evaluation cache; ``None``
        disables persistent caching (the in-process memo cache of each
        evaluator still applies).
    cache_max_entries:
        LRU bound applied by every worker-opened cache handle; ``None``
        keeps the cache unbounded.  Eviction never changes scores — an
        evicted entry is recomputed, raising only ``fresh_evaluations``.
    checkpoint_dir:
        When set (together with a positive ``checkpoint_every``), every
        job writes periodic checkpoints to
        ``<checkpoint_dir>/<job_id>.json`` and can be resumed.
    checkpoint_every:
        Generations between checkpoint writes; 0 disables.
    eval_workers / eval_backend:
        Default in-run parallel-evaluation setting applied to jobs that
        did not pin their own ``eval_workers``: with ``eval_workers >=
        2``, each run's evaluator fans fresh evaluation batches out
        over that many ``thread`` or ``process`` workers.  Evaluation
        is pure — these change throughput, never results.
    store:
        The job store island-group jobs exchange migrants and durable
        segment checkpoints through.  In-process backends reach the
        exact live object (weak registry); the process backend falls
        back to reopening from the store's spec.  Plain jobs never
        touch it; island jobs without it fail with a clear error.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "serial",
        max_workers: int | None = None,
        cache_path: str | None = None,
        cache_max_entries: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        eval_workers: int = 0,
        eval_backend: str = "thread",
        store: object | None = None,
    ) -> None:
        if checkpoint_every < 0:
            raise ServiceError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if cache_max_entries is not None and cache_max_entries < 1:
            raise ServiceError(
                f"cache_max_entries must be >= 1, got {cache_max_entries}"
            )
        if eval_workers < 0:
            raise ServiceError(f"eval_workers must be >= 0, got {eval_workers}")
        if eval_backend not in ("thread", "process"):
            raise ServiceError(
                f"eval_backend must be 'thread' or 'process', got {eval_backend!r}"
            )
        self.backend = create_backend(backend, max_workers)
        self.cache_path = str(cache_path) if cache_path else ""
        self.cache_max_entries = cache_max_entries
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else ""
        self.checkpoint_every = checkpoint_every
        self.eval_workers = int(eval_workers)
        self.eval_backend = eval_backend
        self.store = store
        self._store_ref = register_store(store) if store is not None else ""
        self._store_spec, self._store_token = (
            store_spec_of(store) if store is not None else ("", "")
        )

    # -- payload plumbing ---------------------------------------------------

    def checkpoint_path(self, job: ProtectionJob) -> str:
        """Where this runner checkpoints ``job`` ('' when disabled)."""
        if not self.checkpoint_dir:
            return ""
        from pathlib import Path

        return str(Path(self.checkpoint_dir) / f"{job.job_id}.json")

    def _payload(
        self, job: ProtectionJob, resume: bool, trace_ctx: dict | None = None
    ) -> dict:
        return {
            "job": job.to_dict(),
            "cache_path": self.cache_path,
            "cache_max_entries": self.cache_max_entries,
            "checkpoint_path": self.checkpoint_path(job),
            "checkpoint_every": self.checkpoint_every,
            "resume": resume,
            "eval_workers": self.eval_workers,
            "eval_backend": self.eval_backend,
            # Trace context crosses the (possibly process) backend
            # boundary inside the payload; None for untraced jobs.
            "trace": trace_ctx,
            # The job store, for island-group jobs: a live-object token
            # for in-process backends plus a reopenable spec fallback.
            "store_ref": self._store_ref,
            "store_spec": self._store_spec,
            "store_token": self._store_token,
        }

    # -- fan-out entry points ----------------------------------------------

    def run(
        self,
        jobs: Sequence[ProtectionJob],
        resume: bool = False,
        traces: Sequence[dict | None] | None = None,
    ) -> list[JobResult]:
        """Execute ``jobs`` over the backend; results in submission order.

        With ``resume=True`` every job must have an on-disk checkpoint
        (see ``checkpoint_dir``), and execution continues from it instead
        of re-scoring an initial population.  ``traces`` (one trace
        context or None per job, from the record's ``extras["trace"]``)
        makes the run record spans; they come back in each result's
        ``extras["trace_spans"]`` for the caller to pop and flush.
        """
        if not jobs:
            return []
        if traces is None:
            traces = [None] * len(jobs)
        payloads = [
            self._payload(job, resume, ctx) for job, ctx in zip(jobs, traces)
        ]
        return self.backend.map(_execute_job, payloads)

    def run_settled(
        self,
        jobs: Sequence[ProtectionJob],
        resume: bool = False,
        traces: Sequence[dict | None] | None = None,
    ) -> list[JobOutcome]:
        """Execute ``jobs``, settling each one's outcome individually.

        Unlike :meth:`run`, a failing job does not abort the fan-out:
        every job returns either its result or its error, in submission
        order.  This is what the CLI uses so completed replicates are
        never discarded because a sibling failed.
        """
        if not jobs:
            return []
        if traces is None:
            traces = [None] * len(jobs)
        payloads = [
            self._payload(job, resume, ctx) for job, ctx in zip(jobs, traces)
        ]
        settled = self.backend.map(_execute_job_settled, payloads)
        return [
            JobOutcome(
                job_id=job.job_id,
                result=JobResult.from_dict(out["result"]) if out["result"] else None,
                error=out["error"],
                trace_spans=tuple(out.get("trace_spans") or ()),
                parked=out.get("parked"),
            )
            for job, out in zip(jobs, settled)
        ]

    def run_replicates(self, job: ProtectionJob, seeds: Sequence[int]) -> list[JobResult]:
        """Fan one job out across run seeds (experiment replicates)."""
        if not seeds:
            raise ServiceError("run_replicates needs at least one seed")
        return self.run([job.with_seed(int(seed)) for seed in seeds])

    def grid(
        self,
        datasets: Sequence[str],
        scores: Sequence[str] = ("max",),
        seeds: Sequence[int] = (42,),
        **params: object,
    ) -> list[ProtectionJob]:
        """The method-comparison grid: datasets x score functions x seeds."""
        return [
            ProtectionJob(dataset=dataset, score=score, seed=int(seed), **params)  # type: ignore[arg-type]
            for dataset in datasets
            for score in scores
            for seed in seeds
        ]

    def run_grid(
        self,
        datasets: Sequence[str],
        scores: Sequence[str] = ("max",),
        seeds: Sequence[int] = (42,),
        **params: object,
    ) -> list[JobResult]:
        """Build and execute a comparison grid in one call."""
        return self.run(self.grid(datasets, scores, seeds, **params))

    def score_population(
        self,
        original: CategoricalDataset,
        protections: Sequence[CategoricalDataset],
        attributes: Sequence[str] | None = None,
        score: str = "max",
        batch_size: int | None = None,
    ) -> list[ProtectionScore]:
        """Score an initial population in parallel batches.

        The population is split into backend-sized batches, each scored
        by a worker-local evaluator that shares this runner's persistent
        cache; scores return in population order.
        """
        if not protections:
            return []
        attrs = tuple(attributes) if attributes is not None else original.attribute_names
        if batch_size is None:
            import os

            if isinstance(self.backend, SerialBackend):
                # One batch: no parallelism to feed, so no reason to pay
                # per-batch evaluator and cache-connection setup.
                workers = 1
            else:
                workers = getattr(self.backend, "max_workers", None) or os.cpu_count() or 1
            batch_size = max(1, -(-len(protections) // workers))
        batches = [
            tuple(protections[i : i + batch_size])
            for i in range(0, len(protections), batch_size)
        ]
        payloads = [
            (original, batch, attrs, score, self.cache_path) for batch in batches
        ]
        scored = self.backend.map(_score_batch, payloads)
        return [result for batch in scored for result in batch]

    def __repr__(self) -> str:
        return (
            f"JobRunner(backend={self.backend.name!r}, cache={self.cache_path!r}, "
            f"checkpoint_every={self.checkpoint_every})"
        )
