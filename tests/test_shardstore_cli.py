"""The sharded fleet through the CLI: submit/worker/status/top/serve/migrate."""

from __future__ import annotations

import json

from repro.cli import main
from repro.service import ProtectionJob, ShardedJobStore, store_from_spec


def _spec(tmp_path) -> str:
    return (f"shard:sqlite:{tmp_path / 'a.sqlite'},"
            f"sqlite:{tmp_path / 'b.sqlite'}")


def _store(tmp_path) -> ShardedJobStore:
    return store_from_spec(_spec(tmp_path), state_dir=tmp_path / "spool")


class TestShardedFleetCli:
    def test_detached_submit_lands_on_rendezvous_homes(self, tmp_path, capsys):
        assert main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seeds", "1,2,3,4", "--detach",
                     "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        assert "queued 4 job(s)" in capsys.readouterr().out
        store = _store(tmp_path)
        records = store.records()
        assert len(records) == 4
        homes = {store.shard_name_for(r.job_id) for r in records}
        assert len(homes) == 2  # four seeds spread over both shards

    def test_worker_once_drains_both_shards(self, tmp_path, capsys):
        assert main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seeds", "1,2", "--detach", "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        capsys.readouterr()
        assert main(["worker", "--once", "--no-cache", "--capacity", "2",
                     "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        assert "ran 2 job(s)" in capsys.readouterr().out
        store = _store(tmp_path)
        assert all(r.status == "completed" for r in store.records())
        assert store.claimed_job_ids() == []

    def test_status_shows_a_shard_column(self, tmp_path, capsys):
        store = _store(tmp_path)
        job = ProtectionJob(dataset="flare", generations=2, seed=5)
        store.submit(job)
        assert main(["status", "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert f"sqlite:{tmp_path / 'a.sqlite'}" in out or \
            f"sqlite:{tmp_path / 'b.sqlite'}" in out

    def test_status_json_carries_the_shard(self, tmp_path, capsys):
        store = _store(tmp_path)
        job = ProtectionJob(dataset="flare", generations=2, seed=5)
        store.submit(job)
        assert main(["status", "--json", "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["shard"] == store.shard_name_for(job.job_id)
        capsys.readouterr()
        assert main(["status", "--json", "--job", job.job_id,
                     "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        single = json.loads(capsys.readouterr().out)
        assert single["shard"] == store.shard_name_for(job.job_id)

    def test_top_groups_by_shard(self, tmp_path, capsys):
        store = _store(tmp_path)
        for seed in range(6):
            store.submit(ProtectionJob(dataset="flare", generations=2,
                                       seed=seed))
        assert main(["top", "--json", "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap["shards"]) == set(store.shard_names)
        assert sum(s["queued"] for s in snap["shards"].values()) == 6
        assert all(s["available"] for s in snap["shards"].values())
        capsys.readouterr()
        assert main(["top", "--store", _spec(tmp_path),
                     "--state-dir", str(tmp_path / "spool")]) == 0
        rendered = capsys.readouterr().out
        assert "shards" in rendered and "queued" in rendered

    def test_migrate_single_store_into_fleet_with_progress(self, tmp_path,
                                                           capsys):
        source = store_from_spec(f"sqlite:{tmp_path / 'old.sqlite'}")
        for seed in range(5):
            source.submit(ProtectionJob(dataset="flare", generations=2,
                                        seed=seed))
        assert main(["migrate", "--from", f"sqlite:{tmp_path / 'old.sqlite'}",
                     "--to", _spec(tmp_path), "--chunk-size", "2",
                     "--log-json"]) == 0
        captured = capsys.readouterr()
        assert "migrated 5 job record(s)" in captured.out
        progress = [json.loads(line) for line in captured.err.splitlines()
                    if '"migrate_progress"' in line]
        assert [p["records"] for p in progress] == [2, 4, 5]
        assert len(_store(tmp_path).records()) == 5


class TestServeShardOf:
    def test_serves_the_indexed_child_of_the_fleet_spec(self, tmp_path,
                                                        capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.service.netstore.JobStoreServer.serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        assert main(["serve", "--port", "0", "--token", "t",
                     "--shard-of", _spec(tmp_path), "--shard-index", "1"]) == 0
        out = capsys.readouterr().out
        assert f"serving shard 1 (sqlite:{tmp_path / 'b.sqlite'})" in out
        assert (tmp_path / "b.sqlite").exists()
        assert not (tmp_path / "a.sqlite").exists()

    def test_accepts_a_manifest_and_bare_bodies(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setattr(
            "repro.service.netstore.JobStoreServer.serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({"shards": [
            {"name": "east", "spec": f"sqlite:{tmp_path / 'east.sqlite'}"},
        ]}), encoding="utf-8")
        assert main(["serve", "--port", "0", "--token", "t",
                     "--shard-of", f"@{manifest}"]) == 0
        assert "serving shard 0 (east)" in capsys.readouterr().out

    def test_rejects_out_of_range_index(self, tmp_path, capsys):
        code = main(["serve", "--shard-of", _spec(tmp_path),
                     "--shard-index", "7"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_rejects_http_children(self, tmp_path, capsys):
        code = main(["serve",
                     "--shard-of", "shard:http://fleet:8642,sqlite:a.db"])
        assert code == 2
        assert "already served" in capsys.readouterr().err

    def test_rejects_db_and_state_dir(self, tmp_path, capsys):
        code = main(["serve", "--shard-of", _spec(tmp_path),
                     "--db", str(tmp_path / "x.sqlite")])
        assert code == 2
        assert "--shard-of" in capsys.readouterr().err
