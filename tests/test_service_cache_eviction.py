"""LRU eviction and schema migration of the bounded evaluation cache."""

from __future__ import annotations

import sqlite3

import pytest

from repro.exceptions import ServiceError
from repro.metrics import ProtectionScore
from repro.service import EvaluationCache, JobRunner, ProtectionJob


def _score(value: float = 1.0) -> ProtectionScore:
    return ProtectionScore(
        information_loss=value,
        disclosure_risk=2 * value,
        score=2 * value,
        il_components={},
        dr_components={},
    )


class TestBound:
    def test_put_never_exceeds_bound(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite", max_entries=3)
        for i in range(10):
            cache.put(f"k{i}", _score(float(i)))
            assert len(cache) <= 3
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_bound_keeps_most_recently_written(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite", max_entries=2)
        for i in range(4):
            cache.put(f"k{i}", _score(float(i)))
        assert cache.get("k0") is None and cache.get("k1") is None
        assert cache.get("k2") is not None and cache.get("k3") is not None

    def test_get_refreshes_lru_position(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite", max_entries=3)
        cache.put("a", _score(1.0))
        cache.put("b", _score(2.0))
        cache.put("c", _score(3.0))
        assert cache.get("a") is not None  # a is now most recently used
        cache.put("d", _score(4.0))  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None and cache.get("d") is not None

    def test_bad_bound_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="max_entries"):
            EvaluationCache(tmp_path / "cache.sqlite", max_entries=0)

    def test_unbounded_hits_do_not_write(self, tmp_path):
        # The unbounded read path must stay write-free: hits leave
        # accessed_at at its write-time value.
        path = tmp_path / "cache.sqlite"
        cache = EvaluationCache(path)
        cache.put("k", _score())
        (written_at,) = cache._conn.execute(
            "SELECT accessed_at FROM evaluations WHERE key = 'k'"
        ).fetchone()
        assert cache.get("k") is not None
        (after_hit,) = cache._conn.execute(
            "SELECT accessed_at FROM evaluations WHERE key = 'k'"
        ).fetchone()
        assert after_hit == written_at


class TestSharedFileBound:
    def test_other_handles_inserts_count_against_the_bound(self, tmp_path):
        # Regression: the in-memory entry count is per handle, so a
        # bounded handle must periodically re-sync with the real COUNT
        # or inserts from other worker processes never trigger
        # eviction and the shared file grows without limit.
        path = tmp_path / "cache.sqlite"
        bounded = EvaluationCache(path, max_entries=10)
        bounded._COUNT_SYNC_EVERY = 1  # sync on every put, for the test
        other = EvaluationCache(path)  # an unbounded sibling handle
        for i in range(25):
            other.put(f"other-{i}", _score(float(i)))
        bounded.put("mine", _score())
        assert len(bounded) <= 10
    def test_manual_evict_to_bound(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        for i in range(5):
            cache.put(f"k{i}", _score(float(i)))
        assert cache.evict(2) == 3
        assert len(cache) == 2

    def test_evict_below_bound_is_noop(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        cache.put("k", _score())
        assert cache.evict(10) == 0
        assert len(cache) == 1

    def test_evict_uses_instance_bound(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite", max_entries=2)
        assert cache.evict() == 0

    def test_evict_without_any_bound_rejected(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        with pytest.raises(ServiceError, match="max_entries"):
            cache.evict()

    def test_evict_to_zero_empties_store(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        cache.put("k", _score())
        assert cache.evict(0) == 1
        assert len(cache) == 0


class TestMigration:
    def test_pre_accessed_at_store_is_migrated(self, tmp_path):
        # Build a cache file with the PR-1 schema (no accessed_at).
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE evaluations (key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO evaluations (key, payload) VALUES (?, ?)",
            ("old-key", '{"information_loss": 1.0, "disclosure_risk": 2.0, '
                        '"score": 2.0, "il_components": {}, "dr_components": {}}'),
        )
        conn.commit()
        conn.close()

        with EvaluationCache(path, max_entries=5) as cache:
            assert cache.get("old-key") == _score(1.0)
            cache.put("new-key", _score(2.0))
            assert len(cache) == 2

    def test_migrated_untouched_rows_evict_first(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE evaluations (key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        payload = ('{"information_loss": 1.0, "disclosure_risk": 2.0, "score": 2.0, '
                   '"il_components": {}, "dr_components": {}}')
        for key in ("legacy-1", "legacy-2"):
            conn.execute(
                "INSERT INTO evaluations (key, payload) VALUES (?, ?)", (key, payload)
            )
        conn.commit()
        conn.close()

        cache = EvaluationCache(path, max_entries=2)
        cache.put("fresh", _score())
        # Legacy rows carry accessed_at=0, so they are the LRU victims
        # in insertion order: legacy-1 goes first.
        assert cache.get("legacy-1") is None
        assert cache.get("fresh") is not None


class TestEvictionNeverChangesScores:
    def test_warm_rerun_against_evicted_cache_is_byte_identical(self, tmp_path):
        # Acceptance: eviction only costs recomputation. A bounded cache
        # re-run yields identical scores with more fresh evaluations
        # than a fully-warm re-run would have needed.
        job = ProtectionJob(dataset="adult", generations=1, seed=11)
        cache_path = str(tmp_path / "cache.sqlite")

        (cold,) = JobRunner(cache_path=cache_path).run([job])
        (warm,) = JobRunner(cache_path=cache_path).run([job])
        assert warm.final_scores == cold.final_scores
        assert warm.fresh_evaluations < cold.fresh_evaluations

        with EvaluationCache(cache_path) as cache:
            assert cache.evict(5) > 0

        (evicted,) = JobRunner(cache_path=cache_path, cache_max_entries=5).run([job])
        assert evicted.final_scores == cold.final_scores
        assert evicted.best_score == cold.best_score
        assert evicted.fresh_evaluations > warm.fresh_evaluations
