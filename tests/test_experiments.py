"""Integration tests for the experiment harness (small generation budgets)."""

from __future__ import annotations

import pytest

from repro.core import Individual
from repro.exceptions import ExperimentError
from repro.experiments import (
    EXPERIMENT1_FIGURES,
    EXPERIMENT2_FIGURES,
    EXPERIMENT3_FRACTIONS,
    ExperimentConfig,
    dispersion_data,
    drop_best,
    experiment1_config,
    experiment2_config,
    experiment3_config,
    run_experiment,
)
from repro.metrics import ProtectionScore


class TestConfigs:
    def test_experiment1_uses_mean_score(self):
        assert experiment1_config("adult").score == "mean"

    def test_experiment2_uses_max_score(self):
        assert experiment2_config("adult").score == "max"

    def test_experiment3_is_flare_max_with_truncation(self):
        config = experiment3_config(0.05)
        assert config.dataset == "flare"
        assert config.score == "max"
        assert config.drop_best_fraction == 0.05

    def test_figure_indices_cover_paper(self):
        dispersions = {f["dispersion"] for f in EXPERIMENT1_FIGURES.values()}
        evolutions = {f["evolution"] for f in EXPERIMENT1_FIGURES.values()}
        assert dispersions == {1, 3, 5, 7}
        assert evolutions == {2, 4, 6, 8}
        dispersions2 = {f["dispersion"] for f in EXPERIMENT2_FIGURES.values()}
        assert dispersions2 == {9, 11, 13, 15}
        assert set(EXPERIMENT3_FRACTIONS) == {0.05, 0.10}

    def test_bad_drop_fraction(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(dataset="flare", drop_best_fraction=1.0)


class TestDropBest:
    def _individuals(self, adult, scores):
        return [Individual(adult, ProtectionScore(s, s, s)) for s in scores]

    def test_drops_expected_count(self, adult):
        individuals = self._individuals(adult, [10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
        kept, dropped = drop_best(individuals, 0.2)
        assert len(dropped) == 2
        assert {ind.score for ind in dropped} == {10, 20}
        assert min(ind.score for ind in kept) == 30

    def test_zero_fraction_keeps_all(self, adult):
        individuals = self._individuals(adult, [10, 20])
        kept, dropped = drop_best(individuals, 0.0)
        assert len(kept) == 2 and not dropped

    def test_always_keeps_two(self, adult):
        individuals = self._individuals(adult, [10, 20, 30])
        kept, __ = drop_best(individuals, 0.9)
        assert len(kept) >= 2


class TestRunExperiment:
    """End-to-end runs with tiny budgets (the benches do the real runs)."""

    @pytest.fixture(scope="class")
    def small_run(self):
        config = ExperimentConfig(dataset="adult", score="max", generations=12, seed=1)
        return run_experiment(config)

    def test_history_length(self, small_run):
        assert len(small_run.history) == 12

    def test_population_size_matches_paper(self, small_run):
        assert len(small_run.result.population) == 86

    def test_dispersion_clouds_have_population_size(self, small_run):
        data = dispersion_data(small_run.result)
        assert len(data.initial) == 86
        assert len(data.final) == 86

    def test_summary_rows_shape(self, small_run):
        rows = small_run.summary_rows()
        assert [row[0] for row in rows] == ["max", "mean", "min"]
        for row in rows:
            assert row[1] >= row[2]  # scores never worsen

    def test_truncated_run_drops_elites(self):
        config = ExperimentConfig(
            dataset="adult", score="max", generations=5, seed=1, drop_best_fraction=0.10
        )
        outcome = run_experiment(config)
        assert len(outcome.dropped) == round(86 * 0.10)
        assert len(outcome.result.population) == 86 - len(outcome.dropped)
        # Every dropped elite is at least as good as every kept initial.
        worst_dropped = max(ind.score for ind in outcome.dropped)
        best_kept = min(ind.score for ind in outcome.result.initial)
        assert worst_dropped <= best_kept + 1e-9
