"""Unit tests for the service job model (fingerprints, round-trips)."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.experiments.runner import ExperimentConfig
from repro.service import JobResult, ProtectionJob


class TestProtectionJob:
    def test_fingerprint_is_stable(self):
        a = ProtectionJob(dataset="adult", generations=50, seed=7)
        b = ProtectionJob(dataset="adult", generations=50, seed=7)
        assert a.fingerprint() == b.fingerprint()
        assert a.job_id == b.job_id

    def test_fingerprint_changes_with_any_field(self):
        base = ProtectionJob(dataset="adult", generations=50, seed=7)
        assert base.fingerprint() != base.with_seed(8).fingerprint()
        other = ProtectionJob(dataset="adult", generations=51, seed=7)
        assert base.fingerprint() != other.fingerprint()

    def test_job_id_names_dataset_and_seed(self):
        job = ProtectionJob(dataset="flare", seed=3)
        assert job.job_id.startswith("flare-s3-")

    def test_dict_roundtrip(self):
        job = ProtectionJob(dataset="german", score="mean", generations=10, seed=2)
        assert ProtectionJob.from_dict(job.to_dict()) == job

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            ProtectionJob.from_dict({"dataset": "adult", "bogus": 1})

    def test_config_roundtrip(self):
        config = ExperimentConfig(dataset="adult", score="max", generations=5, seed=9)
        job = ProtectionJob.from_config(config)
        assert job.to_config() == config

    def test_with_seed_preserves_everything_else(self):
        job = ProtectionJob(dataset="adult", score="mean", generations=77, seed=1)
        replica = job.with_seed(2)
        assert replica.seed == 2
        assert replica.dataset == job.dataset
        assert replica.score == job.score
        assert replica.generations == job.generations


class TestJobResult:
    def _result(self) -> JobResult:
        return JobResult(
            job_id="adult-s1-abc",
            dataset="adult",
            seed=1,
            generations=10,
            best_score=1.25,
            best_information_loss=1.0,
            best_disclosure_risk=1.5,
            final_scores=(1.25, 2.5, 3.75),
            mean_improvement_percent=12.5,
            fresh_evaluations=90,
            memo_hits=4,
            persistent_hits=2,
            wall_seconds=1.5,
        )

    def test_dict_roundtrip_preserves_scores_exactly(self):
        result = self._result()
        back = JobResult.from_dict(result.to_dict())
        assert back == result
        assert back.final_scores == (1.25, 2.5, 3.75)

    def test_json_roundtrip_preserves_floats(self):
        import json

        result = self._result()
        back = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.final_scores == result.final_scores
        assert back.best_score == result.best_score
