"""Unit tests for Population, EvolutionHistory and stopping rules."""

from __future__ import annotations

import pytest

from repro.core import (
    AnyOf,
    EvolutionHistory,
    GenerationRecord,
    Individual,
    MaxGenerations,
    Population,
    Stagnation,
    TargetScore,
)
from repro.exceptions import EvolutionError
from repro.metrics import ProtectionScore


def individual(dataset, il: float, dr: float) -> Individual:
    return Individual(dataset, ProtectionScore(il, dr, max(il, dr)))


def record(generation: int, max_s: float, mean_s: float, min_s: float, **kwargs) -> GenerationRecord:
    defaults = dict(
        operator="mutation", evaluations=1, fitness_seconds=0.01, other_seconds=0.001, accepted=True
    )
    defaults.update(kwargs)
    return GenerationRecord(generation, defaults["operator"], max_s, mean_s, min_s,
                            defaults["evaluations"], defaults["fitness_seconds"],
                            defaults["other_seconds"], defaults["accepted"])


class TestPopulation:
    def test_empty_rejected(self):
        with pytest.raises(EvolutionError):
            Population([])

    def test_best_worst(self, adult):
        pop = Population([individual(adult, 30, 30), individual(adult, 10, 10),
                          individual(adult, 20, 20)])
        assert pop.best().score == 10
        assert pop.worst().score == 30

    def test_leaders(self, adult):
        pop = Population([individual(adult, s, s) for s in (30, 10, 20, 40)])
        assert pop.leaders(2) == [1, 2]

    def test_leaders_bad_count(self, adult):
        with pytest.raises(EvolutionError):
            Population([individual(adult, 1, 1)]).leaders(0)

    def test_replace(self, adult):
        pop = Population([individual(adult, 30, 30)])
        pop.replace(0, individual(adult, 5, 5))
        assert pop.best().score == 5

    def test_replace_out_of_range(self, adult):
        with pytest.raises(EvolutionError):
            Population([individual(adult, 1, 1)]).replace(3, individual(adult, 1, 1))

    def test_score_summary(self, adult):
        pop = Population([individual(adult, s, s) for s in (10, 20, 30)])
        assert pop.score_summary() == (30.0, 20.0, 10.0)

    def test_dispersion(self, adult):
        pop = Population([individual(adult, 10, 30)])
        assert pop.dispersion() == [(10.0, 30.0)]

    def test_mean_imbalance(self, adult):
        pop = Population([individual(adult, 10, 30), individual(adult, 20, 20)])
        assert pop.mean_imbalance() == 10.0

    def test_snapshot_independent(self, adult):
        pop = Population([individual(adult, 10, 10)])
        snap = pop.snapshot()
        pop.replace(0, individual(adult, 99, 99))
        assert snap[0].score == 10


class TestHistory:
    def test_series_accessors(self):
        history = EvolutionHistory()
        history.append(record(1, 50, 30, 10))
        history.append(record(2, 45, 28, 10))
        assert history.generations == [1, 2]
        assert history.max_scores == [50, 45]
        assert history.mean_scores == [30, 28]
        assert history.min_scores == [10, 10]

    def test_improvement(self):
        history = EvolutionHistory()
        history.append(record(1, 50, 40, 30))
        history.append(record(2, 40, 30, 30))
        initial, final, percent = history.improvement("max")
        assert (initial, final) == (50, 40)
        assert percent == pytest.approx(20.0)

    def test_improvement_empty_raises(self):
        with pytest.raises(ValueError):
            EvolutionHistory().improvement("max")

    def test_operator_timing_split(self):
        history = EvolutionHistory()
        history.append(record(1, 1, 1, 1, operator="mutation", fitness_seconds=0.2))
        history.append(record(2, 1, 1, 1, operator="crossover", fitness_seconds=0.4))
        history.append(record(3, 1, 1, 1, operator="crossover", fitness_seconds=0.6))
        timing = history.operator_timing()
        assert timing["mutation"]["generations"] == 1
        assert timing["crossover"]["generations"] == 2
        assert timing["crossover"]["fitness_seconds"] == pytest.approx(0.5)

    def test_acceptance_rate(self):
        history = EvolutionHistory()
        history.append(record(1, 1, 1, 1, accepted=True))
        history.append(record(2, 1, 1, 1, accepted=False))
        assert history.acceptance_rate() == 0.5

    def test_acceptance_rate_empty(self):
        assert EvolutionHistory().acceptance_rate() == 0.0


class TestStoppingRules:
    def _history(self, means: list[float]) -> EvolutionHistory:
        history = EvolutionHistory()
        for i, mean in enumerate(means, start=1):
            history.append(record(i, mean + 10, mean, mean - 10))
        return history

    def test_max_generations(self):
        rule = MaxGenerations(3)
        assert not rule.should_stop(self._history([30, 29]))
        assert rule.should_stop(self._history([30, 29, 28]))

    def test_max_generations_validation(self):
        with pytest.raises(EvolutionError):
            MaxGenerations(0)

    def test_stagnation_fires_on_plateau(self):
        rule = Stagnation(patience=3, min_delta=0.1)
        improving = self._history([30, 28, 26, 24, 22])
        assert not rule.should_stop(improving)
        plateau = self._history([30, 25, 25, 25, 25])
        assert rule.should_stop(plateau)

    def test_stagnation_needs_enough_history(self):
        rule = Stagnation(patience=10)
        assert not rule.should_stop(self._history([30, 30, 30]))

    def test_target_score(self):
        rule = TargetScore(15.0)
        assert not rule.should_stop(self._history([30]))
        assert rule.should_stop(self._history([30, 24]))  # min = 24-10 = 14

    def test_any_of(self):
        rule = AnyOf([MaxGenerations(2), TargetScore(0.0)])
        assert not rule.should_stop(self._history([30]))
        assert rule.should_stop(self._history([30, 29]))

    def test_any_of_empty(self):
        with pytest.raises(EvolutionError):
            AnyOf([])
