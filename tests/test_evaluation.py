"""Unit tests for ProtectionEvaluator and ProtectionScore."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics import (
    MaxScore,
    MeanScore,
    ProtectionEvaluator,
    ProtectionScore,
    default_dr_measures,
    default_il_measures,
)
from repro.methods import Pram

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestProtectionScore:
    def test_is_better_than(self):
        good = ProtectionScore(10, 10, 10)
        bad = ProtectionScore(30, 30, 30)
        assert good.is_better_than(bad)
        assert not bad.is_better_than(good)
        assert not good.is_better_than(good)

    def test_imbalance(self):
        assert ProtectionScore(10, 25, 25).imbalance() == 15

    def test_str_mentions_components(self):
        text = str(ProtectionScore(10.0, 20.0, 20.0))
        assert "IL=10.00" in text and "DR=20.00" in text


class TestDefaults:
    def test_paper_measure_stacks(self, small_adult):
        il = default_il_measures(small_adult, ATTRS)
        dr = default_dr_measures(small_adult, ATTRS)
        assert [m.measure_name for m in il] == ["ctbil", "dbil", "ebil"]
        assert [m.measure_name for m in dr] == ["interval_disclosure", "dbrl", "prl", "rsrl"]

    def test_default_score_is_max(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        assert evaluator.score_function.score_name == "max"


class TestEvaluate:
    def test_components_average_to_aggregates(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        score = evaluator.evaluate(masked)
        assert score.information_loss == pytest.approx(
            sum(score.il_components.values()) / len(score.il_components)
        )
        assert score.disclosure_risk == pytest.approx(
            sum(score.dr_components.values()) / len(score.dr_components)
        )

    def test_score_function_applied(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        mean_eval = ProtectionEvaluator(small_adult, ATTRS, score_function=MeanScore())
        max_eval = ProtectionEvaluator(small_adult, ATTRS, score_function=MaxScore())
        mean_score = mean_eval.evaluate(masked)
        max_score = max_eval.evaluate(masked)
        assert mean_score.score == pytest.approx(
            (mean_score.information_loss + mean_score.disclosure_risk) / 2
        )
        assert max_score.score == pytest.approx(
            max(max_score.information_loss, max_score.disclosure_risk)
        )

    def test_identity_has_zero_il(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        score = evaluator.evaluate(small_adult)
        assert score.information_loss == 0.0
        assert score.disclosure_risk > 0.0

    def test_rescore_changes_only_aggregation(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        max_eval = ProtectionEvaluator(small_adult, ATTRS, score_function=MaxScore())
        mean_eval = ProtectionEvaluator(small_adult, ATTRS, score_function=MeanScore())
        original = max_eval.evaluate(masked)
        rescored = mean_eval.rescore(original)
        assert rescored.information_loss == original.information_loss
        assert rescored.disclosure_risk == original.disclosure_risk
        assert rescored.score == pytest.approx(
            (original.information_loss + original.disclosure_risk) / 2
        )

    def test_needs_measures(self, small_adult):
        with pytest.raises(MetricError):
            ProtectionEvaluator(small_adult, ATTRS, il_measures=[], dr_measures=None)


class TestCaching:
    def test_cache_hit_on_identical_content(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        first = evaluator.evaluate(masked)
        clone = masked.with_codes(masked.codes_copy(), name="clone")
        second = evaluator.evaluate(clone)
        assert second is first
        assert evaluator.cache_hits == 1
        assert evaluator.evaluations == 1

    def test_cache_disabled(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS, cache_size=0)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        evaluator.evaluate(masked)
        evaluator.evaluate(masked)
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 0

    def test_cache_eviction(self, small_adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS, cache_size=2)
        maskings = [Pram(theta=0.3).protect(small_adult, ATTRS, seed=s) for s in range(3)]
        for masked in maskings:
            evaluator.evaluate(masked)
        assert evaluator.cache_info()["size"] == 2
        # Oldest entry evicted: evaluating it again is a miss.
        evaluator.evaluate(maskings[0])
        assert evaluator.evaluations == 4

    def test_negative_cache_size_rejected(self, small_adult):
        with pytest.raises(MetricError):
            ProtectionEvaluator(small_adult, ATTRS, cache_size=-1)
