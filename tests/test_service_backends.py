"""Execution-backend semantics: order, parallelism, error propagation."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)


def _square(x: int) -> int:
    # Module-level so the process backend can pickle it.
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom on {x}")


ALL_BACKENDS = [SerialBackend(), ThreadBackend(max_workers=2), ProcessBackend(max_workers=2)]


class TestBackendSemantics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_map_preserves_order(self, backend):
        items = list(range(10))
        assert backend.map(_square, items) == [x * x for x in items]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_empty_input(self, backend):
        assert backend.map(_square, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_errors_propagate(self, backend):
        with pytest.raises(ValueError, match="boom"):
            backend.map(_boom, [1, 2])


class TestCreateBackend:
    def test_resolves_all_names(self):
        for name in BACKENDS:
            assert create_backend(name).name == name

    def test_passthrough_instance(self):
        backend = ThreadBackend(max_workers=3)
        assert create_backend(backend) is backend

    def test_instance_with_max_workers_rejected(self):
        # Regression: max_workers used to be silently ignored here,
        # misleading callers about the pool size they were getting.
        with pytest.raises(ServiceError, match="pre-built"):
            create_backend(ThreadBackend(max_workers=3), max_workers=8)

    def test_unknown_name_rejected(self):
        with pytest.raises(ServiceError, match="unknown backend"):
            create_backend("quantum")

    def test_serial_rejects_workers(self):
        with pytest.raises(ServiceError):
            create_backend("serial", max_workers=4)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ServiceError):
            ThreadBackend(max_workers=0)
