"""The job-store contract, as one executable battery.

Every test in this module runs once per backend via the
``store_harness`` fixture: against the file-backed :class:`JobStore`,
against the transactional :class:`SqliteJobStore`, and against a
:class:`RemoteJobStore` talking to a live in-process
:class:`JobStoreServer` over real HTTP fronting each of the two local
backends.  The suite *is* the claim protocol's contract — submit
idempotency, claim exclusivity, batch claims, owner-checked release,
heartbeat refresh, stale recovery, checkpoint blobs, and identical
exception types — so a change that breaks any implementation fails
here before it reaches a fleet.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ServiceError, WorkerError
from repro.service import JobRecord, JobResult, ProtectionJob
from repro.service.store import STORE_PROTOCOL


def _job(seed: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=5, seed=seed)


def _result(job: ProtectionJob) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        dataset=job.dataset,
        seed=job.seed,
        generations=job.generations,
        best_score=1.0,
        best_information_loss=1.0,
        best_disclosure_risk=1.0,
        final_scores=(1.0, 2.0),
        mean_improvement_percent=5.0,
        fresh_evaluations=10,
        memo_hits=1,
        persistent_hits=0,
        wall_seconds=0.1,
    )


class TestProtocolSurface:
    def test_store_exposes_every_contract_method(self, store_harness):
        for name in STORE_PROTOCOL:
            assert callable(getattr(store_harness.store, name)), name

    def test_store_exposes_worker_locations(self, store_harness):
        # Workers build runners from these; both stores must provide them.
        store = store_harness.store
        assert store.checkpoints_dir.is_dir()
        assert store.cache_path.parent.is_dir()


class TestSubmitIdempotency:
    def test_submit_queues_and_roundtrips(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        assert record.status == "queued"
        loaded = store.get(record.job_id)
        assert loaded.job == record.job
        assert loaded.submitted_at == pytest.approx(record.submitted_at)

    def test_resubmit_queued_returns_existing(self, store_harness):
        store = store_harness.store
        first = store.submit(_job())
        again = store.submit(_job())
        assert again.status == "queued"
        assert again.submitted_at == pytest.approx(first.submitted_at)

    def test_resubmit_running_never_resets(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        again = store.submit(_job())
        assert again.status == "running"
        assert again.started_at is not None

    def test_resubmit_completed_keeps_result(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_completed(record, _result(record.job))
        again = store.submit(_job())
        assert again.status == "completed"
        assert again.result is not None
        assert again.result.final_scores == (1.0, 2.0)

    def test_submit_extras_land_in_the_initial_write(self, store_harness):
        # The cadence must be claimable-with the record from instant
        # one; a second save would race the first worker to claim it.
        store = store_harness.store
        record = store.submit(_job(), extras={"checkpoint_every": 9})
        assert record.extras == {"checkpoint_every": 9}
        assert store.get(record.job_id).extras == {"checkpoint_every": 9}
        # Resubmission keeps the original extras.
        again = store.submit(_job(), extras={"checkpoint_every": 1})
        assert again.extras == {"checkpoint_every": 9}

    def test_resubmit_failed_requeues_and_drops_leftover_claim(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.claim(record.job_id, owner="crashed-worker")
        store.mark_failed(record, "boom")
        again = store.submit(_job())
        assert again.status == "queued" and again.error == ""
        assert store.claimed_job_ids() == []
        assert store.claim(record.job_id, owner="next-worker") is True


class TestRecordOps:
    def test_get_unknown_raises_service_error(self, store_harness):
        store = store_harness.store
        with pytest.raises(ServiceError, match="unknown job"):
            store.get("nope")
        assert store.get("nope", missing_ok=True) is None

    def test_records_sorted_by_submission(self, store_harness):
        store = store_harness.store
        first = store.submit(_job(1))
        second = store.submit(_job(2))
        first.submitted_at, second.submitted_at = 200.0, 100.0
        store.save(first)
        store.save(second)
        assert [r.job_id for r in store.records()] == [second.job_id, first.job_id]

    def test_queued_filters_other_statuses(self, store_harness):
        store = store_harness.store
        queued = store.submit(_job(1))
        done = store.submit(_job(2))
        store.mark_completed(done, _result(done.job))
        assert [r.job_id for r in store.queued()] == [queued.job_id]

    def test_save_rejects_unknown_status(self, store_harness):
        record = JobRecord(job=_job(), status="exploded")
        with pytest.raises(ServiceError):
            store_harness.store.save(record)

    def test_update_roundtrips_extras(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        record.extras["checkpoint_every"] = 7
        store.save(record)
        assert store.get(record.job_id).extras == {"checkpoint_every": 7}


class TestTransitions:
    def test_mark_running_updates_caller_and_store(self, store_harness):
        # The local store mutates the caller's record in place; the
        # remote store must mirror the server's view back identically,
        # or a later save would clobber server-set timestamps.
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        assert record.status == "running" and record.started_at is not None
        loaded = store.get(record.job_id)
        assert loaded.status == "running"
        assert loaded.started_at == pytest.approx(record.started_at)

    def test_mark_completed_roundtrips_result(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        store.mark_completed(record, _result(record.job))
        loaded = store.get(record.job_id)
        assert loaded.status == "completed"
        assert loaded.result.final_scores == (1.0, 2.0)
        assert record.result is not None

    def test_mark_failed_records_error(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_failed(record, "worker exploded")
        assert store.get(record.job_id).error == "worker exploded"
        assert record.status == "failed"

    def test_stale_failure_never_clobbers_completed_result(self, store_harness):
        # A worker whose claim was stale-recovered may report failure
        # after the takeover worker completed the job; the finished
        # result wins, and the stale caller learns the truth.
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        stale_view = store.get(record.job_id)
        store.mark_completed(record, _result(record.job))
        store.mark_failed(stale_view, "stale worker reporting in")
        loaded = store.get(record.job_id)
        assert loaded.status == "completed"
        assert loaded.result is not None and loaded.error == ""
        assert stale_view.status == "completed"

    def test_requeue_clears_attempt_state(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        store.claim(record.job_id, owner="w")
        requeued = store.requeue(record)
        assert requeued.status == "queued"
        assert requeued.started_at is None and requeued.error == ""
        assert store.claimed_job_ids() == []

    def test_requeue_completed_refused_with_worker_error(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_completed(record, _result(record.job))
        with pytest.raises(WorkerError, match="refusing to requeue"):
            store.requeue(record)

    def test_requeue_checks_current_status_not_snapshot(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_running(record)
        stale_view = store.get(record.job_id)
        store.mark_completed(record, _result(record.job))
        with pytest.raises(WorkerError, match="refusing to requeue"):
            store.requeue(stale_view)
        assert store.get(record.job_id).status == "completed"


class TestClaimExclusivity:
    def test_claim_has_exactly_one_winner(self, store_harness):
        store = store_harness.store
        assert store.claim("j1", owner="a") is True
        assert store.claim("j1", owner="b") is False
        store.release("j1")
        assert store.claim("j1", owner="b") is True

    def test_claim_info_records_owner_and_liveness(self, store_harness):
        store = store_harness.store
        store.claim("j1", owner="worker-7")
        info = store.claim_info("j1")
        assert info["owner"] == "worker-7"
        assert info["claimed_at"] > 0
        assert info["last_seen"] >= info["claimed_at"]
        assert store.claim_info("unclaimed") is None

    def test_claimed_job_ids_sorted(self, store_harness):
        store = store_harness.store
        store.claim("b")
        store.claim("a")
        assert store.claimed_job_ids() == ["a", "b"]

    def test_reclaim_by_same_owner_is_idempotent(self, store_harness):
        # A retried network claim whose first response was lost must not
        # orphan the claim: asking again with the same identity says
        # "yes, you still own it".
        store = store_harness.store
        assert store.claim("j1", owner="worker-a") is True
        assert store.claim("j1", owner="worker-a") is True
        assert store.claim("j1", owner="worker-b") is False
        assert store.claim_info("j1")["owner"] == "worker-a"

    def test_anonymous_claims_stay_strictly_exclusive(self, store_harness):
        store = store_harness.store
        assert store.claim("j1") is True
        assert store.claim("j1") is False

    def test_claims_bulk_view_matches_claim_info(self, store_harness):
        store = store_harness.store
        store.claim("a", owner="w1")
        store.claim("b", owner="w2")
        bulk = store.claims()
        assert sorted(bulk) == ["a", "b"]
        for job_id, info in bulk.items():
            assert info["owner"] == store.claim_info(job_id)["owner"]
        store.release("a")
        assert sorted(store.claims()) == ["b"]


class TestOwnerCheckedRelease:
    def test_wrong_owner_cannot_release(self, store_harness):
        store = store_harness.store
        store.claim("j1", owner="worker-a")
        assert store.release("j1", owner="worker-b") is False
        assert store.claimed_job_ids() == ["j1"]
        assert store.release("j1", owner="worker-a") is True
        assert store.claimed_job_ids() == []

    def test_release_is_idempotent(self, store_harness):
        store = store_harness.store
        assert store.release("never-claimed") is False
        store.claim("j1", owner="a")
        assert store.release("j1") is True
        assert store.release("j1") is False

    def test_unowned_release_is_unconditional(self, store_harness):
        store = store_harness.store
        store.claim("j1", owner="worker-a")
        assert store.release("j1") is True

    def test_torn_claim_is_left_alone_by_owner_gates(self, store_harness):
        # A claim caught mid-rewrite (its true holder's heartbeat is
        # between truncate and write) has an unreadable owner; guessing
        # would let a stale worker unlink a live claim, so both
        # owner-gated operations refuse.  Unconditional release — the
        # recovery path — still works.
        store_harness.tear_claim("j1")
        store = store_harness.store
        assert store.release("j1", owner="anyone") is False
        assert store.heartbeat("j1", owner="anyone") is False
        assert "j1" in store.claimed_job_ids()
        assert store.release("j1") is True


class TestHeartbeat:
    def test_heartbeat_refreshes_last_seen(self, store_harness):
        store = store_harness.store
        store.claim("j1", owner="w")
        store_harness.age_claim("j1", seconds=500)
        aged = store.claim_info("j1")["last_seen"]
        assert store.heartbeat("j1", owner="w") is True
        refreshed = store.claim_info("j1")
        assert refreshed["last_seen"] > aged
        assert refreshed["last_seen"] == pytest.approx(time.time(), abs=5.0)
        # The original claim metadata survives the refresh.
        assert refreshed["owner"] == "w"
        assert refreshed["claimed_at"] == pytest.approx(time.time() - 500, abs=5.0)

    def test_heartbeat_is_owner_checked(self, store_harness):
        store = store_harness.store
        store.claim("j1", owner="worker-a")
        store_harness.age_claim("j1", seconds=500)
        before = store.claim_info("j1")["last_seen"]
        assert store.heartbeat("j1", owner="worker-b") is False
        assert store.claim_info("j1")["last_seen"] == pytest.approx(before)

    def test_heartbeat_without_claim_reports_loss(self, store_harness):
        assert store_harness.store.heartbeat("never-claimed", owner="w") is False


class TestClaimBatch:
    def test_claim_batch_wins_only_queued_unclaimed(self, store_harness):
        store = store_harness.store
        queued = store.submit(_job(1))
        done = store.submit(_job(2))
        store.mark_completed(done, _result(done.job))
        taken = store.submit(_job(3))
        store.claim(taken.job_id, owner="someone-else")
        won = store.claim_batch(owner="me")
        assert [r.job_id for r in won] == [queued.job_id]
        assert won[0].status == "queued"
        assert store_harness.backing.claim_info(queued.job_id)["owner"] == "me"

    def test_claim_batch_respects_limit_oldest_first(self, store_harness):
        store = store_harness.store
        records = [store.submit(_job(seed)) for seed in (1, 2, 3)]
        by_age = sorted(records, key=lambda r: (r.submitted_at, r.job_id))
        won = store.claim_batch(owner="w", limit=2)
        assert [r.job_id for r in won] == [r.job_id for r in by_age[:2]]
        assert sorted(store.claimed_job_ids()) == sorted(r.job_id for r in won)

    def test_claim_batch_on_empty_queue_returns_nothing(self, store_harness):
        assert store_harness.store.claim_batch(owner="w") == []

    def test_claim_batch_never_rewins_its_own_claims(self, store_harness):
        # claim() is idempotent per owner, but a batch pull must return
        # only *new* wins — otherwise a polling worker is handed its own
        # running jobs back on every pull, forever.
        store = store_harness.store
        record = store.submit(_job(1))
        assert [r.job_id for r in store.claim_batch(owner="w")] == [record.job_id]
        assert store.claim_batch(owner="w") == []

    def test_two_batches_partition_the_queue(self, store_harness):
        store = store_harness.store
        records = [store.submit(_job(seed)) for seed in (1, 2, 3, 4)]
        first = store.claim_batch(owner="w1", limit=3)
        second = store.claim_batch(owner="w2")
        won_ids = [r.job_id for r in first + second]
        assert sorted(won_ids) == sorted(r.job_id for r in records)
        assert len(set(won_ids)) == len(records)


class TestCheckpointBlobs:
    def test_missing_checkpoint_is_none(self, store_harness):
        assert store_harness.store.get_checkpoint("nowhere") is None

    def test_put_get_roundtrip(self, store_harness):
        store = store_harness.store
        payload = {"version": 3, "generation": 17, "rng": [1, 2, 3]}
        store.put_checkpoint("job-a", payload)
        assert store.get_checkpoint("job-a") == payload
        # And the backing store agrees: the blob is durable, not
        # client-local.
        assert store_harness.backing.get_checkpoint("job-a") == payload

    def test_owner_gated_put_requires_the_claim(self, store_harness):
        store = store_harness.store
        store.claim("job-b", owner="holder")
        with pytest.raises(WorkerError, match="rejected"):
            store.put_checkpoint("job-b", {"generation": 1}, owner="usurper")
        store.put_checkpoint("job-b", {"generation": 2}, owner="holder")
        assert store.get_checkpoint("job-b") == {"generation": 2}

    def test_owner_gated_put_without_any_claim_refused(self, store_harness):
        with pytest.raises(WorkerError, match="rejected"):
            store_harness.store.put_checkpoint("job-c", {"generation": 1},
                                               owner="anyone")


class TestStaleRecovery:
    def test_silent_claim_on_unfinished_job_requeued(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.claim(record.job_id, owner="crashed-worker")
        store.mark_running(record)
        store_harness.age_claim(record.job_id, seconds=7200)
        assert store.recover_stale_claims(max_age_seconds=3600) == [record.job_id]
        assert store.get(record.job_id).status == "queued"
        assert store.claimed_job_ids() == []

    def test_heartbeat_prevents_recovery(self, store_harness):
        # The satellite invariant: a long job whose worker keeps beating
        # is never stolen, however old its claim is.
        store = store_harness.store
        record = store.submit(_job())
        store.claim(record.job_id, owner="long-runner")
        store.mark_running(record)
        store_harness.age_claim(record.job_id, seconds=7200)
        assert store.heartbeat(record.job_id, owner="long-runner") is True
        assert store.recover_stale_claims(max_age_seconds=3600) == []
        assert store.get(record.job_id).status == "running"
        assert store.claimed_job_ids() == [record.job_id]

    def test_fresh_claim_left_alone(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.claim(record.job_id, owner="w")
        store.mark_running(record)
        assert store.recover_stale_claims(max_age_seconds=3600) == []
        assert store.claimed_job_ids() == [record.job_id]

    def test_claim_for_finished_job_dropped_without_requeue(self, store_harness):
        store = store_harness.store
        record = store.submit(_job())
        store.mark_failed(record, "boom")
        store.claim(record.job_id, owner="w")
        assert store.recover_stale_claims(max_age_seconds=3600) == [record.job_id]
        assert store.get(record.job_id).status == "failed"

    def test_running_record_with_no_claim_requeued(self, store_harness):
        # A worker that died between releasing its claim and marking the
        # record (or whose final mark failed) leaves `running` with no
        # claim — invisible to the claim scan, in no queue.  Recovery
        # must requeue it; finished and claimed records stay untouched.
        store = store_harness.store
        stranded = store.submit(_job(1))
        store.mark_running(stranded)
        healthy = store.submit(_job(2))
        store.claim(healthy.job_id, owner="live-worker")
        store.mark_running(healthy)
        done = store.submit(_job(3))
        store.mark_completed(done, _result(done.job))

        assert store.recover_stale_claims(max_age_seconds=3600) == [stranded.job_id]
        assert store.get(stranded.job_id).status == "queued"
        assert store.get(healthy.job_id).status == "running"
        assert store.get(done.job_id).status == "completed"
