"""Unit tests for reporting, tables, timing and RNG utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import EvolutionHistory, GenerationRecord
from repro.experiments import DispersionData, render_dispersion, render_evolution, render_improvements, render_timing
from repro.experiments.figures import evolution_rows
from repro.experiments.reporting import ascii_scatter, render_grid
from repro.utils import Stopwatch, as_generator, format_table, spawn_generators


def record(generation, operator="mutation"):
    return GenerationRecord(generation, operator, 50.0 - generation, 30.0 - generation,
                            10.0, 1, 0.01, 0.001, True)


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.2345], ["bb", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text
        assert "-+-" in lines[2]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start("work")
        time.sleep(0.01)
        elapsed = watch.stop("work")
        assert elapsed > 0
        assert watch.total("work") == pytest.approx(elapsed)
        assert watch.count("work") == 1
        assert watch.mean("work") == pytest.approx(elapsed)

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start("x")
        with pytest.raises(ValueError):
            watch.start("x")

    def test_stop_without_start_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().stop("x")

    def test_unknown_label_zero(self):
        watch = Stopwatch()
        assert watch.total("never") == 0.0
        assert watch.mean("never") == 0.0
        assert watch.labels() == []


class TestRng:
    def test_int_seed(self):
        a = as_generator(5).integers(1000)
        b = as_generator(5).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_spawn_independent(self):
        children = spawn_generators(3, 4)
        assert len(children) == 4
        draws = [g.integers(10**9) for g in children]
        assert len(set(draws)) == 4

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRendering:
    def _history(self, n=6):
        history = EvolutionHistory()
        for i in range(1, n + 1):
            history.append(record(i, operator="mutation" if i % 2 else "crossover"))
        return history

    def test_render_improvements_contains_series(self):
        text = render_improvements(self._history(), "title")
        assert "max" in text and "mean" in text and "min" in text

    def test_render_evolution_subsamples(self):
        text = render_evolution(self._history(30), "evo", max_rows=5)
        assert text.count("\n") < 30

    def test_evolution_rows_includes_last_generation(self):
        rows = evolution_rows(self._history(10), stride=3)
        assert rows[-1][0] == 10

    def test_evolution_rows_bad_stride(self):
        with pytest.raises(ValueError):
            evolution_rows(self._history(3), stride=0)

    def test_render_timing_mentions_operators(self):
        text = render_timing(self._history(), "timing")
        assert "mutation" in text and "crossover" in text

    def test_ascii_scatter_and_grid(self):
        grid = ascii_scatter([(0, 0), (50, 50), (100, 100)], "o")
        grid = ascii_scatter([(25, 75)], "x", grid=grid)
        text = render_grid(grid, "plot")
        assert "o" in text and "x" in text
        assert text.splitlines()[0] == "plot"

    def test_scatter_clamps_out_of_range(self):
        grid = ascii_scatter([(-10, 500)], "z")
        assert any("z" in "".join(row) for row in grid)

    def test_render_dispersion_reports_imbalance(self):
        data = DispersionData(initial=[(10, 40)], final=[(20, 22)])
        text = render_dispersion(data, "disp")
        assert "30.00" in text  # initial imbalance
        assert "2.00" in text  # final imbalance


class TestDispersionData:
    def test_imbalance_means(self):
        data = DispersionData(initial=[(0, 10), (10, 30)], final=[(5, 5)])
        assert data.initial_mean_imbalance() == 15.0
        assert data.final_mean_imbalance() == 0.0

    def test_empty_clouds(self):
        data = DispersionData(initial=[], final=[])
        assert data.initial_mean_imbalance() == 0.0
        assert data.final_mean_imbalance() == 0.0
