"""Property-based tests for the Pareto machinery."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import crowding_distance, dominates, non_dominated_sort


@st.composite
def matrices(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=1, max_value=30))
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 100, size=(n, 2))


class TestDominanceProperties:
    @given(st.tuples(st.floats(0, 100), st.floats(0, 100)),
           st.tuples(st.floats(0, 100), st.floats(0, 100)))
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(st.tuples(st.floats(0, 100), st.floats(0, 100)))
    def test_irreflexive(self, a):
        assert not dominates(a, a)


class TestSortProperties:
    @given(matrices())
    @settings(max_examples=60)
    def test_fronts_partition_indices(self, objectives):
        fronts = non_dominated_sort(objectives)
        flat = sorted(i for front in fronts for i in front.tolist())
        assert flat == list(range(objectives.shape[0]))

    @given(matrices())
    @settings(max_examples=60)
    def test_front0_matches_bruteforce(self, objectives):
        fronts = non_dominated_sort(objectives)
        brute = {
            i
            for i in range(objectives.shape[0])
            if not any(
                dominates(tuple(objectives[j]), tuple(objectives[i]))
                for j in range(objectives.shape[0])
            )
        }
        assert set(fronts[0].tolist()) == brute

    @given(matrices())
    @settings(max_examples=60)
    def test_later_fronts_dominated_by_earlier(self, objectives):
        fronts = non_dominated_sort(objectives)
        for earlier, later in zip(fronts, fronts[1:]):
            for j in later:
                assert any(
                    dominates(tuple(objectives[int(i)]), tuple(objectives[int(j)]))
                    for i in earlier
                )


class TestCrowdingProperties:
    @given(matrices())
    @settings(max_examples=60)
    def test_distances_non_negative(self, objectives):
        distances = crowding_distance(objectives)
        assert (distances >= 0).all()

    @given(matrices())
    @settings(max_examples=60)
    def test_extremes_infinite(self, objectives):
        if objectives.shape[0] < 3:
            return
        distances = crowding_distance(objectives)
        for objective in range(objectives.shape[1]):
            span = objectives[:, objective].max() - objectives[:, objective].min()
            if span > 0:
                assert np.isinf(distances[int(np.argmin(objectives[:, objective]))])
                assert np.isinf(distances[int(np.argmax(objectives[:, objective]))])
