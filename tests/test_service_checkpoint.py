"""Checkpoint/resume: bit-identical continuation of an interrupted run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EngineCheckpoint, EvolutionaryProtector
from repro.core.operators import mutate
from repro.exceptions import EvolutionError, ServiceError
from repro.metrics import ProtectionEvaluator
from repro.service import CheckpointManager, checkpoint_from_dict, checkpoint_to_dict

TOTAL_GENERATIONS = 24
INTERRUPT_AT = 10
CHECKPOINT_EVERY = 5


@pytest.fixture()
def evaluator(tiny_dataset):
    return ProtectionEvaluator(tiny_dataset, tiny_dataset.attribute_names)


@pytest.fixture()
def protections(tiny_dataset):
    rng = np.random.default_rng(9)
    return [
        mutate(tiny_dataset, tiny_dataset.attribute_names, seed=rng, name=f"p{i}")
        for i in range(8)
    ]


def _history_signature(history):
    # Timing fields are wall-clock noise; everything else must match.
    return [
        (r.generation, r.operator, r.max_score, r.mean_score, r.min_score,
         r.evaluations, r.accepted)
        for r in history.records
    ]


def _population_signature(result):
    return [(ind.dataset.fingerprint(), ind.score) for ind in result.population]


class TestCheckpointResumeEquivalence:
    def test_resume_matches_uninterrupted_run(self, evaluator, protections, tiny_dataset, tmp_path):
        straight = EvolutionaryProtector(evaluator, seed=5).run(
            protections, stopping=TOTAL_GENERATIONS
        )

        checkpoints: list[EngineCheckpoint] = []
        interrupted = EvolutionaryProtector(evaluator, seed=5).run(
            protections,
            stopping=INTERRUPT_AT,
            checkpoint_every=CHECKPOINT_EVERY,
            on_checkpoint=checkpoints.append,
        )
        assert len(interrupted.history) == INTERRUPT_AT
        assert checkpoints[-1].generation == INTERRUPT_AT

        # Round-trip the final checkpoint through disk, like a real crash.
        manager = CheckpointManager(
            tmp_path / "run.json", fingerprint=evaluator.config_fingerprint()
        )
        manager.save(checkpoints[-1])
        restored = manager.load(tiny_dataset)

        resumed = EvolutionaryProtector(evaluator, seed=5).resume(
            restored, stopping=TOTAL_GENERATIONS
        )
        assert len(resumed.history) == TOTAL_GENERATIONS
        assert _history_signature(resumed.history) == _history_signature(straight.history)
        assert _population_signature(resumed) == _population_signature(straight)
        assert resumed.best.score == straight.best.score

    def test_checkpoint_cadence(self, evaluator, protections):
        checkpoints: list[EngineCheckpoint] = []
        EvolutionaryProtector(evaluator, seed=5).run(
            protections, stopping=12, checkpoint_every=5, on_checkpoint=checkpoints.append
        )
        # Every interval plus the final partial one.
        assert [c.generation for c in checkpoints] == [5, 10, 12]

    def test_no_checkpoints_when_disabled(self, evaluator, protections):
        checkpoints: list[EngineCheckpoint] = []
        EvolutionaryProtector(evaluator, seed=5).run(
            protections, stopping=4, checkpoint_every=0, on_checkpoint=checkpoints.append
        )
        assert checkpoints == []

    def test_negative_cadence_rejected(self, evaluator, protections):
        with pytest.raises(EvolutionError):
            EvolutionaryProtector(evaluator, seed=5).run(
                protections, stopping=2, checkpoint_every=-1
            )

    def test_resume_rejects_empty_population(self, evaluator):
        empty = EngineCheckpoint(
            generation=0, initial=[], individuals=[], records=[], rng_state={}
        )
        with pytest.raises(EvolutionError):
            EvolutionaryProtector(evaluator, seed=5).resume(empty)


class TestCheckpointSerde:
    def _checkpoint(self, evaluator, protections):
        captured: list[EngineCheckpoint] = []
        EvolutionaryProtector(evaluator, seed=3).run(
            protections, stopping=6, checkpoint_every=3, on_checkpoint=captured.append
        )
        return captured[-1]

    def test_dict_roundtrip(self, evaluator, protections, tiny_dataset):
        checkpoint = self._checkpoint(evaluator, protections)
        back = checkpoint_from_dict(checkpoint_to_dict(checkpoint), tiny_dataset)
        assert back.generation == checkpoint.generation
        assert back.rng_state == checkpoint.rng_state
        assert len(back.individuals) == len(checkpoint.individuals)
        for restored, original in zip(back.individuals, checkpoint.individuals):
            assert restored.dataset.fingerprint() == original.dataset.fingerprint()
            assert restored.evaluation == original.evaluation
        assert [r.generation for r in back.records] == [
            r.generation for r in checkpoint.records
        ]

    def test_fingerprint_mismatch_refused(self, evaluator, protections, tiny_dataset, tmp_path):
        checkpoint = self._checkpoint(evaluator, protections)
        CheckpointManager(tmp_path / "ck.json", fingerprint="config-a").save(checkpoint)
        with pytest.raises(ServiceError, match="different evaluator configuration"):
            CheckpointManager(tmp_path / "ck.json", fingerprint="config-b").load(tiny_dataset)

    def test_unknown_version_refused(self, tiny_dataset):
        with pytest.raises(ServiceError, match="version"):
            checkpoint_from_dict({"version": 99}, tiny_dataset)

    def test_missing_file_refused(self, tiny_dataset, tmp_path):
        manager = CheckpointManager(tmp_path / "absent.json")
        assert not manager.exists()
        with pytest.raises(ServiceError, match="no checkpoint"):
            manager.load(tiny_dataset)

    def test_delete(self, evaluator, protections, tmp_path):
        manager = CheckpointManager(tmp_path / "ck.json")
        manager.save(self._checkpoint(evaluator, protections))
        assert manager.exists()
        manager.delete()
        assert not manager.exists()
