"""Unit tests for linkage blocking."""

from __future__ import annotations


from repro.linkage import (
    blocked_candidate_pairs,
    blocked_linkage_rate,
    blocking_recall,
    distance_based_record_linkage,
)
from repro.methods import Pram

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestCandidatePairs:
    def test_blocks_partition_records(self, small_adult):
        seen_original = []
        for original_rows, __ in blocked_candidate_pairs(small_adult, small_adult, "SEX"):
            seen_original.extend(original_rows.tolist())
        assert sorted(seen_original) == list(range(small_adult.n_records))

    def test_block_members_share_category(self, small_adult):
        for original_rows, masked_rows in blocked_candidate_pairs(
            small_adult, small_adult, "SEX"
        ):
            values = set(small_adult.column("SEX")[original_rows].tolist())
            values |= set(small_adult.column("SEX")[masked_rows].tolist())
            assert len(values) == 1


class TestRecall:
    def test_identity_has_full_recall(self, small_adult):
        assert blocking_recall(small_adult, small_adult, "SEX") == 1.0

    def test_recall_drops_when_blocking_attribute_masked(self, small_adult):
        masked = Pram(theta=0.5).protect(small_adult, ["SEX"], seed=0)
        assert blocking_recall(small_adult, masked, "SEX") < 1.0


class TestBlockedLinkage:
    def test_blocked_rate_bounded_by_recall(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS + ["SEX"], seed=1)
        rate = blocked_linkage_rate(small_adult, masked, ATTRS, "SEX")
        recall = blocking_recall(small_adult, masked, "SEX")
        assert rate <= 100.0 * recall + 1e-9

    def test_blocked_close_to_exhaustive_when_block_kept(self, small_adult):
        # Blocking attribute untouched: blocked linkage can only gain
        # precision (fewer wrong candidates) relative to exhaustive linkage.
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=2)
        blocked = blocked_linkage_rate(small_adult, masked, ATTRS, "SEX")
        exhaustive = distance_based_record_linkage(small_adult, masked, ATTRS)
        assert blocked >= exhaustive - 1e-9
