"""Property-based tests for protection methods and measures.

Invariants pinned here:

* every method returns in-domain codes and never touches unlisted
  attributes (the library's core safety contract);
* rank swapping preserves marginals exactly, for any parameters;
* PRAM transition matrices are stochastic for any frequency vector;
* IL measures are 0 on identity and bounded in [0, 100] for arbitrary
  maskings; interval disclosure is 100 on identity;
* compressed and reference linkage agree on random pairs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema
from repro.linkage import distance_based_record_linkage, rank_swapping_record_linkage
from repro.linkage.compressed import CompressedPair
from repro.methods import (
    BottomCoding,
    GlobalRecoding,
    LocalSuppression,
    Microaggregation,
    Pram,
    RankSwapping,
    TopCoding,
    basic_transition_matrix,
    invariant_transition_matrix,
)
from repro.metrics import (
    ContingencyTableLoss,
    DistanceBasedLoss,
    EntropyBasedLoss,
    IntervalDisclosure,
)


@st.composite
def small_datasets(draw):
    n_attributes = draw(st.integers(min_value=2, max_value=4))
    sizes = [draw(st.integers(min_value=2, max_value=9)) for __ in range(n_attributes)]
    schema = DatasetSchema(
        [
            CategoricalDomain(f"A{i}", [f"c{j}" for j in range(size)], ordinal=bool(i % 2))
            for i, size in enumerate(sizes)
        ]
    )
    n_records = draw(st.integers(min_value=4, max_value=40))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    codes = np.column_stack([rng.integers(0, size, size=n_records) for size in sizes])
    return CategoricalDataset(codes, schema)


METHOD_FACTORIES = [
    lambda: Microaggregation(k=2),
    lambda: Microaggregation(k=3),
    lambda: RankSwapping(p=5),
    lambda: Pram(theta=0.3),
    lambda: TopCoding(fraction=0.3),
    lambda: BottomCoding(fraction=0.3),
    lambda: GlobalRecoding(level=1),
    lambda: LocalSuppression(fraction=0.2),
]


class TestMethodContract:
    @given(small_datasets(), st.sampled_from(range(len(METHOD_FACTORIES))),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80, deadline=None)
    def test_in_domain_and_untouched_columns(self, dataset, method_index, seed):
        method = METHOD_FACTORIES[method_index]()
        attrs = [dataset.attribute_names[0]]
        masked = method.protect(dataset, attrs, seed=seed)
        dataset.require_compatible(masked)  # validates in-domain codes
        for i, name in enumerate(dataset.attribute_names):
            if name not in attrs:
                assert np.array_equal(masked.codes[:, i], dataset.codes[:, i])

    @given(small_datasets(), st.floats(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_rank_swapping_preserves_marginals(self, dataset, p, seed):
        attrs = list(dataset.attribute_names[:2])
        masked = RankSwapping(p=p).protect(dataset, attrs, seed=seed)
        for attr in attrs:
            assert np.array_equal(masked.value_counts(attr), dataset.value_counts(attr))


class TestPramMatrices:
    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=12),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_basic_matrix_stochastic(self, counts, theta):
        matrix = basic_transition_matrix(np.array(counts), theta)
        assert (matrix >= -1e-12).all()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=12),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_invariant_matrix_invariance(self, counts, theta):
        arr = np.array(counts)
        matrix = invariant_transition_matrix(arr, theta)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
        p = (arr + 1.0) / (arr.sum() + arr.size)
        np.testing.assert_allclose(p @ matrix, p, atol=1e-8)


class TestMeasureBounds:
    @given(small_datasets(), st.sampled_from(range(len(METHOD_FACTORIES))),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_il_measures_bounded_and_zero_on_identity(self, dataset, method_index, seed):
        attrs = list(dataset.attribute_names[:2])
        masked = METHOD_FACTORIES[method_index]().protect(dataset, attrs, seed=seed)
        for cls in (ContingencyTableLoss, DistanceBasedLoss, EntropyBasedLoss):
            measure = cls(dataset, attrs)
            assert measure.compute(dataset) == 0.0
            assert 0.0 <= measure.compute(masked) <= 100.0

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_interval_disclosure_identity_is_hundred(self, dataset):
        attrs = list(dataset.attribute_names[:2])
        assert IntervalDisclosure(dataset, attrs).compute(dataset) == 100.0


class TestCompressedLinkageProperty:
    @given(small_datasets(), st.sampled_from(range(len(METHOD_FACTORIES))),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_compressed_equals_reference(self, dataset, method_index, seed):
        attrs = list(dataset.attribute_names[:2])
        masked = METHOD_FACTORIES[method_index]().protect(dataset, attrs, seed=seed)
        pair = CompressedPair(dataset, masked, attrs)
        assert pair.distance_linkage() == np.float64(
            distance_based_record_linkage(dataset, masked, attrs)
        ) or abs(
            pair.distance_linkage() - distance_based_record_linkage(dataset, masked, attrs)
        ) < 1e-9
        assert abs(
            pair.rank_linkage(0.15) - rank_swapping_record_linkage(dataset, masked, attrs, 0.15)
        ) < 1e-9
