"""Unit tests for the anonymity-set risk measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema
from repro.exceptions import MetricError
from repro.methods import Microaggregation, Pram
from repro.metrics.anonymity import (
    AttributeDisclosureRisk,
    UniquenessRisk,
    equivalence_class_sizes,
    k_anonymity_level,
    l_diversity_level,
    sample_uniques_share,
)

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


def hand_dataset():
    """6 records, QI = (A, B), sensitive = S.

    Classes: (a0,b0) x3, (a1,b1) x2, (a2,b0) x1  -> k = 1, uniques = 1/6.
    """
    schema = DatasetSchema(
        [
            CategoricalDomain("A", ["a0", "a1", "a2"]),
            CategoricalDomain("B", ["b0", "b1"]),
            CategoricalDomain("S", ["s0", "s1", "s2"]),
        ]
    )
    rows = [
        ["a0", "b0", "s0"],
        ["a0", "b0", "s0"],
        ["a0", "b0", "s1"],
        ["a1", "b1", "s1"],
        ["a1", "b1", "s2"],
        ["a2", "b0", "s2"],
    ]
    return CategoricalDataset.from_labels(rows, schema)


class TestKAnonymity:
    def test_hand_example(self):
        dataset = hand_dataset()
        assert k_anonymity_level(dataset, ["A", "B"]) == 1
        sizes = equivalence_class_sizes(dataset, ["A", "B"])
        assert sorted(sizes.tolist()) == [1, 2, 2, 3, 3, 3]

    def test_sample_uniques(self):
        assert sample_uniques_share(hand_dataset(), ["A", "B"]) == pytest.approx(1 / 6)

    def test_single_attribute_class_sizes_are_counts(self, adult):
        sizes = equivalence_class_sizes(adult, ["SEX"])
        counts = adult.value_counts("SEX")
        assert set(np.unique(sizes)) <= set(counts.tolist())

    def test_microaggregation_raises_k(self, adult):
        masked = Microaggregation(k=10).protect(adult, ["EDUCATION"])
        assert k_anonymity_level(masked, ["EDUCATION"]) >= k_anonymity_level(
            adult, ["EDUCATION"]
        )

    def test_empty_attributes_rejected(self, adult):
        with pytest.raises(MetricError):
            k_anonymity_level(adult, [])


class TestLDiversity:
    def test_hand_example(self):
        # Class (a0,b0) has {s0, s1} = 2; (a1,b1) has {s1, s2} = 2;
        # (a2,b0) has {s2} = 1 -> l = 1.
        assert l_diversity_level(hand_dataset(), ["A", "B"], "S") == 1

    def test_l_bounded_by_domain(self, adult):
        level = l_diversity_level(adult, ["SEX"], "RACE")
        assert 1 <= level <= adult.domain("RACE").size


class TestUniquenessRisk:
    def test_identity_risk_matches_share(self, adult):
        measure = UniquenessRisk(adult, ATTRS)
        expected = 100.0 * sample_uniques_share(adult, ATTRS)
        assert measure.compute(adult) == pytest.approx(expected)

    def test_microaggregation_eliminates_single_attribute_uniques(self, adult):
        # Per attribute, k=8 microaggregation publishes only categories
        # covering >= 8 records, so single-attribute uniques vanish.  (Over
        # *tuples* univariate microaggregation can create new rare combos,
        # so no monotonicity is asserted there.)
        masked = Microaggregation(k=8).protect(adult, ("EDUCATION",))
        measure = UniquenessRisk(adult, ["EDUCATION"])
        assert measure.compute(masked) == 0.0

    def test_pluggable_into_evaluator(self, small_adult):
        from repro.metrics import ProtectionEvaluator, default_dr_measures

        dr = default_dr_measures(small_adult, ATTRS) + [UniquenessRisk(small_adult, ATTRS)]
        evaluator = ProtectionEvaluator(small_adult, ATTRS, dr_measures=dr)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        score = evaluator.evaluate(masked)
        assert "uniqueness" in score.dr_components


class TestAttributeDisclosure:
    def test_identity_reveals_modal_rate(self):
        dataset = hand_dataset()
        measure = AttributeDisclosureRisk(dataset, ["A", "B"], sensitive="S")
        # Identity: class (a0,b0) guess s0 -> 2/3 right; (a1,b1) guess s1 or
        # s2 -> 1/2; (a2,b0) -> 1/1. Total = (2 + 1 + 1)/6.
        assert measure.compute(dataset) == pytest.approx(100.0 * 4 / 6)

    def test_full_generalization_floors_risk(self):
        dataset = hand_dataset()
        codes = dataset.codes_copy()
        codes[:, 0] = 0
        codes[:, 1] = 0
        masked = dataset.with_codes(codes)
        measure = AttributeDisclosureRisk(dataset, ["A", "B"], sensitive="S")
        # One big class: guess the global mode (any of s0/s1/s2 with count 2).
        assert measure.compute(masked) == pytest.approx(100.0 * 2 / 6)

    def test_masking_cannot_exceed_identity_by_much(self, small_adult):
        measure = AttributeDisclosureRisk(small_adult, ATTRS, sensitive="RACE")
        masked = Pram(theta=0.4).protect(small_adult, ATTRS, seed=0)
        assert 0.0 <= measure.compute(masked) <= 100.0

    def test_sensitive_must_not_be_quasi_identifier(self, small_adult):
        with pytest.raises(MetricError):
            AttributeDisclosureRisk(small_adult, ATTRS, sensitive="EDUCATION")
