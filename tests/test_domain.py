"""Unit tests for CategoricalDomain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDomain
from repro.exceptions import DomainError


class TestConstruction:
    def test_basic_properties(self):
        domain = CategoricalDomain("COLOR", ["red", "green", "blue"])
        assert domain.name == "COLOR"
        assert domain.size == 3
        assert len(domain) == 3
        assert not domain.ordinal
        assert domain.categories == ("red", "green", "blue")

    def test_ordinal_flag(self):
        domain = CategoricalDomain("SIZE", ["S", "M", "L"], ordinal=True)
        assert domain.ordinal

    def test_empty_name_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain("", ["a"])

    def test_empty_categories_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain("X", [])

    def test_duplicate_categories_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain("X", ["a", "b", "a"])

    def test_categories_coerced_to_str(self):
        domain = CategoricalDomain("X", [1, 2, 3])
        assert domain.categories == ("1", "2", "3")


class TestCoding:
    def test_code_label_roundtrip(self):
        domain = CategoricalDomain("X", ["a", "b", "c"])
        for code, label in enumerate(["a", "b", "c"]):
            assert domain.code(label) == code
            assert domain.label(code) == label

    def test_unknown_label_raises(self):
        domain = CategoricalDomain("X", ["a"])
        with pytest.raises(DomainError, match="'zzz'"):
            domain.code("zzz")

    def test_out_of_range_code_raises(self):
        domain = CategoricalDomain("X", ["a", "b"])
        with pytest.raises(DomainError):
            domain.label(2)
        with pytest.raises(DomainError):
            domain.label(-1)

    def test_encode_decode_roundtrip(self):
        domain = CategoricalDomain("X", ["a", "b", "c"])
        labels = ["c", "a", "b", "a"]
        codes = domain.encode(labels)
        assert codes.tolist() == [2, 0, 1, 0]
        assert domain.decode(codes) == labels

    def test_contains(self):
        domain = CategoricalDomain("X", ["a", "b"])
        assert domain.contains_label("a")
        assert not domain.contains_label("c")
        assert domain.contains_code(1)
        assert not domain.contains_code(2)
        assert not domain.contains_code(-1)

    def test_validate_codes_accepts_valid(self):
        domain = CategoricalDomain("X", ["a", "b", "c"])
        domain.validate_codes(np.array([0, 1, 2, 0]))

    def test_validate_codes_rejects_invalid(self):
        domain = CategoricalDomain("X", ["a", "b"])
        with pytest.raises(DomainError):
            domain.validate_codes(np.array([0, 2]))

    def test_validate_codes_empty_ok(self):
        CategoricalDomain("X", ["a"]).validate_codes(np.array([], dtype=np.int64))


class TestTransforms:
    def test_as_ordinal(self):
        domain = CategoricalDomain("X", ["a", "b"]).as_ordinal()
        assert domain.ordinal
        assert domain.categories == ("a", "b")

    def test_renamed(self):
        domain = CategoricalDomain("X", ["a"], ordinal=True).renamed("Y")
        assert domain.name == "Y"
        assert domain.ordinal

    def test_equality_and_hash(self):
        a = CategoricalDomain("X", ["a", "b"])
        b = CategoricalDomain("X", ["a", "b"])
        c = CategoricalDomain("X", ["a", "b"], ordinal=True)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_kind(self):
        assert "nominal" in repr(CategoricalDomain("X", ["a"]))
        assert "ordinal" in repr(CategoricalDomain("X", ["a"], ordinal=True))
