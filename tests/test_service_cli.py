"""End-to-end CLI tests for the service subcommands (tiny budgets)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import JobStore, ProtectionJob


@pytest.fixture(scope="module")
def state_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro-state"))


@pytest.fixture(scope="module")
def submitted(state_dir):
    code = main([
        "submit",
        "--dataset", "adult",
        "--generations", "3",
        "--seed", "21",
        "--checkpoint-every", "2",
        "--state-dir", state_dir,
    ])
    assert code == 0
    return ProtectionJob(dataset="adult", generations=3, seed=21).job_id


class TestSubmit:
    def test_job_completed(self, state_dir, submitted):
        record = JobStore(state_dir).get(submitted)
        assert record.status == "completed"
        assert record.result is not None
        assert record.result.generations == 3

    def test_checkpoint_written(self, state_dir, submitted):
        store = JobStore(state_dir)
        assert (store.checkpoints_dir / f"{submitted}.json").exists()

    def test_cache_populated(self, state_dir, submitted):
        assert JobStore(state_dir).cache_path.exists()

    def test_resubmit_skips_completed(self, state_dir, submitted, capsys):
        code = main([
            "submit",
            "--dataset", "adult",
            "--generations", "3",
            "--seed", "21",
            "--state-dir", state_dir,
        ])
        assert code == 0
        assert "already completed" in capsys.readouterr().out

    def test_multi_seed_submission_runs_replicates(self, state_dir, capsys):
        code = main([
            "submit",
            "--dataset", "adult",
            "--generations", "2",
            "--seeds", "31,32",
            "--checkpoint-every", "0",
            "--state-dir", state_dir,
        ])
        assert code == 0
        store = JobStore(state_dir)
        for seed in (31, 32):
            job_id = ProtectionJob(dataset="adult", generations=2, seed=seed).job_id
            assert store.get(job_id).status == "completed"

    def test_bad_seeds_rejected(self, state_dir, capsys):
        code = main([
            "submit", "--dataset", "adult", "--seeds", "1,x", "--state-dir", state_dir,
        ])
        assert code == 2
        assert "bad --seeds" in capsys.readouterr().err


class TestStatus:
    def test_table_lists_jobs(self, state_dir, submitted, capsys):
        assert main(["status", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert submitted in out
        assert "completed" in out

    def test_single_job_detail(self, state_dir, submitted, capsys):
        assert main(["status", "--job", submitted, "--state-dir", state_dir]) == 0
        assert submitted in capsys.readouterr().out

    def test_unknown_job_errors(self, state_dir, capsys):
        assert main(["status", "--job", "nope", "--state-dir", state_dir]) == 2
        assert "unknown job" in capsys.readouterr().err

    def test_empty_store(self, tmp_path, capsys):
        assert main(["status", "--state-dir", str(tmp_path / "empty")]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestResume:
    def test_completed_job_requires_force(self, state_dir, submitted, capsys):
        assert main(["resume", "--job", submitted, "--state-dir", state_dir]) == 0
        assert "already completed" in capsys.readouterr().out

    def test_interrupted_job_resumes(self, state_dir, submitted, capsys):
        store = JobStore(state_dir)
        record = store.get(submitted)
        completed_scores = record.result.final_scores
        # Simulate a crash after the last checkpoint: running, no result.
        record.status = "running"
        record.result = None
        store.save(record)

        assert main(["resume", "--job", submitted, "--state-dir", state_dir]) == 0
        repaired = store.get(submitted)
        assert repaired.status == "completed"
        assert repaired.result.final_scores == completed_scores

    def test_resume_without_checkpoint_errors(self, state_dir, capsys):
        store = JobStore(state_dir)
        job = ProtectionJob(dataset="adult", generations=2, seed=31)
        record = store.get(job.job_id)
        record.status = "running"
        store.save(record)
        assert main(["resume", "--job", job.job_id, "--state-dir", state_dir]) == 2
        assert "no checkpoint" in capsys.readouterr().err


class TestCache:
    def test_info_and_clear(self, state_dir, submitted, capsys):
        assert main(["cache", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out
        assert main(["cache", "--clear", "--state-dir", state_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "--state-dir", state_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out
