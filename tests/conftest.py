"""Shared fixtures: small hand-built datasets and paper datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema
from repro.datasets import load_adult, load_flare


@pytest.fixture(scope="session")
def tiny_schema() -> DatasetSchema:
    """Three attributes: nominal COLOR(3), ordinal SIZE(4), nominal SHAPE(2)."""
    return DatasetSchema(
        [
            CategoricalDomain("COLOR", ["red", "green", "blue"]),
            CategoricalDomain("SIZE", ["S", "M", "L", "XL"], ordinal=True),
            CategoricalDomain("SHAPE", ["round", "square"]),
        ]
    )


@pytest.fixture
def tiny_dataset(tiny_schema: DatasetSchema) -> CategoricalDataset:
    """12 records over the tiny schema, deterministic."""
    rng = np.random.default_rng(7)
    codes = np.column_stack(
        [
            rng.integers(0, 3, size=12),
            rng.integers(0, 4, size=12),
            rng.integers(0, 2, size=12),
        ]
    )
    return CategoricalDataset(codes, tiny_schema, name="tiny")


@pytest.fixture(scope="session")
def adult() -> CategoricalDataset:
    """The synthetic Adult dataset (1000 x 8)."""
    return load_adult()


@pytest.fixture(scope="session")
def flare() -> CategoricalDataset:
    """The synthetic Solar Flare dataset (1066 x 13)."""
    return load_flare()


@pytest.fixture(scope="session")
def small_adult(adult: CategoricalDataset) -> CategoricalDataset:
    """First 120 Adult records — fast enough for linkage-heavy tests."""
    return CategoricalDataset(adult.codes[:120], adult.schema, name="adult-small")
