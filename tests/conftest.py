"""Shared fixtures: datasets, plus the two-backend job-store harness."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema
from repro.datasets import load_adult, load_flare
from repro.service import JobStore


@dataclass
class StoreHarness:
    """One store under test plus the on-disk store its state lands in.

    ``store`` is what the test exercises (the file store itself, or a
    ``RemoteJobStore`` speaking to a live in-process server over HTTP);
    ``backing`` is always the underlying :class:`JobStore`, so tests can
    simulate conditions no healthy client would produce — like a claim
    whose worker died ``seconds`` ago.
    """

    store: object
    backing: JobStore

    def age_claim(self, job_id: str, seconds: float) -> None:
        """Backdate a claim as if its worker went silent ``seconds`` ago."""
        path = self.backing.claim_path(job_id)
        info = json.loads(path.read_text(encoding="utf-8"))
        info["claimed_at"] = time.time() - seconds
        info["last_seen"] = time.time() - seconds
        path.write_text(json.dumps(info), encoding="utf-8")


@pytest.fixture(params=["file", "remote"])
def store_harness(request, tmp_path) -> StoreHarness:
    """The store contract fixture: every test using it runs twice, once
    against the file-backed ``JobStore`` and once against a
    ``RemoteJobStore`` over a live ``JobStoreServer``."""
    backing = JobStore(tmp_path / "state")
    if request.param == "file":
        yield StoreHarness(store=backing, backing=backing)
        return
    from repro.service import JobStoreServer, RemoteJobStore

    server = JobStoreServer(backing, token="contract-token")
    server.start()
    try:
        client = RemoteJobStore(
            server.url,
            token="contract-token",
            spool=tmp_path / "spool",
            retries=1,
            backoff=0.05,
        )
        yield StoreHarness(store=client, backing=backing)
    finally:
        server.stop()


@pytest.fixture(scope="session")
def tiny_schema() -> DatasetSchema:
    """Three attributes: nominal COLOR(3), ordinal SIZE(4), nominal SHAPE(2)."""
    return DatasetSchema(
        [
            CategoricalDomain("COLOR", ["red", "green", "blue"]),
            CategoricalDomain("SIZE", ["S", "M", "L", "XL"], ordinal=True),
            CategoricalDomain("SHAPE", ["round", "square"]),
        ]
    )


@pytest.fixture
def tiny_dataset(tiny_schema: DatasetSchema) -> CategoricalDataset:
    """12 records over the tiny schema, deterministic."""
    rng = np.random.default_rng(7)
    codes = np.column_stack(
        [
            rng.integers(0, 3, size=12),
            rng.integers(0, 4, size=12),
            rng.integers(0, 2, size=12),
        ]
    )
    return CategoricalDataset(codes, tiny_schema, name="tiny")


@pytest.fixture(scope="session")
def adult() -> CategoricalDataset:
    """The synthetic Adult dataset (1000 x 8)."""
    return load_adult()


@pytest.fixture(scope="session")
def flare() -> CategoricalDataset:
    """The synthetic Solar Flare dataset (1066 x 13)."""
    return load_flare()


@pytest.fixture(scope="session")
def small_adult(adult: CategoricalDataset) -> CategoricalDataset:
    """First 120 Adult records — fast enough for linkage-heavy tests."""
    return CategoricalDataset(adult.codes[:120], adult.schema, name="adult-small")
