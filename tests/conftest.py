"""Shared fixtures: datasets, plus the two-backend job-store harness."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema
from repro.datasets import load_adult, load_flare
from repro.service import JobStore


@dataclass
class StoreHarness:
    """One store under test plus the backing store its state lands in.

    ``store`` is what the test exercises (a file or sqlite store
    directly, or a ``RemoteJobStore`` speaking to a live in-process
    server over HTTP); ``backing`` is the underlying local store —
    file-backed :class:`JobStore` or ``SqliteJobStore`` — so tests can
    simulate conditions no healthy client would produce, like a claim
    whose worker died ``seconds`` ago or one torn mid-heartbeat.
    """

    store: object
    backing: object

    def _backing_for(self, job_id: str) -> object:
        """The concrete local store holding ``job_id``'s claim state.

        For single stores that is ``backing`` itself; for a
        ``ShardedJobStore`` it is the one child shard the job lives on
        (claims co-live with records, so the shard answers for both).
        """
        from repro.service import ShardedJobStore

        if isinstance(self.backing, ShardedJobStore):
            return self.backing.shard_for(job_id)
        return self.backing

    @staticmethod
    def _is_file_store(store: object) -> bool:
        return isinstance(store, JobStore)

    def age_claim(self, job_id: str, seconds: float) -> None:
        """Backdate a claim as if its worker went silent ``seconds`` ago."""
        then = time.time() - seconds
        backing = self._backing_for(job_id)
        if self._is_file_store(backing):
            path = backing.claim_path(job_id)
            info = json.loads(path.read_text(encoding="utf-8"))
            info["claimed_at"] = then
            info["last_seen"] = then
            path.write_text(json.dumps(info), encoding="utf-8")
            return
        with backing._lock:
            backing._conn.execute(
                "UPDATE claims SET claimed_at = ?, last_seen = ? WHERE job_id = ?",
                (then, then, job_id),
            )

    def tear_claim(self, job_id: str) -> None:
        """Install a held claim whose metadata cannot be read.

        The file store's torn shape is an empty claim file (its true
        holder is between truncate and write); the sqlite store's is a
        claim row with a NULL owner.  Both mean "held, by whom
        unknown", and the owner-gated operations must refuse to guess.
        """
        backing = self._backing_for(job_id)
        if self._is_file_store(backing):
            backing.claim_path(job_id).write_text("", encoding="utf-8")
            return
        with backing._lock:
            backing._conn.execute(
                "INSERT OR REPLACE INTO claims "
                "(job_id, owner, pid, claimed_at, last_seen) "
                "VALUES (?, NULL, NULL, ?, ?)",
                (job_id, time.time(), time.time()),
            )


@pytest.fixture(params=["file", "remote", "sqlite", "sqlite-remote",
                        "shard-sqlite", "shard-mixed"])
def store_harness(request, tmp_path) -> StoreHarness:
    """The store contract fixture: every test using it runs once per
    backend — the file-backed ``JobStore``, the ``SqliteJobStore``, a
    ``RemoteJobStore`` over a live ``JobStoreServer`` fronting each of
    the two, and a ``ShardedJobStore`` over two shards (2x sqlite, and
    a file+sqlite mix) — sharding must be invisible behind the
    contract."""
    if request.param.startswith("shard"):
        from repro.service import ShardedJobStore, SqliteJobStore

        second = (
            JobStore(tmp_path / "shard-b")
            if request.param == "shard-mixed"
            else SqliteJobStore(tmp_path / "shard-b.sqlite")
        )
        sharded = ShardedJobStore(
            [SqliteJobStore(tmp_path / "shard-a.sqlite"), second],
            names=["a", "b"],
            root=tmp_path / "spool",
        )
        yield StoreHarness(store=sharded, backing=sharded)
        return
    if request.param.startswith("sqlite"):
        from repro.service import SqliteJobStore

        backing = SqliteJobStore(tmp_path / "state" / "jobs.sqlite")
    else:
        backing = JobStore(tmp_path / "state")
    if request.param in ("file", "sqlite"):
        yield StoreHarness(store=backing, backing=backing)
        return
    from repro.service import JobStoreServer, RemoteJobStore

    server = JobStoreServer(backing, token="contract-token")
    server.start()
    try:
        client = RemoteJobStore(
            server.url,
            token="contract-token",
            spool=tmp_path / "spool",
            retries=1,
            backoff=0.05,
        )
        yield StoreHarness(store=client, backing=backing)
    finally:
        server.stop()


@pytest.fixture(scope="session")
def tiny_schema() -> DatasetSchema:
    """Three attributes: nominal COLOR(3), ordinal SIZE(4), nominal SHAPE(2)."""
    return DatasetSchema(
        [
            CategoricalDomain("COLOR", ["red", "green", "blue"]),
            CategoricalDomain("SIZE", ["S", "M", "L", "XL"], ordinal=True),
            CategoricalDomain("SHAPE", ["round", "square"]),
        ]
    )


@pytest.fixture
def tiny_dataset(tiny_schema: DatasetSchema) -> CategoricalDataset:
    """12 records over the tiny schema, deterministic."""
    rng = np.random.default_rng(7)
    codes = np.column_stack(
        [
            rng.integers(0, 3, size=12),
            rng.integers(0, 4, size=12),
            rng.integers(0, 2, size=12),
        ]
    )
    return CategoricalDataset(codes, tiny_schema, name="tiny")


@pytest.fixture(scope="session")
def adult() -> CategoricalDataset:
    """The synthetic Adult dataset (1000 x 8)."""
    return load_adult()


@pytest.fixture(scope="session")
def flare() -> CategoricalDataset:
    """The synthetic Solar Flare dataset (1066 x 13)."""
    return load_flare()


@pytest.fixture(scope="session")
def small_adult(adult: CategoricalDataset) -> CategoricalDataset:
    """First 120 Adult records — fast enough for linkage-heavy tests."""
    return CategoricalDataset(adult.codes[:120], adult.schema, name="adult-small")
