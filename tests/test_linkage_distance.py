"""Unit tests for linkage distances and rank geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linkage import (
    attribute_distance_columns,
    cross_distance_matrix,
    rank_position_columns,
    rank_positions,
)
from repro.methods import Pram


class TestAttributeDistances:
    def test_identity_is_zero(self, small_adult):
        distances = attribute_distance_columns(
            small_adult, small_adult, ["EDUCATION", "SEX"]
        )
        assert distances.shape == (small_adult.n_records, 2)
        assert distances.max() == 0.0

    def test_nominal_distance_is_binary(self, small_adult):
        masked = Pram(theta=0.5).protect(small_adult, ["OCCUPATION"], seed=0)
        distances = attribute_distance_columns(small_adult, masked, ["OCCUPATION"])
        assert set(np.unique(distances)) <= {0.0, 1.0}

    def test_ordinal_distance_normalized(self, small_adult):
        masked = Pram(theta=0.5).protect(small_adult, ["EDUCATION"], seed=0)
        distances = attribute_distance_columns(small_adult, masked, ["EDUCATION"])
        assert distances.min() >= 0.0 and distances.max() <= 1.0
        # Some changed value should give a fractional distance (EDUCATION
        # is ordinal with 16 categories).
        changed = distances[distances > 0]
        assert ((changed > 0) & (changed < 1)).any()


class TestCrossDistanceMatrix:
    def test_diagonal_zero_for_identity(self, small_adult):
        matrix = cross_distance_matrix(small_adult, small_adult, ["EDUCATION", "SEX"])
        assert np.diagonal(matrix).max() == 0.0

    def test_shape_and_bounds(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ["EDUCATION"], seed=1)
        matrix = cross_distance_matrix(small_adult, masked, ["EDUCATION", "SEX"])
        n = small_adult.n_records
        assert matrix.shape == (n, n)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_empty_attributes_rejected(self, small_adult):
        with pytest.raises(Exception):
            cross_distance_matrix(small_adult, small_adult, [])


class TestRankPositions:
    def test_positions_in_unit_interval_and_monotone(self, adult):
        positions = rank_positions(adult, "EDUCATION")
        assert positions.shape == (16,)
        assert positions.min() >= 0.0 and positions.max() <= 1.0
        assert (np.diff(positions) >= 0).all()

    def test_position_mass_tracks_frequency(self, adult):
        counts = adult.value_counts("EDUCATION")
        positions = rank_positions(adult, "EDUCATION")
        # Midpoint of category c is cum_before + count/2; check first category.
        expected_first = counts[0] / 2 / adult.n_records
        assert positions[0] == pytest.approx(expected_first)

    def test_rank_position_columns_shape(self, small_adult):
        out = rank_position_columns(small_adult, small_adult, ["EDUCATION", "SEX"])
        assert out.shape == (small_adult.n_records, 2)
