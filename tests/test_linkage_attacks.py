"""Unit tests for DBRL, PRL and RSRL (reference n^2 implementations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LinkageError
from repro.linkage import (
    agreement_pattern_matrix,
    distance_based_record_linkage,
    fit_fellegi_sunter,
    fractional_correct_links,
    probabilistic_record_linkage,
    rank_compatibility_scores,
    rank_swapping_record_linkage,
)
from repro.methods import Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestFractionalCredit:
    def test_unique_diagonal_minimum_gives_full_credit(self):
        score = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert fractional_correct_links(score, best_is_max=False) == 2.0

    def test_tie_gives_fractional_credit(self):
        score = np.zeros((2, 2))
        # All distances tie: each row credits 1/2.
        assert fractional_correct_links(score, best_is_max=False) == 1.0

    def test_diagonal_not_at_best_gives_zero(self):
        score = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert fractional_correct_links(score, best_is_max=False) == 0.0

    def test_max_mode(self):
        score = np.array([[5.0, 1.0], [1.0, 5.0]])
        assert fractional_correct_links(score, best_is_max=True) == 2.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            fractional_correct_links(np.zeros((2, 3)), best_is_max=False)


class TestDBRL:
    def test_identity_upper_bounds_masked(self, small_adult):
        masked = Pram(theta=0.4).protect(small_adult, ATTRS, seed=0)
        identity_risk = distance_based_record_linkage(small_adult, small_adult, ATTRS)
        masked_risk = distance_based_record_linkage(small_adult, masked, ATTRS)
        assert 0 <= masked_risk <= identity_risk <= 100

    def test_stronger_masking_lower_risk(self, small_adult):
        mild = Pram(theta=0.05).protect(small_adult, ATTRS, seed=1)
        strong = Pram(theta=0.6).protect(small_adult, ATTRS, seed=1)
        assert distance_based_record_linkage(
            small_adult, strong, ATTRS
        ) < distance_based_record_linkage(small_adult, mild, ATTRS)


class TestPRL:
    def test_pattern_matrix_encoding(self, small_adult):
        patterns = agreement_pattern_matrix(small_adult, small_adult, ATTRS)
        # Self-comparison: the diagonal agrees on everything -> all bits set.
        assert (np.diagonal(patterns) == 2 ** len(ATTRS) - 1).all()

    def test_pattern_matrix_too_many_attrs(self, small_adult):
        with pytest.raises(LinkageError):
            agreement_pattern_matrix(small_adult, small_adult, ATTRS * 7)

    def test_em_separates_m_and_u(self, small_adult):
        masked = Pram(theta=0.2).protect(small_adult, ATTRS, seed=2)
        patterns = agreement_pattern_matrix(small_adult, masked, ATTRS)
        counts = np.bincount(patterns.ravel(), minlength=8)
        model = fit_fellegi_sunter(counts, 3)
        # Matches agree more than non-matches on every attribute.
        assert (model.m > model.u).all()

    def test_full_agreement_pattern_has_max_weight(self, small_adult):
        masked = Pram(theta=0.2).protect(small_adult, ATTRS, seed=2)
        patterns = agreement_pattern_matrix(small_adult, masked, ATTRS)
        counts = np.bincount(patterns.ravel(), minlength=8)
        model = fit_fellegi_sunter(counts, 3)
        assert model.pattern_weights.argmax() == 7

    def test_empty_counts_rejected(self):
        with pytest.raises(LinkageError):
            fit_fellegi_sunter(np.zeros(8), 3)

    def test_prl_bounds(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=3)
        risk = probabilistic_record_linkage(small_adult, masked, ATTRS)
        assert 0 <= risk <= 100


class TestRSRL:
    def test_scores_bounded_by_attribute_count(self, small_adult):
        masked = RankSwapping(p=5).protect(small_adult, ATTRS, seed=0)
        scores = rank_compatibility_scores(small_adult, masked, ATTRS, window=0.1)
        assert scores.min() >= 0 and scores.max() <= len(ATTRS)

    def test_bad_window_rejected(self, small_adult):
        with pytest.raises(LinkageError):
            rank_compatibility_scores(small_adult, small_adult, ATTRS, window=0.0)

    def test_rsrl_detects_rank_swapping_better_at_matching_window(self, small_adult):
        # For a rank-swapped file, a window sized to the swap parameter
        # should re-identify more than a tiny window.
        masked = RankSwapping(p=8).protect(small_adult, ATTRS, seed=4)
        tight = rank_swapping_record_linkage(small_adult, masked, ATTRS, window=0.01)
        matched = rank_swapping_record_linkage(small_adult, masked, ATTRS, window=0.12)
        assert matched >= tight

    def test_rsrl_bounds(self, small_adult):
        masked = RankSwapping(p=5).protect(small_adult, ATTRS, seed=5)
        risk = rank_swapping_record_linkage(small_adult, masked, ATTRS)
        assert 0 <= risk <= 100
