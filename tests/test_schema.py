"""Unit tests for DatasetSchema."""

from __future__ import annotations

import pytest

from repro.data import CategoricalDomain, DatasetSchema
from repro.exceptions import SchemaError


def make_schema() -> DatasetSchema:
    return DatasetSchema(
        [
            CategoricalDomain("A", ["a1", "a2"]),
            CategoricalDomain("B", ["b1", "b2", "b3"], ordinal=True),
        ]
    )


class TestConstruction:
    def test_basic_properties(self):
        schema = make_schema()
        assert schema.n_attributes == 2
        assert schema.attribute_names == ("A", "B")
        assert schema.cardinalities == (2, 3)
        assert len(schema) == 2

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            DatasetSchema([])

    def test_duplicate_names_rejected(self):
        domain = CategoricalDomain("A", ["x"])
        with pytest.raises(SchemaError):
            DatasetSchema([domain, domain])

    def test_iteration_order(self):
        schema = make_schema()
        assert [d.name for d in schema] == ["A", "B"]


class TestLookup:
    def test_index_of(self):
        schema = make_schema()
        assert schema.index_of("A") == 0
        assert schema.index_of("B") == 1

    def test_index_of_missing_raises(self):
        with pytest.raises(SchemaError, match="'Z'"):
            make_schema().index_of("Z")

    def test_domain_by_name_and_index(self):
        schema = make_schema()
        assert schema.domain("B").name == "B"
        assert schema.domain(0).name == "A"

    def test_domain_index_out_of_range(self):
        with pytest.raises(SchemaError):
            make_schema().domain(5)

    def test_subset_preserves_order(self):
        schema = make_schema().subset(["B", "A"])
        assert schema.attribute_names == ("B", "A")


class TestCompatibility:
    def test_compatible_with_self(self):
        schema = make_schema()
        schema.require_compatible(make_schema())

    def test_name_mismatch(self):
        other = DatasetSchema([CategoricalDomain("A", ["a1", "a2"])])
        with pytest.raises(SchemaError, match="attribute names differ"):
            make_schema().require_compatible(other)

    def test_domain_mismatch(self):
        other = DatasetSchema(
            [
                CategoricalDomain("A", ["a1", "a2"]),
                CategoricalDomain("B", ["b1", "b2", "b3"]),  # not ordinal
            ]
        )
        with pytest.raises(SchemaError, match="domain mismatch"):
            make_schema().require_compatible(other)

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
