"""Distributed job tracing: span primitives, durable trace blobs, and
the fleet-crossing contract.

The centerpiece is the ``store_harness``-parametrized battery asserting
that one job run end-to-end — traced submit, worker claim, evaluation,
release — leaves exactly one *connected* span tree in the durable trace
blob, on every store backend (file, sqlite, remote-over-HTTP fronting
each, and two sharded layouts).  The kill-the-worker test proves a
resumed job links its new spans to the original trace instead of
starting a fresh one.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import main
from repro.obs import trace
from repro.service import (
    JobStore,
    JobStoreServer,
    ProtectionJob,
    ShardedJobStore,
    Worker,
)

EXPECTED_NAMES = {
    "repro.job",
    "repro.submit",
    "repro.queue.wait",
    "repro.claim",
    "repro.run",
    "repro.release",
    "repro.engine.generation",
    "repro.eval.batch",
}


@pytest.fixture(autouse=True)
def clean_tracer():
    """Tracer and registry are process-global; leave both quiet."""
    trace.disable_tracing()
    obs.disable()
    obs.get_registry().reset()
    obs.configure_events(None)
    yield
    trace.disable_tracing()
    obs.disable()
    obs.get_registry().reset()
    obs.configure_events(None)


def _job(seed: int = 5, generations: int = 2) -> ProtectionJob:
    return ProtectionJob(dataset="flare", generations=generations, seed=seed)


def _submit_traced(store, job, checkpoint_every: int = 0):
    """Submit ``job`` the way ``repro submit --trace-sample 1.0`` does."""
    info = trace.new_trace_info()
    assert info is not None
    with trace.activated(info["id"], info["root"]) as scope:
        with trace.span("repro.submit", dataset=job.dataset, seed=job.seed):
            record = store.submit(
                job,
                extras={"checkpoint_every": checkpoint_every, "trace": info},
            )
    trace.flush_spans(store, record.job_id, info["id"], scope.collected)
    return record, info


class TestSpanPrimitives:
    def test_disabled_span_is_shared_noop(self):
        assert trace.span("repro.anything") is trace.span("repro.other")
        with trace.span("repro.anything") as opened:
            opened.set(key="value")  # must be accepted and discarded

    def test_enabled_without_scope_is_noop(self):
        trace.enable_tracing()
        assert trace.span("repro.anything") is trace._NOOP_SPAN

    def test_nested_spans_parent_under_each_other(self):
        trace.enable_tracing()
        with trace.activated(trace.new_trace_id(), "rootrootrootroot") as scope:
            with trace.span("repro.outer") as outer:
                with trace.span("repro.inner"):
                    pass
        spans = {item["name"]: item for item in scope.collected}
        assert spans["repro.outer"]["parent_id"] == "rootrootrootroot"
        assert spans["repro.inner"]["parent_id"] == outer.span_id
        assert spans["repro.inner"]["start"] >= spans["repro.outer"]["start"]

    def test_exception_exit_records_error_attr_and_propagates(self):
        trace.enable_tracing()
        with trace.activated(trace.new_trace_id()) as scope:
            with pytest.raises(RuntimeError):
                with trace.span("repro.doomed"):
                    raise RuntimeError("boom")
        (span,) = scope.collected
        assert span["attrs"]["error"] == "RuntimeError"

    def test_record_span_defaults_parent_and_start(self):
        trace.enable_tracing()
        with trace.activated(trace.new_trace_id(), "rootrootrootroot") as scope:
            trace.record_span("repro.queue.wait", 1.5)
        (span,) = scope.collected
        assert span["parent_id"] == "rootrootrootroot"
        assert span["duration"] == 1.5

    def test_annotate_span_reaches_innermost_open_span(self):
        trace.enable_tracing()
        with trace.activated(trace.new_trace_id()) as scope:
            with trace.span("repro.submit"):
                trace.annotate_span(shard="b")
        (span,) = scope.collected
        assert span["attrs"]["shard"] == "b"

    def test_scope_caps_spans_and_counts_dropped(self):
        trace.enable_tracing()
        scope = trace.TraceScope("t" * 32)
        for index in range(trace.MAX_SPANS_PER_SCOPE + 7):
            scope.record(trace.make_span("t" * 32, "", "repro.x", 0.0, 0.0))
        assert len(scope.spans) == trace.MAX_SPANS_PER_SCOPE
        assert scope.dropped == 7

    def test_enable_tracing_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            trace.enable_tracing(sample_rate=1.5)
        with pytest.raises(ValueError):
            trace.enable_tracing(sample_rate=-0.1)

    def test_head_sampling_is_deterministic_from_the_id(self):
        low = "00000001" + "a" * 24
        high = "ffffffff" + "a" * 24
        assert trace.head_sampled(low, 0.5)
        assert not trace.head_sampled(high, 0.5)
        assert trace.head_sampled(high, 1.0)
        assert not trace.head_sampled(low, 0.0)
        # Every process must reach the same verdict.
        assert trace.head_sampled(low, 0.5) == trace.head_sampled(low, 0.5)

    def test_traceparent_round_trip(self):
        trace.enable_tracing()
        trace_id = trace.new_trace_id()
        with trace.activated(trace_id, "feedfacefeedface"):
            header = trace.format_traceparent()
        assert trace.parse_traceparent(header) == (trace_id, "feedfacefeedface")

    def test_traceparent_rejects_garbage(self):
        assert trace.parse_traceparent(None) is None
        assert trace.parse_traceparent("") is None
        assert trace.parse_traceparent("00-zz-aa-01") is None
        assert trace.parse_traceparent(12) is None

    def test_format_traceparent_none_when_disabled_or_unscoped(self):
        assert trace.format_traceparent() is None
        trace.enable_tracing()
        assert trace.format_traceparent() is None

    def test_slow_op_ledger_counts_and_emits(self):
        obs.enable()
        lines: list[str] = []

        class Sink:
            def write(self, text):
                lines.append(text)

            def flush(self):
                pass

        obs.configure_events(Sink())
        trace.enable_tracing(slow_op_seconds=0.5)
        with trace.activated(trace.new_trace_id()) as scope:
            trace.record_span("repro.run", 2.0)
        assert scope.collected
        counters = {
            (c["labels"].get("op"), c["value"])
            for c in obs.get_registry().snapshot()["counters"]
            if c["name"] == "repro_slow_ops_total"
        }
        assert ("repro.run", 1.0) in counters
        events = [json.loads(line) for line in lines if line.strip()]
        assert any(
            e["event"] == "slow_op" and e["op"] == "repro.run" for e in events
        )


class TestDurableBlobs:
    def test_flush_merges_and_dedupes_by_span_id(self, tmp_path):
        store = JobStore(tmp_path)
        trace_id = trace.new_trace_id()
        first = trace.make_span(trace_id, "", "repro.submit", 1.0, 0.1)
        trace.flush_spans(store, "job-x", trace_id, [first])
        updated = dict(first)
        updated["duration"] = 9.0
        second = trace.make_span(trace_id, "", "repro.run", 2.0, 0.2)
        assert trace.flush_spans(store, "job-x", trace_id, [updated, second])
        payload = trace.load_trace(store, "job-x")
        assert payload["version"] == trace.TRACE_BLOB_VERSION
        assert len(payload["spans"]) == 2
        by_id = {s["span_id"]: s for s in payload["spans"]}
        assert by_id[first["span_id"]]["duration"] == 9.0  # new wins

    def test_resubmitted_job_replaces_foreign_trace(self, tmp_path):
        store = JobStore(tmp_path)
        old_id, new_id = trace.new_trace_id(), trace.new_trace_id()
        trace.flush_spans(
            store, "job-x", old_id,
            [trace.make_span(old_id, "", "repro.submit", 1.0, 0.1)],
        )
        trace.flush_spans(
            store, "job-x", new_id,
            [trace.make_span(new_id, "", "repro.submit", 2.0, 0.1)],
        )
        payload = trace.load_trace(store, "job-x")
        assert payload["trace_id"] == new_id
        assert len(payload["spans"]) == 1

    def test_flush_empty_is_a_noop(self, tmp_path):
        store = JobStore(tmp_path)
        assert not trace.flush_spans(store, "job-x", trace.new_trace_id(), [])
        assert trace.load_trace(store, "job-x") is None

    def test_flush_never_raises_and_counts_failures(self):
        obs.enable()

        class BrokenStore:
            def get_checkpoint(self, blob_id):
                raise OSError("disk on fire")

            def put_checkpoint(self, blob_id, payload, owner=None):
                raise OSError("disk on fire")

        trace_id = trace.new_trace_id()
        ok = trace.flush_spans(
            BrokenStore(), "job-x", trace_id,
            [trace.make_span(trace_id, "", "repro.submit", 1.0, 0.1)],
        )
        assert ok is False
        counters = {
            c["labels"].get("event"): c["value"]
            for c in obs.get_registry().snapshot()["counters"]
            if c["name"] == "repro_errors_total"
        }
        assert counters.get("trace_flush_error") == 1.0

    def test_flush_job_trace_honours_sampling_except_failures(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job(seed=31))
        record.extras["trace"] = {
            "id": trace.new_trace_id(), "root": trace.new_span_id(),
            "sampled": False,
        }
        assert not trace.flush_job_trace(store, record)
        assert trace.load_trace(store, record.job_id) is None
        record.status = "failed"
        assert trace.flush_job_trace(store, record)
        payload = trace.load_trace(store, record.job_id)
        (root,) = payload["spans"]
        assert root["name"] == "repro.job"
        assert root["attrs"]["status"] == "failed"

    def test_flush_job_trace_noop_without_trace_extras(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job(seed=32))
        assert not trace.flush_job_trace(store, record)

    def test_load_trace_rejects_malformed_blob(self, tmp_path):
        store = JobStore(tmp_path)
        store.put_checkpoint(trace.trace_blob_id("job-x"), {"spans": "nope"})
        assert trace.load_trace(store, "job-x") is None


class TestWaterfall:
    def _payload(self):
        trace_id = trace.new_trace_id()
        root = trace.make_span(
            trace_id, "", "repro.job", 0.0, 10.0, status="completed"
        )
        child = trace.make_span(
            trace_id, root["span_id"], "repro.run", 1.0, 8.0, dataset="flare"
        )
        return {
            "version": 1,
            "trace_id": trace_id,
            "job_id": "job-x",
            "spans": [root, child],
            "dropped": 0,
        }

    def test_renders_header_bars_and_self_time(self):
        out = trace.render_waterfall(self._payload())
        lines = out.splitlines()
        assert "job-x" in lines[0] and "2 span(s)" in lines[0]
        assert "repro.job" in lines[1] and "100.0%" in lines[1]
        assert "  repro.run" in lines[2] and "dataset=flare" in lines[2]
        assert "self 2.000s" in lines[1]  # 10s minus the 8s child

    def test_orphans_surface_as_roots_not_lost(self):
        payload = self._payload()
        orphan = trace.make_span(
            payload["trace_id"], "f" * 16, "repro.eval.batch", 2.0, 1.0
        )
        payload["spans"].append(orphan)
        roots = trace.build_tree(payload["spans"])
        assert {r["span"]["name"] for r in roots} == {
            "repro.job", "repro.eval.batch",
        }

    def test_dropped_footer(self):
        payload = self._payload()
        payload["dropped"] = 3
        assert "3 span(s) dropped" in trace.render_waterfall(payload)

    def test_empty_payload(self):
        assert trace.render_waterfall({"spans": []}) == "(no spans)"


def _assert_connected(payload, expect_names=EXPECTED_NAMES):
    spans = payload["spans"]
    ids = [s["span_id"] for s in spans]
    assert len(ids) == len(set(ids)), "span ids must be unique"
    assert {s["trace_id"] for s in spans} == {payload["trace_id"]}
    roots = [s for s in spans if not s["parent_id"]]
    assert [r["name"] for r in roots] == ["repro.job"]
    id_set = set(ids)
    for span in spans:
        if span["parent_id"]:
            assert span["parent_id"] in id_set, (
                f"{span['name']} parent missing: disconnected tree"
            )
    assert expect_names <= {s["name"] for s in spans}


class TestFleetContract:
    """Satellite 4: one connected span tree per job, on every backend."""

    def test_traced_job_leaves_one_connected_tree(self, store_harness):
        trace.enable_tracing(sample_rate=1.0)
        store = store_harness.store
        record, info = _submit_traced(store, _job())
        (outcome,) = Worker(store, stale_after=60.0).run_once()
        assert outcome.ok
        payload = trace.load_trace(store, record.job_id)
        assert payload is not None
        assert payload["trace_id"] == info["id"]
        _assert_connected(payload)
        root = next(s for s in payload["spans"] if s["name"] == "repro.job")
        assert root["span_id"] == info["root"]
        assert root["attrs"]["status"] == "completed"
        claim = next(s for s in payload["spans"] if s["name"] == "repro.claim")
        assert claim["attrs"]["worker"]
        if isinstance(store_harness.backing, ShardedJobStore):
            # The blob must co-locate with the record's shard even though
            # rendezvous hashing of "<job>.trace" would pick another.
            shard = store_harness.backing.shard_for(record.job_id)
            assert shard.get_checkpoint(trace.trace_blob_id(record.job_id))
            assert claim["attrs"]["shard"] in ("a", "b")

    def test_untraced_job_leaves_no_blob(self, store_harness):
        store = store_harness.store
        record = store.submit(_job(seed=6))
        (outcome,) = Worker(store, stale_after=60.0).run_once()
        assert outcome.ok
        assert trace.load_trace(store, record.job_id) is None


class TestResumeLinksToOriginalTrace:
    """Kill the worker mid-job; the resumed run joins the same trace."""

    def test_killed_then_resumed_job_has_one_trace(self, tmp_path, monkeypatch):
        import repro.service.runner as runner_mod

        trace.enable_tracing(sample_rate=1.0)
        store = JobStore(tmp_path)
        record, info = _submit_traced(store, _job(seed=9), checkpoint_every=1)

        real = runner_mod.run_experiment
        calls = {"n": 0}

        def dying_run(*args, **kwargs):
            calls["n"] += 1
            result = real(*args, **kwargs)
            if calls["n"] == 1:
                raise RuntimeError("worker killed mid-release")
            return result

        monkeypatch.setattr(runner_mod, "run_experiment", dying_run)
        (outcome,) = Worker(store, stale_after=60.0).run_once()
        assert not outcome.ok
        failed = store.get(record.job_id)
        assert failed.status == "failed"
        first = trace.load_trace(store, record.job_id)
        assert first is not None and first["trace_id"] == info["id"]
        assert any(
            s["name"] == "repro.run" and s.get("attrs", {}).get("error")
            for s in first["spans"]
        )

        store.requeue(failed)
        (outcome,) = Worker(store, stale_after=60.0).run_once()
        assert outcome.ok
        payload = trace.load_trace(store, record.job_id)
        assert payload["trace_id"] == info["id"], "resume must keep the trace"
        runs = [s for s in payload["spans"] if s["name"] == "repro.run"]
        assert len(runs) == 2
        assert any(s.get("attrs", {}).get("resume") for s in runs)
        assert any(s.get("attrs", {}).get("error") for s in runs)
        claims = [s for s in payload["spans"] if s["name"] == "repro.claim"]
        assert len(claims) == 2
        roots = [s for s in payload["spans"] if not s["parent_id"]]
        assert [r["name"] for r in roots] == ["repro.job"]
        assert roots[0]["attrs"]["status"] == "completed"


class TestObserverContract:
    """PR 6 rules: tracing may never change results."""

    def test_results_bit_identical_with_tracing_on_and_off(self, tmp_path):
        results = {}
        for mode in ("off", "on"):
            store = JobStore(tmp_path / mode)
            if mode == "on":
                trace.enable_tracing(sample_rate=1.0)
                record, _ = _submit_traced(store, _job(seed=13))
            else:
                trace.disable_tracing()
                record = store.submit(_job(seed=13))
            (outcome,) = Worker(store, stale_after=60.0).run_once()
            assert outcome.ok
            results[mode] = store.get(record.job_id).result
        on, off = results["on"], results["off"]
        assert on.final_scores == off.final_scores
        assert on.best_score == off.best_score
        assert on.best_information_loss == off.best_information_loss
        assert on.fresh_evaluations == off.fresh_evaluations

    def test_new_trace_info_is_none_when_disabled(self):
        assert trace.new_trace_info() is None
        record_extras = {"checkpoint_every": 0}
        assert trace.trace_context_from_extras(record_extras) is None


class TestServeTraceEndpoint:
    """GET /trace/<job_id> on the store server, plus header propagation."""

    @pytest.fixture
    def served(self, tmp_path):
        trace.enable_tracing(sample_rate=1.0)
        store = JobStore(tmp_path)
        record, info = _submit_traced(store, _job(seed=21))
        server = JobStoreServer(store, token="trace-token")
        server.start()
        try:
            yield server, record, info
        finally:
            server.stop()

    def _get(self, url, token="trace-token"):
        request = urllib.request.Request(url)
        if token:
            request.add_header("Authorization", f"Bearer {token}")
        return urllib.request.urlopen(request, timeout=5)

    def test_trace_get_returns_payload_with_headers(self, served):
        server, record, info = served
        with self._get(f"{server.url}/trace/{record.job_id}") as response:
            payload = json.loads(response.read())
            assert response.headers["X-Repro-Trace-Id"] == info["id"]
            assert response.headers["X-Repro-Cache-Status"] == "miss"
        assert payload["trace_id"] == info["id"]
        assert any(s["name"] == "repro.submit" for s in payload["spans"])
        with self._get(f"{server.url}/trace/{record.job_id}") as response:
            assert response.headers["X-Repro-Cache-Status"] == "hit"

    def test_trace_get_requires_token(self, served):
        server, record, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{server.url}/trace/{record.job_id}", token=None)
        assert excinfo.value.code == 401

    def test_trace_get_unknown_job_is_404(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{server.url}/trace/flare-s99-0000000000")
        assert excinfo.value.code == 404

    def test_trace_get_rejects_unsafe_id(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{server.url}/trace/..%2Fetc")
        assert excinfo.value.code == 400

    def test_rpc_response_echoes_trace_id_header(self, served):
        """Satellite 3: X-Repro-Trace-Id on every traced RPC response."""
        server, record, info = served
        envelope = {
            "method": "get",
            "params": {"job_id": record.job_id},
            "trace": f"00-{info['id']}-{info['root']}-01",
        }
        request = urllib.request.Request(
            f"{server.url}/rpc",
            data=json.dumps(envelope).encode(),
            headers={
                "Authorization": "Bearer trace-token",
                "Content-Type": "application/json",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.headers["X-Repro-Trace-Id"] == info["id"]
            body = json.loads(response.read())
        assert body["result"]

    def test_untraced_rpc_has_no_trace_header(self, served):
        server, record, _ = served
        envelope = {"method": "get", "params": {"job_id": record.job_id}}
        request = urllib.request.Request(
            f"{server.url}/rpc",
            data=json.dumps(envelope).encode(),
            headers={
                "Authorization": "Bearer trace-token",
                "Content-Type": "application/json",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.headers.get("X-Repro-Trace-Id") is None


class TestEventSinkRotation:
    """Satellite 1: --log-json-file backing stream rotates by size."""

    def test_rotating_stream_rotates_at_bound(self, tmp_path):
        from repro.obs.events import RotatingFileStream

        path = tmp_path / "logs" / "events.jsonl"
        stream = RotatingFileStream(path, max_bytes=100)
        first = "x" * 80 + "\n"
        stream.write(first)
        stream.write("y" * 80 + "\n")
        stream.flush()
        stream.close()
        assert stream.backup_path.read_text(encoding="utf-8") == first
        assert path.read_text(encoding="utf-8") == "y" * 80 + "\n"

    def test_rotation_keeps_exactly_one_backup(self, tmp_path):
        from repro.obs.events import RotatingFileStream

        path = tmp_path / "events.jsonl"
        stream = RotatingFileStream(path, max_bytes=10)
        for index in range(5):
            stream.write(f"line-{index}-padding\n")
        stream.close()
        assert path.exists() and stream.backup_path.exists()
        assert not path.with_suffix(".jsonl.2").exists()

    def test_rejects_nonpositive_bound(self, tmp_path):
        from repro.obs.events import RotatingFileStream

        with pytest.raises(ValueError):
            RotatingFileStream(tmp_path / "e.jsonl", max_bytes=0)

    def test_tee_fans_out_writes(self):
        from repro.obs.events import TeeStream

        seen: list[tuple[int, str]] = []

        class Sink:
            def __init__(self, tag):
                self.tag = tag

            def write(self, text):
                seen.append((self.tag, text))

            def flush(self):
                pass

        tee = TeeStream(Sink(1), Sink(2))
        tee.write("hello")
        tee.flush()
        assert seen == [(1, "hello"), (2, "hello")]

    def test_event_log_survives_broken_file_sink(self, tmp_path):
        from repro.obs.events import RotatingFileStream

        path = tmp_path / "events.jsonl"
        stream = RotatingFileStream(path, max_bytes=1024)
        stream.close()  # writes after close raise inside the sink
        obs.enable()
        obs.configure_events(stream)
        obs.emit_event("job_submitted", job_id="j1")  # must not raise
        counters = {
            c["labels"].get("event"): c["value"]
            for c in obs.get_registry().snapshot()["counters"]
            if c["name"] == "repro_errors_total"
        }
        assert counters.get("event_log_write_error") == 1.0


class TestCliSurfaces:
    """repro trace / status --json trace_id / --log-json-file wiring."""

    @pytest.fixture(scope="class")
    def traced_state(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace-cli-state")
        log_file = path / "logs" / "events.jsonl"
        assert main([
            "submit", "--dataset", "flare", "--generations", "2",
            "--seed", "17", "--state-dir", str(path),
            "--trace-sample", "1.0",
            "--log-json-file", str(log_file),
        ]) == 0
        trace.disable_tracing()
        obs.disable()
        obs.get_registry().reset()
        obs.configure_events(None)
        job_id = ProtectionJob(dataset="flare", generations=2, seed=17).job_id
        return str(path), job_id, log_file

    def test_trace_renders_connected_waterfall(self, traced_state, capsys):
        path, job_id, _ = traced_state
        assert main(["trace", job_id, "--state-dir", path]) == 0
        out = capsys.readouterr().out
        assert "repro.job" in out
        assert "repro.submit" in out
        assert "repro.run" in out
        assert "100.0%" in out

    def test_trace_json_is_the_raw_payload(self, traced_state, capsys):
        path, job_id, _ = traced_state
        assert main(["trace", job_id, "--state-dir", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        _assert_connected(
            payload,
            expect_names={"repro.job", "repro.submit", "repro.run"},
        )

    def test_status_json_carries_trace_id(self, traced_state, capsys):
        path, job_id, _ = traced_state
        assert main(["status", "--state-dir", path, "--json"]) == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert row["job_id"] == job_id
        assert row["trace_id"]

    def test_log_json_file_received_structured_events(self, traced_state):
        _, job_id, log_file = traced_state
        events = [
            json.loads(line)
            for line in log_file.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert events, "the --log-json-file sink saw no events"
        assert all("event" in e and "ts" in e for e in events)
        assert "generation" in {e["event"] for e in events}

    def test_trace_without_blob_hints_and_fails(self, tmp_path, capsys):
        store = JobStore(tmp_path)
        record = store.submit(_job(seed=23))
        assert main(["trace", record.job_id,
                     "--state-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "no trace" in out or "sampled" in out

    def test_trace_unknown_job_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace"])  # job id is required


class TestMigrateCarriesTraces:
    def test_migrate_copies_trace_blobs(self, tmp_path):
        from repro.service.store import migrate_store

        trace.enable_tracing(sample_rate=1.0)
        source = JobStore(tmp_path / "src")
        record, info = _submit_traced(source, _job(seed=27))
        target = JobStore(tmp_path / "dst")
        counts = migrate_store(source, target)
        assert counts["records"] == 1
        assert counts["traces"] == 1
        moved = trace.load_trace(target, record.job_id)
        assert moved is not None and moved["trace_id"] == info["id"]
