"""The compressed linkage path must match the reference n^2 path exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linkage import (
    distance_based_record_linkage,
    probabilistic_record_linkage,
    rank_swapping_record_linkage,
)
from repro.linkage.compressed import CompressedPair, get_compressed_pair
from repro.methods import LocalSuppression, Microaggregation, Pram, RankSwapping, TopCoding

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]

MASKINGS = [
    ("identity", None),
    ("pram", Pram(theta=0.3)),
    ("rankswap", RankSwapping(p=6)),
    ("microagg", Microaggregation(k=4)),
    ("topcode", TopCoding(fraction=0.2)),
    ("suppress", LocalSuppression(fraction=0.2)),
]


def _mask(dataset, method):
    if method is None:
        return dataset.with_codes(dataset.codes_copy(), name="identity")
    return method.protect(dataset, ATTRS, seed=99)


@pytest.mark.parametrize("label,method", MASKINGS, ids=[m[0] for m in MASKINGS])
class TestEquivalence:
    def test_dbrl_matches_reference(self, small_adult, label, method):
        masked = _mask(small_adult, method)
        reference = distance_based_record_linkage(small_adult, masked, ATTRS)
        compressed = CompressedPair(small_adult, masked, ATTRS).distance_linkage()
        assert compressed == pytest.approx(reference, abs=1e-9)

    def test_prl_matches_reference(self, small_adult, label, method):
        masked = _mask(small_adult, method)
        reference = probabilistic_record_linkage(small_adult, masked, ATTRS)
        compressed = CompressedPair(small_adult, masked, ATTRS).probabilistic_linkage()
        assert compressed == pytest.approx(reference, abs=1e-6)

    def test_rsrl_matches_reference(self, small_adult, label, method):
        masked = _mask(small_adult, method)
        reference = rank_swapping_record_linkage(small_adult, masked, ATTRS, window=0.1)
        compressed = CompressedPair(small_adult, masked, ATTRS).rank_linkage(window=0.1)
        assert compressed == pytest.approx(reference, abs=1e-9)


class TestCompressedStructure:
    def test_inverse_reconstructs_tuples(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=1)
        pair = CompressedPair(small_adult, masked, ATTRS)
        columns = [small_adult.schema.index_of(a) for a in ATTRS]
        reconstructed = pair.unique_original[pair.inverse_original]
        assert np.array_equal(reconstructed, small_adult.codes[:, columns])

    def test_masked_counts_sum_to_n(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=1)
        pair = CompressedPair(small_adult, masked, ATTRS)
        assert pair.counts_masked.sum() == small_adult.n_records

    def test_memo_returns_same_object(self, small_adult):
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=2)
        first = get_compressed_pair(small_adult, masked, ATTRS)
        second = get_compressed_pair(small_adult, masked, ATTRS)
        assert first is second

    def test_memo_invalidated_by_new_masked(self, small_adult):
        masked_a = Pram(theta=0.3).protect(small_adult, ATTRS, seed=3)
        masked_b = Pram(theta=0.3).protect(small_adult, ATTRS, seed=4)
        first = get_compressed_pair(small_adult, masked_a, ATTRS)
        second = get_compressed_pair(small_adult, masked_b, ATTRS)
        assert first is not second
