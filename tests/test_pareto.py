"""Unit tests for the Pareto multi-objective extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pareto import (
    ParetoEvolutionaryProtector,
    crowding_distance,
    dominates,
    non_dominated_sort,
)
from repro.exceptions import EvolutionError
from repro.metrics import ProtectionEvaluator
from repro.methods import Microaggregation, Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_on_one_axis_dominates(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_is_incomparable(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))


class TestNonDominatedSort:
    def test_textbook_example(self):
        objectives = np.array(
            [
                [1.0, 5.0],  # front 0
                [2.0, 3.0],  # front 0
                [4.0, 1.0],  # front 0
                [3.0, 4.0],  # front 1 (dominated by [2,3])
                [5.0, 5.0],  # front 2 (dominated by [3,4] too)
            ]
        )
        fronts = non_dominated_sort(objectives)
        assert sorted(fronts[0].tolist()) == [0, 1, 2]
        assert fronts[1].tolist() == [3]
        assert fronts[2].tolist() == [4]

    def test_all_identical_single_front(self):
        fronts = non_dominated_sort(np.ones((4, 2)))
        assert len(fronts) == 1
        assert sorted(fronts[0].tolist()) == [0, 1, 2, 3]

    def test_fronts_partition_population(self):
        rng = np.random.default_rng(0)
        objectives = rng.uniform(size=(25, 2))
        fronts = non_dominated_sort(objectives)
        indices = sorted(i for front in fronts for i in front.tolist())
        assert indices == list(range(25))

    def test_no_front_member_dominated_within_front(self):
        rng = np.random.default_rng(1)
        objectives = rng.uniform(size=(20, 2))
        for front in non_dominated_sort(objectives):
            for i in front:
                for j in front:
                    if i != j:
                        assert not dominates(
                            tuple(objectives[int(i)]), tuple(objectives[int(j)])
                        )

    def test_empty_rejected(self):
        with pytest.raises(EvolutionError):
            non_dominated_sort(np.empty((0, 2)))


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        objectives = np.array([[0.0, 4.0], [1.0, 3.0], [2.0, 2.0], [4.0, 0.0]])
        distances = crowding_distance(objectives)
        assert np.isinf(distances[0]) and np.isinf(distances[3])
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])

    def test_two_points_both_infinite(self):
        assert np.isinf(crowding_distance(np.array([[0.0, 1.0], [1.0, 0.0]]))).all()

    def test_denser_point_smaller_distance(self):
        # Point 1 is squeezed between close neighbours; point 2 has room.
        objectives = np.array([[0.0, 10.0], [1.0, 9.0], [5.0, 5.0], [10.0, 0.0]])
        distances = crowding_distance(objectives)
        assert distances[1] < distances[2]

    def test_degenerate_objective_ignored(self):
        objectives = np.array([[1.0, 0.0], [1.0, 0.5], [1.0, 1.0]])
        distances = crowding_distance(objectives)
        assert np.isfinite(distances[1])


class TestParetoEngine:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data import CategoricalDataset
        from repro.datasets import load_adult

        full = load_adult()
        small = CategoricalDataset(full.codes[:100], full.schema, name="adult-tiny")
        protections = [Pram(theta=t).protect(small, ATTRS, seed=i)
                       for i, t in enumerate((0.1, 0.3, 0.5))]
        protections += [RankSwapping(p=p).protect(small, ATTRS, seed=p) for p in (3, 8)]
        protections += [Microaggregation(k=k).protect(small, ATTRS) for k in (3, 6)]
        evaluator = ProtectionEvaluator(small, ATTRS)
        return small, protections, evaluator

    def test_run_returns_valid_front(self, setup):
        __, protections, evaluator = setup
        engine = ParetoEvolutionaryProtector(evaluator, seed=0)
        result = engine.run(protections, generations=40)
        assert len(result.population) == len(protections)
        assert 1 <= len(result.front) <= len(protections)
        # No front member dominates another.
        pairs = [(ind.information_loss, ind.disclosure_risk) for ind in result.front]
        for a in pairs:
            for b in pairs:
                if a != b:
                    assert not dominates(a, b)

    def test_front_objectives_sorted(self, setup):
        __, protections, evaluator = setup
        engine = ParetoEvolutionaryProtector(evaluator, seed=1)
        result = engine.run(protections, generations=30)
        objectives = result.front_objectives()
        assert objectives == sorted(objectives)

    def test_deterministic(self, setup):
        __, protections, evaluator = setup
        res_a = ParetoEvolutionaryProtector(evaluator, seed=2).run(protections, generations=25)
        res_b = ParetoEvolutionaryProtector(evaluator, seed=2).run(protections, generations=25)
        assert res_a.front_objectives() == res_b.front_objectives()

    def test_front_never_regresses_on_extremes(self, setup):
        """The best-IL point of the final front is at least as good as the
        best initial IL (dominated offspring are never accepted blindly)."""
        __, protections, evaluator = setup
        initial_best_il = min(
            evaluator.evaluate(p).information_loss for p in protections
        )
        result = ParetoEvolutionaryProtector(evaluator, seed=3).run(protections, generations=50)
        final_best_il = min(ind.information_loss for ind in result.front)
        assert final_best_il <= initial_best_il + 1e-9

    def test_validation(self, setup):
        __, protections, evaluator = setup
        with pytest.raises(EvolutionError):
            ParetoEvolutionaryProtector(evaluator, mutation_probability=2.0)
        engine = ParetoEvolutionaryProtector(evaluator, seed=0)
        with pytest.raises(EvolutionError):
            engine.run(protections, generations=0)
        with pytest.raises(EvolutionError):
            engine.run(protections[:1], generations=5)

    def test_front_sizes_recorded(self, setup):
        __, protections, evaluator = setup
        result = ParetoEvolutionaryProtector(evaluator, seed=4).run(protections, generations=20)
        assert len(result.front_sizes) == 20
        assert all(size >= 1 for size in result.front_sizes)
