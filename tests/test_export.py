"""Unit tests for CSV figure-data export."""

from __future__ import annotations

import csv

import pytest

from repro.core import EvolutionaryProtector
from repro.experiments.export import (
    export_dispersion_csv,
    export_evolution_csv,
    export_experiment,
    export_improvements_csv,
)
from repro.metrics import ProtectionEvaluator
from repro.methods import Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


@pytest.fixture(scope="module")
def run_result():
    from repro.data import CategoricalDataset
    from repro.datasets import load_adult

    full = load_adult()
    small = CategoricalDataset(full.codes[:100], full.schema, name="adult-tiny")
    protections = [Pram(theta=t).protect(small, ATTRS, seed=i) for i, t in enumerate((0.1, 0.3))]
    protections += [RankSwapping(p=p).protect(small, ATTRS, seed=p) for p in (3, 8)]
    evaluator = ProtectionEvaluator(small, ATTRS)
    return EvolutionaryProtector(evaluator, seed=0).run(protections, stopping=10)


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExports:
    def test_dispersion_csv(self, run_result, tmp_path):
        path = export_dispersion_csv(run_result, tmp_path / "d.csv")
        rows = read_rows(path)
        assert rows[0] == ["phase", "il", "dr"]
        phases = {row[0] for row in rows[1:]}
        assert phases == {"initial", "final"}
        assert len(rows) - 1 == 2 * len(run_result.population)
        for row in rows[1:]:
            assert 0.0 <= float(row[1]) <= 100.0
            assert 0.0 <= float(row[2]) <= 100.0

    def test_evolution_csv(self, run_result, tmp_path):
        path = export_evolution_csv(run_result.history, tmp_path / "e.csv")
        rows = read_rows(path)
        assert rows[0] == ["generation", "max", "mean", "min"]
        assert len(rows) - 1 == len(run_result.history)
        generations = [int(row[0]) for row in rows[1:]]
        assert generations == list(range(1, 11))

    def test_improvements_csv(self, run_result, tmp_path):
        path = export_improvements_csv(run_result.history, tmp_path / "i.csv")
        rows = read_rows(path)
        assert [row[0] for row in rows[1:]] == ["max", "mean", "min"]

    def test_export_experiment_bundle(self, run_result, tmp_path):
        paths = export_experiment(run_result, tmp_path / "out", "flare_e2")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.name.startswith("flare_e2_")

    def test_export_creates_directory(self, run_result, tmp_path):
        paths = export_experiment(run_result, tmp_path / "a" / "b", "x")
        assert all(p.exists() for p in paths)
