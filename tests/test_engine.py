"""Integration tests for the evolutionary engine (paper Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionaryProtector, MaxGenerations, Stagnation, AnyOf
from repro.exceptions import EvolutionError
from repro.metrics import MeanScore, ProtectionEvaluator
from repro.methods import Microaggregation, Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


@pytest.fixture(scope="module")
def small_population():
    from repro.data import CategoricalDataset
    from repro.datasets import load_adult

    full = load_adult()
    adult = CategoricalDataset(full.codes[:120], full.schema, name="adult-small")
    protections = [Pram(theta=t).protect(adult, ATTRS, seed=i) for i, t in enumerate((0.1, 0.3, 0.5))]
    protections += [RankSwapping(p=p).protect(adult, ATTRS, seed=10 + p) for p in (2, 6)]
    protections += [Microaggregation(k=k).protect(adult, ATTRS) for k in (3, 6)]
    return adult, protections


def make_engine(adult, **kwargs) -> EvolutionaryProtector:
    evaluator = ProtectionEvaluator(adult, ATTRS)
    return EvolutionaryProtector(evaluator, **kwargs)


class TestConfiguration:
    def test_bad_mutation_probability(self, small_population):
        adult, __ = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, mutation_probability=1.5)

    def test_bad_leader_fraction(self, small_population):
        adult, __ = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, leader_fraction=0.0)

    def test_bad_selection_strategy(self, small_population):
        adult, __ = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, selection_strategy="psychic")

    def test_bad_crowding(self, small_population):
        adult, __ = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, crowding_pairing="vibes")


class TestRun:
    def test_population_too_small(self, small_population):
        adult, protections = small_population
        engine = make_engine(adult, seed=0)
        with pytest.raises(EvolutionError):
            engine.run(protections[:1], stopping=5)

    def test_empty_initial_rejected(self, small_population):
        adult, __ = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, seed=0).run([], stopping=5)

    def test_runs_exact_generation_count(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=1).run(protections, stopping=25)
        assert len(result.history) == 25
        assert result.history.generations == list(range(1, 26))

    def test_population_size_invariant(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=2).run(protections, stopping=30)
        assert len(result.population) == len(protections)

    def test_scores_never_worsen(self, small_population):
        """Elitism + crowding: max/mean/min must be non-increasing."""
        adult, protections = small_population
        result = make_engine(adult, seed=3).run(protections, stopping=60)
        for series in (result.history.max_scores, result.history.mean_scores,
                       result.history.min_scores):
            diffs = np.diff(np.array(series))
            assert (diffs <= 1e-9).all()

    def test_mean_improves(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=4).run(protections, stopping=80)
        __, __, percent = result.history.improvement("mean")
        assert percent > 0

    def test_deterministic_in_seed(self, small_population):
        adult, protections = small_population
        res_a = make_engine(adult, seed=5).run(protections, stopping=20)
        res_b = make_engine(adult, seed=5).run(protections, stopping=20)
        assert res_a.history.mean_scores == res_b.history.mean_scores
        assert res_a.best.dataset.equals(res_b.best.dataset)

    def test_different_seeds_diverge(self, small_population):
        adult, protections = small_population
        res_a = make_engine(adult, seed=6).run(protections, stopping=30)
        res_b = make_engine(adult, seed=7).run(protections, stopping=30)
        assert res_a.history.mean_scores != res_b.history.mean_scores

    def test_initial_snapshot_preserved(self, small_population):
        adult, protections = small_population
        engine = make_engine(adult, seed=8)
        result = engine.run(protections, stopping=30)
        assert len(result.initial) == len(protections)
        initial_scores = sorted(ind.score for ind in result.initial)
        # The snapshot must reflect the pre-evolution population, whose mean
        # equals the first recorded mean only after the first generation's
        # change; just assert it is a valid superset of final-or-better.
        assert min(initial_scores) >= result.population.best().score - 1e-9

    def test_offspring_stay_inside_domains(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=9).run(protections, stopping=40)
        for ind in result.population:
            adult.require_compatible(ind.dataset)  # validates codes too

    def test_unprotected_attributes_untouched(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=10).run(protections, stopping=40)
        protected_cols = {adult.schema.index_of(a) for a in ATTRS}
        initial_by_name = {ind.dataset.name: ind.dataset for ind in result.initial}
        for ind in result.population:
            for col in range(adult.n_attributes):
                if col in protected_cols:
                    continue
                assert np.array_equal(ind.dataset.codes[:, col], adult.codes[:, col])

    def test_mutation_only_run(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=11, mutation_probability=1.0).run(protections, stopping=15)
        assert all(r.operator == "mutation" for r in result.history.records)
        assert all(r.evaluations == 1 for r in result.history.records)

    def test_crossover_only_run(self, small_population):
        adult, protections = small_population
        result = make_engine(adult, seed=12, mutation_probability=0.0).run(protections, stopping=15)
        assert all(r.operator == "crossover" for r in result.history.records)
        assert all(r.evaluations == 2 for r in result.history.records)

    def test_accepts_prescored_individuals(self, small_population):
        adult, protections = small_population
        engine = make_engine(adult, seed=13)
        individuals = engine.evaluate_initial(protections)
        result = engine.run(individuals, stopping=10)
        assert len(result.history) == 10

    def test_stopping_rule_objects(self, small_population):
        adult, protections = small_population
        rule = AnyOf([MaxGenerations(12), Stagnation(patience=200)])
        result = make_engine(adult, seed=14).run(protections, stopping=rule)
        assert len(result.history) == 12

    def test_on_generation_callback(self, small_population):
        adult, protections = small_population
        seen = []
        make_engine(adult, seed=15).run(
            protections, stopping=8, on_generation=lambda record: seen.append(record.generation)
        )
        assert seen == list(range(1, 9))

    def test_mean_score_fitness_also_works(self, small_population):
        adult, protections = small_population
        evaluator = ProtectionEvaluator(adult, ATTRS, score_function=MeanScore())
        engine = EvolutionaryProtector(evaluator, seed=16)
        result = engine.run(protections, stopping=30)
        __, __, percent = result.history.improvement("mean")
        assert percent >= 0
