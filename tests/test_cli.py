"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_params, main
from repro.data import read_csv
from repro.datasets import load_adult
from repro.exceptions import ReproError


class TestParseParams:
    def test_coercion(self):
        params = _parse_params(["theta=0.2", "k=3", "strategy=joint"])
        assert params == {"theta": 0.2, "k": 3, "strategy": "joint"}

    def test_bad_pair(self):
        with pytest.raises(ReproError):
            _parse_params(["thetacomma"])


class TestDatasets:
    def test_lists_all_four(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("housing", "german", "flare", "adult"):
            assert name in out


class TestGenerate:
    def test_writes_loadable_csv(self, tmp_path, capsys):
        path = tmp_path / "adult.csv"
        assert main(["generate", "--dataset", "adult", "--output", str(path)]) == 0
        loaded = read_csv(path, load_adult().schema)
        assert loaded.equals(load_adult())


class TestProtectEvaluate:
    def test_protect_then_evaluate(self, tmp_path, capsys):
        masked_path = tmp_path / "masked.csv"
        code = main(
            [
                "protect",
                "--dataset", "adult",
                "--method", "pram",
                "--param", "theta=0.3",
                "--seed", "7",
                "--output", str(masked_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pram(theta=0.3)" in out
        assert masked_path.exists()

        code = main(
            ["evaluate", "--dataset", "adult", "--masked", str(masked_path), "--score", "max"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "information loss" in out
        assert "ctbil" in out and "rsrl" in out

    def test_protect_unknown_method_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "protect",
                "--dataset", "adult",
                "--method", "oracle",
                "--output", str(tmp_path / "x.csv"),
            ]
        )
        assert code == 2
        assert "unknown method" in capsys.readouterr().err

    def test_protect_custom_attributes(self, tmp_path, capsys):
        path = tmp_path / "m.csv"
        code = main(
            [
                "protect",
                "--dataset", "adult",
                "--method", "top_coding",
                "--attributes", "EDUCATION",
                "--output", str(path),
            ]
        )
        assert code == 0
        assert "EDUCATION" in capsys.readouterr().out


class TestEvolve:
    def test_small_evolve_run(self, tmp_path, capsys):
        best_path = tmp_path / "best.csv"
        code = main(
            [
                "evolve",
                "--dataset", "adult",
                "--score", "max",
                "--generations", "8",
                "--seed", "1",
                "--output", str(best_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement %" in out
        assert "initial (o) vs final (x)" in out
        assert best_path.exists()
        loaded = read_csv(best_path, load_adult().schema)
        assert loaded.n_records == 1000


class TestExport:
    def test_export_writes_three_files(self, tmp_path, capsys):
        code = main(
            [
                "export",
                "--dataset", "adult",
                "--generations", "5",
                "--seed", "1",
                "--directory", str(tmp_path / "figs"),
            ]
        )
        assert code == 0
        written = sorted(p.name for p in (tmp_path / "figs").iterdir())
        assert len(written) == 3
        assert any("dispersion" in name for name in written)
        assert any("evolution" in name for name in written)
        assert any("improvements" in name for name in written)


class TestExperiment:
    def test_e3_cli(self, capsys):
        code = main(
            [
                "experiment",
                "--id", "e3",
                "--generations", "5",
                "--seed", "1",
                "--drop-best", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "E3 flare without best 5%" in out
