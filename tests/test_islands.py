"""Island-model unit tests: topology, planning, migrants, engine hook.

The fleet-level determinism and recovery battery lives in
``test_islands_fleet.py``; this file pins the pure pieces — topology
maps, job planning and fingerprints, seed-stream disjointness, migrant
selection/injection, the migrant-blob wire format, and the engine's
migration hook contract.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import EvolutionaryProtector
from repro.data import CategoricalDataset
from repro.datasets import load_adult
from repro.exceptions import EvolutionError, ServiceError
from repro.metrics import ProtectionEvaluator
from repro.methods import Microaggregation, Pram, RankSwapping
from repro.service import (
    TOPOLOGIES,
    IslandParked,
    JobStore,
    ProtectionJob,
    front_dominates_or_matches,
    island_group_id,
    island_topology,
    member_job_ids,
    migrants_blob_id,
    plan_island_jobs,
)
from repro.service.islands import (
    parked_signature,
    plan_injection,
    publish_migrants,
    read_round_migrants,
    select_migrants,
)

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


# -- topology ---------------------------------------------------------------


class TestTopology:
    def test_ring_is_pinned(self):
        assert island_topology("ring", 4) == {
            0: (3,), 1: (0,), 2: (1,), 3: (2,),
        }

    def test_star_is_pinned(self):
        assert island_topology("star", 4) == {
            0: (1, 2, 3), 1: (0,), 2: (0,), 3: (0,),
        }

    def test_full_is_pinned(self):
        assert island_topology("full", 3) == {
            0: (1, 2), 1: (0, 2), 2: (0, 1),
        }

    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("islands", [2, 3, 5])
    def test_no_island_starves_and_every_island_feeds(self, name, islands):
        inbound = island_topology(name, islands)
        assert set(inbound) == set(range(islands))
        senders = set()
        for island, peers in inbound.items():
            assert peers, f"island {island} receives from nobody"
            assert island not in peers, "an island never feeds itself"
            senders.update(peers)
        assert senders == set(range(islands))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ServiceError, match="topology"):
            island_topology("mesh", 4)

    def test_too_few_islands_rejected(self):
        with pytest.raises(ServiceError):
            island_topology("ring", 1)


# -- planning and fingerprints ----------------------------------------------


class TestPlanning:
    BASE = ProtectionJob(dataset="flare", generations=10, seed=7)

    def test_single_island_is_the_base_job(self):
        assert plan_island_jobs(self.BASE, 1) == [self.BASE]

    def test_group_shape(self):
        group = plan_island_jobs(self.BASE, 3, migrate_every=5, migrants=2)
        assert len(group) == 4  # 3 members + the merge job
        assert [job.island_index for job in group] == [0, 1, 2, 3]
        assert all(job.islands == 3 for job in group)
        assert all(job.migrate_every == 5 for job in group)
        assert all(job.topology == "ring" for job in group)
        merge = group[-1]
        assert merge.island_index == merge.islands

    def test_one_group_id_many_job_ids(self):
        group = plan_island_jobs(self.BASE, 3)
        ids = {job.job_id for job in group}
        assert len(ids) == 4
        assert len({island_group_id(job) for job in group}) == 1

    def test_member_job_ids_match_the_plan(self):
        group = plan_island_jobs(self.BASE, 3)
        assert member_job_ids(group[-1]) == [job.job_id for job in group[:-1]]

    @pytest.mark.parametrize("kwargs", [
        {"migrate_every": 0},
        {"migrants": 0},
        {"topology": "mesh"},
    ])
    def test_bad_plan_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            plan_island_jobs(self.BASE, 2, **kwargs)

    def test_island_fields_outside_island_runs_do_not_move_fingerprints(self):
        # Pre-island stores hold fingerprints hashed without these
        # fields; a job that is not an island run must keep hashing
        # (and naming) exactly as before.
        decoy = replace(self.BASE, island_index=3, topology="star",
                        migrate_every=9, migrants=5)
        assert decoy.fingerprint() == self.BASE.fingerprint()
        assert decoy.job_id == self.BASE.job_id

    def test_island_fields_in_island_runs_do_move_fingerprints(self):
        group = plan_island_jobs(self.BASE, 2)
        prints = {job.fingerprint() for job in group}
        assert len(prints) == 3
        assert self.BASE.fingerprint() not in prints

    def test_island_job_round_trips_through_dict(self):
        job = plan_island_jobs(self.BASE, 2)[1]
        assert ProtectionJob.from_dict(job.to_dict()) == job

    def test_to_config_drops_island_fields(self):
        config = plan_island_jobs(self.BASE, 2)[0].to_config()
        assert config.dataset == "flare"
        assert not hasattr(config, "islands")


# -- seed streams -----------------------------------------------------------


class TestSeedStreams:
    def test_streams_are_disjoint(self):
        streams = np.random.SeedSequence(42).spawn(4)
        draws = [np.random.default_rng(s).integers(0, 2**63, size=8).tolist()
                 for s in streams]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert draws[i] != draws[j]

    def test_streams_are_reproducible(self):
        one = np.random.default_rng(np.random.SeedSequence(42).spawn(4)[2])
        two = np.random.default_rng(np.random.SeedSequence(42).spawn(4)[2])
        assert one.integers(0, 2**63, size=8).tolist() == \
            two.integers(0, 2**63, size=8).tolist()


# -- migrants: selection, injection, wire format ----------------------------


@pytest.fixture(scope="module")
def scored_individuals():
    """Seven evaluated individuals over a 120-row Adult slice."""
    from repro.core.individual import Individual

    full = load_adult()
    adult = CategoricalDataset(full.codes[:120], full.schema, name="adult-small")
    protections = [Pram(theta=t).protect(adult, ATTRS, seed=i)
                   for i, t in enumerate((0.1, 0.3, 0.5))]
    protections += [RankSwapping(p=p).protect(adult, ATTRS, seed=10 + p)
                    for p in (2, 6)]
    protections += [Microaggregation(k=k).protect(adult, ATTRS) for k in (3, 6)]
    evaluator = ProtectionEvaluator(adult, ATTRS)
    evaluations = evaluator.evaluate_many(protections)
    return adult, [
        Individual(dataset=data, evaluation=evaluation)
        for data, evaluation in zip(protections, evaluations)
    ]


class TestMigrantSelection:
    def test_top_k_by_score(self, scored_individuals):
        __, individuals = scored_individuals
        elites = select_migrants(individuals, 3)
        scores = sorted(ind.score for ind in individuals)
        assert [ind.score for ind in elites] == scores[:3]

    def test_k_larger_than_population(self, scored_individuals):
        __, individuals = scored_individuals
        assert len(select_migrants(individuals, 99)) == len(individuals)

    def test_selection_is_pure(self, scored_individuals):
        __, individuals = scored_individuals
        before = list(individuals)
        select_migrants(individuals, 2)
        assert individuals == before


class TestInjectionPlan:
    def test_only_strictly_better_migrants_land(self, scored_individuals):
        __, individuals = scored_individuals
        ranked = sorted(individuals, key=lambda ind: ind.score)
        best, worst = ranked[0], ranked[-1]
        plan = plan_injection(individuals, [best, worst])
        # The incoming copy of the best strictly improves the worst
        # slot; the incoming copy of the worst improves nothing.
        assert len(plan) == 1
        slot, migrant = plan[0]
        assert individuals[slot].score == worst.score
        assert migrant.score == best.score

    def test_migrants_are_retagged(self, scored_individuals):
        __, individuals = scored_individuals
        best = min(individuals, key=lambda ind: ind.score)
        ((__, migrant),) = plan_injection(individuals, [best])
        assert migrant.origin == "migrant"

    def test_no_slot_is_taken_twice(self, scored_individuals):
        __, individuals = scored_individuals
        best = min(individuals, key=lambda ind: ind.score)
        plan = plan_injection(individuals, [best, best, best])
        slots = [slot for slot, __ in plan]
        assert len(slots) == len(set(slots))

    def test_plan_is_deterministic(self, scored_individuals):
        __, individuals = scored_individuals
        migrants = select_migrants(individuals, 3)
        one = plan_injection(individuals, migrants)
        two = plan_injection(individuals, migrants)
        assert [(slot, ind.score) for slot, ind in one] == \
            [(slot, ind.score) for slot, ind in two]


class TestMigrantBlobs:
    BASE = ProtectionJob(dataset="flare", generations=10, seed=7)

    def _job(self):
        return plan_island_jobs(self.BASE, 2, migrate_every=5, migrants=2)[0]

    def test_round_trip(self, tmp_path, scored_individuals):
        adult, individuals = scored_individuals
        store = JobStore(tmp_path / "store")
        job = self._job()
        assert publish_migrants(store, job, 1, 5, individuals)
        back = read_round_migrants(store, job.job_id, island_group_id(job),
                                   1, adult)
        elites = select_migrants(individuals, 2)
        assert [ind.score for ind in back] == [ind.score for ind in elites]
        assert all(
            np.array_equal(a.dataset.codes, b.dataset.codes)
            for a, b in zip(back, elites)
        )

    def test_unpublished_round_reads_none(self, tmp_path, scored_individuals):
        adult, individuals = scored_individuals
        store = JobStore(tmp_path / "store")
        job = self._job()
        publish_migrants(store, job, 1, 5, individuals)
        assert read_round_migrants(store, job.job_id, island_group_id(job),
                                   2, adult) is None

    def test_absent_blob_reads_none(self, tmp_path, scored_individuals):
        adult, __ = scored_individuals
        job = self._job()
        store = JobStore(tmp_path / "store")
        assert read_round_migrants(store, job.job_id, island_group_id(job),
                                   1, adult) is None

    def test_first_write_wins(self, tmp_path, scored_individuals):
        adult, individuals = scored_individuals
        store = JobStore(tmp_path / "store")
        job = self._job()
        assert publish_migrants(store, job, 1, 5, individuals[:3])
        # A re-published round (a worker re-running a recovered segment)
        # must not move what peers may have already consumed.
        assert not publish_migrants(store, job, 1, 5, individuals[3:])
        back = read_round_migrants(store, job.job_id, island_group_id(job),
                                   1, adult)
        first = select_migrants(individuals[:3], 2)
        assert [ind.score for ind in back] == [ind.score for ind in first]

    def test_foreign_group_reads_none(self, tmp_path, scored_individuals):
        adult, individuals = scored_individuals
        store = JobStore(tmp_path / "store")
        job = self._job()
        publish_migrants(store, job, 1, 5, individuals)
        assert read_round_migrants(store, job.job_id, "ig-somebody-else",
                                   1, adult) is None

    def test_blob_id_rides_the_checkpoint_channel(self):
        assert migrants_blob_id("flare-s7-abc") == "flare-s7-abc.migrants"


# -- parked signal ----------------------------------------------------------


class TestParkedSignal:
    def test_to_dict_and_signature(self):
        parked = IslandParked("job-1", 3, 75, waiting_on=("job-2",))
        payload = parked.to_dict()
        assert payload == {
            "job_id": "job-1", "round": 3, "generation": 75,
            "waiting_on": ["job-2"],
        }
        assert parked_signature(payload) == (3, 75)


# -- the engine's migration hook --------------------------------------------


@pytest.fixture(scope="module")
def small_population():
    full = load_adult()
    adult = CategoricalDataset(full.codes[:120], full.schema, name="adult-small")
    protections = [Pram(theta=t).protect(adult, ATTRS, seed=i)
                   for i, t in enumerate((0.1, 0.3, 0.5))]
    protections += [RankSwapping(p=p).protect(adult, ATTRS, seed=10 + p)
                    for p in (2, 6)]
    protections += [Microaggregation(k=k).protect(adult, ATTRS) for k in (3, 6)]
    return adult, protections


def make_engine(adult, **kwargs) -> EvolutionaryProtector:
    return EvolutionaryProtector(ProtectionEvaluator(adult, ATTRS), **kwargs)


class TestEngineMigrationHook:
    def test_fires_every_m_generations(self, small_population):
        adult, protections = small_population
        seen = []
        make_engine(adult, seed=3).run(
            protections, stopping=6, migration_every=2,
            on_migration=lambda pop, gen, capture: seen.append(gen),
        )
        assert seen == [2, 4, 6]

    def test_noop_hook_leaves_the_run_bit_identical(self, small_population):
        adult, protections = small_population
        plain = make_engine(adult, seed=3).run(protections, stopping=4)
        hooked = make_engine(adult, seed=3).run(
            protections, stopping=4, migration_every=1,
            on_migration=lambda pop, gen, capture: None,
        )
        assert [ind.score for ind in plain.population] == \
            [ind.score for ind in hooked.population]
        assert [(rec.min_score, rec.mean_score) for rec in plain.history.records] == \
            [(rec.min_score, rec.mean_score) for rec in hooked.history.records]

    def test_capture_resumes_bit_identically(self, small_population):
        # The park/resume determinism keystone: a checkpoint captured
        # at an exchange boundary, resumed in a fresh engine, must land
        # exactly where the uninterrupted run lands.
        adult, protections = small_population
        grabbed = {}

        def hook(population, generation, capture):
            if generation == 2:
                grabbed["checkpoint"] = capture()

        full = make_engine(adult, seed=3).run(
            protections, stopping=5, migration_every=2, on_migration=hook,
        )
        resumed = make_engine(adult, seed=99).resume(
            grabbed["checkpoint"], stopping=5,
        )
        assert [ind.score for ind in full.population] == \
            [ind.score for ind in resumed.population]

    def test_negative_cadence_rejected(self, small_population):
        adult, protections = small_population
        with pytest.raises(EvolutionError):
            make_engine(adult, seed=3).run(
                protections, stopping=3, migration_every=-1,
                on_migration=lambda pop, gen, capture: None,
            )


# -- front comparison -------------------------------------------------------


class TestFrontDominance:
    def test_dominating_front(self):
        assert front_dominates_or_matches(
            [(0.5, 1.0), (2.0, 0.2)], [(1.0, 1.0), (2.0, 0.5)]
        )

    def test_matching_point_counts(self):
        assert front_dominates_or_matches([(1.0, 1.0)], [(1.0, 1.0)])

    def test_uncovered_baseline_fails(self):
        assert not front_dominates_or_matches(
            [(2.0, 2.0)], [(1.0, 1.0)]
        )
