"""CLI tests for the detached-submission flow: submit --detach / worker."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import JobStore, ProtectionJob


@pytest.fixture(scope="module")
def state_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro-worker-state"))


@pytest.fixture(scope="module")
def detached(state_dir):
    code = main([
        "submit",
        "--dataset", "adult",
        "--generations", "1",
        "--seeds", "51,52",
        "--checkpoint-every", "0",
        "--detach",
        "--state-dir", state_dir,
    ])
    assert code == 0
    return [
        ProtectionJob(dataset="adult", generations=1, seed=seed).job_id
        for seed in (51, 52)
    ]


class TestDetach:
    def test_records_left_queued(self, state_dir, detached):
        store = JobStore(state_dir)
        for job_id in detached:
            assert store.get(job_id).status == "queued"

    def test_no_job_ran(self, state_dir, detached):
        store = JobStore(state_dir)
        for job_id in detached:
            record = store.get(job_id)
            assert record.result is None and record.started_at is None

    def test_worker_once_drains_queue(self, state_dir, detached, capsys):
        assert main(["worker", "--once", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "ran 2 job(s)" in out
        store = JobStore(state_dir)
        for job_id in detached:
            assert store.get(job_id).status == "completed"
        assert store.claimed_job_ids() == []

    def test_idle_worker_reports_empty_queue(self, state_dir, detached, capsys):
        assert main(["worker", "--once", "--state-dir", state_dir]) == 0
        assert "no claimable queued jobs" in capsys.readouterr().out


class TestDuplicateSeeds:
    def test_duplicates_deduped_with_notice(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        code = main([
            "submit",
            "--dataset", "adult",
            "--generations", "1",
            "--seeds", "7,7,8,7",
            "--detach",
            "--state-dir", state,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped 2 duplicate seed(s)" in out
        assert "queued 2 job(s)" in out
        assert len(JobStore(state).queued()) == 2


class TestCacheBound:
    def test_max_entries_evicts(self, state_dir, detached, capsys):
        # The module-scoped worker run above populated the cache.
        main(["worker", "--once", "--state-dir", state_dir])
        capsys.readouterr()
        assert main(["cache", "--state-dir", state_dir]) == 0
        entries = int(
            capsys.readouterr().out.split("entries: ")[1].strip()
        )
        assert entries > 3
        assert main(["cache", "--max-entries", "3", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert f"evicted {entries - 3}" in out
        assert "entries: 3" in out


class TestClaimGuards:
    def test_inline_submit_skips_jobs_claimed_elsewhere(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        job_id = ProtectionJob(dataset="adult", generations=1, seed=61).job_id
        main(["submit", "--dataset", "adult", "--generations", "1",
              "--seed", "61", "--detach", "--state-dir", state])
        store = JobStore(state)
        store.claim(job_id, owner="another-worker")
        capsys.readouterr()
        code = main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seed", "61", "--checkpoint-every", "0",
                     "--state-dir", state])
        assert code == 0
        assert "claimed by another worker, skipping" in capsys.readouterr().out
        assert store.get(job_id).status == "queued"

    def test_resume_force_takes_over_stale_claim(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        # Run one checkpointed job to completion so a real checkpoint exists.
        main(["submit", "--dataset", "adult", "--generations", "2",
              "--seed", "63", "--checkpoint-every", "1", "--state-dir", state])
        store = JobStore(state)
        job_id = ProtectionJob(dataset="adult", generations=2, seed=63).job_id
        # Simulate a crashed worker: running record + leftover claim.
        record = store.get(job_id)
        record.status = "running"
        record.result = None
        store.save(record)
        store.claim(job_id, owner="crashed-worker")
        capsys.readouterr()
        assert main(["resume", "--job", job_id, "--state-dir", state]) == 2
        assert "--force" in capsys.readouterr().err
        assert main(["resume", "--job", job_id, "--force",
                     "--state-dir", state]) == 0
        assert store.get(job_id).status == "completed"
        assert store.claimed_job_ids() == []

    def test_resume_refuses_claimed_job(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        store = JobStore(state)
        record = store.submit(ProtectionJob(dataset="adult", generations=1, seed=62))
        store.mark_running(record)
        store.claim(record.job_id, owner="another-worker")
        # The claim guard fires before the checkpoint is ever read, so a
        # placeholder file is enough to get past the existence check.
        (store.checkpoints_dir / f"{record.job_id}.json").write_text("{}")
        code = main(["resume", "--job", record.job_id, "--state-dir", state])
        assert code == 2
        assert "claimed by another worker" in capsys.readouterr().err


class TestWorkerFailures:
    def test_failed_job_sets_exit_code(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        store = JobStore(state)
        store.submit(ProtectionJob(dataset="bogus", generations=1))
        code = main(["worker", "--once", "--state-dir", state])
        captured = capsys.readouterr()
        assert code == 1
        assert "failed" in captured.err
