"""Determinism regression: ``--eval-workers`` never changes a run.

Evaluation is pure and the engine's RNG stream is untouched by how
fitness batches are executed, so the same seeded run must produce a
bit-identical history and final population with 1, 2 or 4 evaluation
workers, on the thread and the process pool alike.  This is the
guarantee that makes ``eval_workers`` a pure throughput knob (and keeps
it out of job fingerprints).
"""

from __future__ import annotations

import pytest

from repro.core import EvolutionaryProtector
from repro.metrics import ProtectionEvaluator
from repro.service.backends import create_backend
from repro.service.job import ProtectionJob
from repro.service.runner import JobRunner

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]
GENERATIONS = 12
SEED = 17


@pytest.fixture(scope="module")
def population(request):
    adult = request.getfixturevalue("small_adult")
    from repro.methods import Pram, RankSwapping

    protections = [
        Pram(theta=t).protect(adult, ATTRS, seed=i) for i, t in enumerate((0.1, 0.3, 0.5))
    ]
    protections += [RankSwapping(p=p).protect(adult, ATTRS, seed=p) for p in (2, 6)]
    return adult, protections


def run_with_executor(adult, protections, executor):
    evaluator = ProtectionEvaluator(adult, ATTRS, executor=executor)
    engine = EvolutionaryProtector(evaluator, seed=SEED)
    return engine.run(protections, stopping=GENERATIONS)


def run_signature(result):
    """Everything observable about a run except wall-clock timing."""
    history = [
        (r.generation, r.operator, r.max_score, r.mean_score, r.min_score,
         r.evaluations, r.accepted)
        for r in result.history.records
    ]
    population = [
        (ind.dataset.fingerprint(), ind.score, ind.information_loss,
         ind.disclosure_risk)
        for ind in result.population
    ]
    return history, population


class TestEvalWorkersDeterminism:
    def test_thread_workers_bit_identical(self, population):
        adult, protections = population
        serial = run_signature(run_with_executor(adult, protections, None))
        for workers in (1, 2, 4):
            executor = (
                create_backend("thread", max_workers=workers) if workers > 1 else None
            )
            assert run_signature(run_with_executor(adult, protections, executor)) == serial

    def test_process_workers_bit_identical(self, population):
        adult, protections = population
        serial = run_signature(run_with_executor(adult, protections, None))
        executor = create_backend("process", max_workers=2)
        assert run_signature(run_with_executor(adult, protections, executor)) == serial


class TestTelemetryDeterminism:
    """Telemetry is a pure observer: it never moves a seeded run.

    The registry and event log only read clocks and bump numbers — no
    RNG draws, no fingerprint inputs — so the same seeded run must be
    bit-identical with telemetry fully on (registry recording, events
    streaming) and fully off.  This is the contract that lets operators
    flip ``--log-json`` on a production fleet without invalidating
    reproducibility claims.
    """

    def run_pair(self, run):
        """``run("quiet")`` with telemetry off, ``run("loud")`` fully on."""
        import io

        from repro import obs

        obs.disable()
        obs.get_registry().reset()
        obs.configure_events(None)
        try:
            quiet = run("quiet")
            obs.enable()
            obs.configure_events(io.StringIO(), command="test")
            loud = run("loud")
        finally:
            obs.disable()
            obs.get_registry().reset()
            obs.configure_events(None)
        return quiet, loud

    def test_engine_run_bit_identical_with_telemetry(self, population):
        adult, protections = population
        quiet, loud = self.run_pair(
            lambda _: run_signature(run_with_executor(adult, protections, None))
        )
        assert quiet == loud

    def test_worker_run_bit_identical_with_telemetry(self, tmp_path):
        from repro.obs import instrument_store
        from repro.service import JobStore, Worker

        def run_job(state):
            store = instrument_store(JobStore(tmp_path / state))
            store.submit(ProtectionJob(dataset="flare", generations=4, seed=9))
            (outcome,) = Worker(store, worker_id=f"w-{state}").run_once()
            result = outcome.result
            return (result.final_scores, result.best_score,
                    result.extras["timeline"]["best"],
                    result.extras["timeline"]["evaluations"])

        quiet, loud = self.run_pair(run_job)
        assert quiet == loud


class TestJobLevelWiring:
    def test_job_fingerprint_ignores_eval_workers(self):
        base = ProtectionJob(dataset="flare", seed=1)
        tuned = ProtectionJob(dataset="flare", seed=1, eval_workers=8,
                              eval_backend="process")
        assert base.fingerprint() == tuned.fingerprint()
        assert base.job_id == tuned.job_id

    def test_job_roundtrip_carries_eval_fields(self):
        job = ProtectionJob(dataset="flare", eval_workers=3, eval_backend="process")
        assert ProtectionJob.from_dict(job.to_dict()) == job
        config = job.to_config()
        assert config.eval_workers == 3
        assert config.eval_backend == "process"

    def test_runner_results_identical_across_eval_workers(self):
        job = ProtectionJob(dataset="flare", generations=6, seed=5,
                            population_seed=0)
        serial = JobRunner().run([job])
        threaded = JobRunner(eval_workers=2).run([job.with_seed(5)])
        assert serial[0].final_scores == threaded[0].final_scores
        assert serial[0].best_score == threaded[0].best_score
        stats = threaded[0].extras.get("evaluator_stats")
        assert stats and stats["evaluations"] == serial[0].fresh_evaluations

    def test_runner_rejects_bad_eval_config(self):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError):
            JobRunner(eval_workers=-1)
        with pytest.raises(ServiceError):
            JobRunner(eval_backend="serial")
