"""Failure-injection tests: broken components must fail loudly and cleanly.

The library's error philosophy: never silently degrade a privacy
computation.  A measure returning garbage, a protection emitting
out-of-domain codes, or an incompatible file must surface as a typed
ReproError (or subclass) at the point of entry — not as a wrong score.
"""

from __future__ import annotations

import pytest

from repro.core import EvolutionaryProtector
from repro.data import CategoricalDataset
from repro.exceptions import MetricError, ReproError
from repro.methods import Pram, ProtectionMethod
from repro.metrics import ProtectionEvaluator, default_dr_measures, default_il_measures
from repro.metrics.base import DisclosureRiskMeasure, InformationLossMeasure

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class _NanMeasure(InformationLossMeasure):
    measure_name = "nan_measure"

    def _compute(self, masked):
        return float("nan")


class _OutOfRangeMeasure(InformationLossMeasure):
    measure_name = "overflow_measure"

    def _compute(self, masked):
        return 150.0


class _RaisingMeasure(DisclosureRiskMeasure):
    measure_name = "raising_measure"

    def _compute(self, masked):
        raise RuntimeError("sensor exploded")


class _CorruptingMethod(ProtectionMethod):
    method_name = "corrupting"

    def protect_column(self, dataset, column, rng):
        out = dataset.column(column).copy()
        out[0] = dataset.schema.domain(column).size + 5  # out of domain
        return out


class TestMeasureFailures:
    def test_out_of_range_measure_rejected(self, small_adult):
        measure = _OutOfRangeMeasure(small_adult, ATTRS)
        with pytest.raises(MetricError, match="outside"):
            measure.compute(small_adult)

    def test_nan_measure_rejected(self, small_adult):
        measure = _NanMeasure(small_adult, ATTRS)
        with pytest.raises(MetricError):
            measure.compute(small_adult)

    def test_raising_measure_propagates(self, small_adult):
        evaluator = ProtectionEvaluator(
            small_adult,
            ATTRS,
            il_measures=default_il_measures(small_adult, ATTRS),
            dr_measures=default_dr_measures(small_adult, ATTRS) + [_RaisingMeasure(small_adult, ATTRS)],
        )
        with pytest.raises(RuntimeError, match="sensor exploded"):
            evaluator.evaluate(small_adult)

    def test_failed_evaluation_not_cached(self, small_adult):
        flaky_calls = {"count": 0}

        class _FlakyMeasure(InformationLossMeasure):
            measure_name = "flaky"

            def _compute(self, masked):
                flaky_calls["count"] += 1
                if flaky_calls["count"] == 1:
                    raise RuntimeError("transient")
                return 1.0

        evaluator = ProtectionEvaluator(
            small_adult,
            ATTRS,
            il_measures=[_FlakyMeasure(small_adult, ATTRS)],
            dr_measures=default_dr_measures(small_adult, ATTRS),
        )
        with pytest.raises(RuntimeError):
            evaluator.evaluate(small_adult)
        # Second attempt recomputes (nothing poisoned the cache) and succeeds.
        score = evaluator.evaluate(small_adult)
        assert score.information_loss == 1.0


class TestMethodFailures:
    def test_out_of_domain_protection_rejected(self, small_adult):
        with pytest.raises(ReproError):
            _CorruptingMethod().protect(small_adult, ATTRS)


class TestEngineFailures:
    def test_incompatible_protection_rejected_up_front(self, small_adult, adult):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        engine = EvolutionaryProtector(evaluator, seed=0)
        good = Pram(theta=0.2).protect(small_adult, ATTRS, seed=0)
        bad = adult  # wrong record count
        with pytest.raises(ReproError):
            engine.run([good, bad], stopping=3)

    def test_mid_run_measure_failure_propagates(self, small_adult):
        calls = {"count": 0}

        class _TimeBomb(InformationLossMeasure):
            measure_name = "time_bomb"

            def _compute(self, masked):
                calls["count"] += 1
                if calls["count"] > 4:
                    raise RuntimeError("boom")
                return 1.0

        evaluator = ProtectionEvaluator(
            small_adult,
            ATTRS,
            il_measures=[_TimeBomb(small_adult, ATTRS)],
            dr_measures=default_dr_measures(small_adult, ATTRS),
            cache_size=0,
        )
        engine = EvolutionaryProtector(evaluator, seed=1)
        protections = [Pram(theta=t).protect(small_adult, ATTRS, seed=i)
                       for i, t in enumerate((0.1, 0.2, 0.3))]
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(protections, stopping=50)


class TestDataFailures:
    def test_read_only_codes_cannot_be_poked(self, small_adult):
        with pytest.raises(ValueError):
            small_adult.codes[0, 0] = 0

    def test_negative_codes_rejected_at_construction(self, small_adult):
        codes = small_adult.codes_copy()
        codes[0, 0] = -1
        with pytest.raises(ReproError):
            CategoricalDataset(codes, small_adult.schema)
