"""JobRunner acceptance tests: backend equivalence and warm-cache reuse.

The ISSUE's bar: a two-replicate experiment run through ``JobRunner``
with the process backend produces byte-identical scores to the serial
path, and re-running it with a warm cache performs zero fresh metric
evaluations.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.experiments import ExperimentConfig, run_replicates
from repro.service import JobRunner, ProtectionJob

JOB = ProtectionJob(dataset="adult", score="max", generations=4, seed=11)
SEEDS = (11, 12)


@pytest.fixture(scope="module")
def service_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    return {
        "serial_cache": str(root / "serial.sqlite"),
        "process_cache": str(root / "process.sqlite"),
        "checkpoints": str(root / "checkpoints"),
    }


@pytest.fixture(scope="module")
def serial_results(service_dirs):
    runner = JobRunner(
        backend="serial",
        cache_path=service_dirs["serial_cache"],
        checkpoint_dir=service_dirs["checkpoints"],
        checkpoint_every=2,
    )
    return runner.run_replicates(JOB, SEEDS)


@pytest.fixture(scope="module")
def process_results(service_dirs):
    runner = JobRunner(
        backend="process", max_workers=2, cache_path=service_dirs["process_cache"]
    )
    return runner.run_replicates(JOB, SEEDS)


class TestBackendEquivalence:
    def test_two_replicates_run(self, serial_results):
        assert [r.seed for r in serial_results] == list(SEEDS)
        assert all(r.generations == JOB.generations for r in serial_results)

    def test_process_scores_byte_identical_to_serial(self, serial_results, process_results):
        for serial, process in zip(serial_results, process_results):
            assert process.final_scores == serial.final_scores
            assert process.best_score == serial.best_score
            assert process.best_information_loss == serial.best_information_loss
            assert process.best_disclosure_risk == serial.best_disclosure_risk

    def test_warm_cache_does_zero_fresh_evaluations(self, service_dirs, process_results):
        runner = JobRunner(
            backend="process", max_workers=2, cache_path=service_dirs["process_cache"]
        )
        warm = runner.run_replicates(JOB, SEEDS)
        for cold, rerun in zip(process_results, warm):
            assert rerun.fresh_evaluations == 0
            assert rerun.persistent_hits > 0
            assert rerun.final_scores == cold.final_scores

    def test_replicates_share_the_cache(self, serial_results):
        # The second replicate scores the same initial population, so the
        # shared persistent cache absorbs most of its evaluation work.
        first, second = serial_results
        assert second.persistent_hits > 0
        assert second.fresh_evaluations < first.fresh_evaluations

    def test_resume_from_final_checkpoint_reproduces_result(self, service_dirs, serial_results):
        runner = JobRunner(
            backend="serial",
            cache_path=service_dirs["serial_cache"],
            checkpoint_dir=service_dirs["checkpoints"],
            checkpoint_every=2,
        )
        (resumed,) = runner.run([JOB], resume=True)
        assert resumed.final_scores == serial_results[0].final_scores

    def test_resume_without_checkpoint_dir_rejected(self):
        runner = JobRunner(backend="serial")
        with pytest.raises(ServiceError):
            runner.run([JOB], resume=True)


class TestFanOutShapes:
    def test_run_replicates_needs_seeds(self):
        with pytest.raises(ServiceError):
            JobRunner().run_replicates(JOB, [])

    def test_empty_job_list(self):
        assert JobRunner().run([]) == []

    def test_grid_covers_product(self):
        runner = JobRunner()
        jobs = runner.grid(["adult", "flare"], scores=["max", "mean"], seeds=[1, 2],
                           generations=5)
        assert len(jobs) == 8
        assert {(j.dataset, j.score, j.seed) for j in jobs} == {
            (d, s, seed) for d in ("adult", "flare") for s in ("max", "mean") for seed in (1, 2)
        }
        assert all(j.generations == 5 for j in jobs)

    def test_experiments_run_replicates_routes_through_runner(self, service_dirs):
        config = ExperimentConfig(dataset="adult", score="max", generations=4, seed=11)
        results = run_replicates(
            config, SEEDS, backend="serial", cache_path=service_dirs["serial_cache"]
        )
        # Fully warm cache: the experiment-layer entry point reuses every
        # evaluation the earlier module runs stored.
        assert [r.seed for r in results] == list(SEEDS)
        assert all(r.fresh_evaluations == 0 for r in results)

    def test_score_population_matches_direct_evaluation(self, small_adult, tmp_path):
        from repro.metrics import ProtectionEvaluator
        from repro.methods import Pram, RankSwapping

        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        protections = [
            Pram(theta=0.2).protect(small_adult, attrs, seed=1),
            RankSwapping(p=3).protect(small_adult, attrs, seed=2),
            Pram(theta=0.4).protect(small_adult, attrs, seed=3),
        ]
        direct = ProtectionEvaluator(small_adult, attrs)
        expected = [direct.evaluate(p) for p in protections]

        runner = JobRunner(backend="thread", max_workers=2,
                           cache_path=str(tmp_path / "cache.sqlite"))
        scored = runner.score_population(small_adult, protections, attrs, batch_size=2)
        assert scored == expected

    def test_invalid_checkpoint_cadence(self):
        with pytest.raises(ServiceError):
            JobRunner(checkpoint_every=-2)

    def test_serial_score_population_uses_one_batch(self, small_adult, monkeypatch):
        import repro.service.runner as runner_module
        from repro.methods import Pram

        calls = []
        original_batch = runner_module._score_batch

        def counting_batch(payload):
            calls.append(payload)
            return original_batch(payload)

        monkeypatch.setattr(runner_module, "_score_batch", counting_batch)
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        protections = [
            Pram(theta=0.1 * (i + 1)).protect(small_adult, attrs, seed=i) for i in range(5)
        ]
        scored = JobRunner(backend="serial").score_population(small_adult, protections, attrs)
        assert len(scored) == 5
        assert len(calls) == 1  # serial backend: no per-batch setup overhead


class TestSettledExecution:
    def test_one_failure_does_not_poison_siblings(self, tmp_path):
        good = ProtectionJob(dataset="adult", generations=2, seed=51)
        bad = ProtectionJob(dataset="not-a-dataset", generations=2, seed=51)
        runner = JobRunner(backend="serial", cache_path=str(tmp_path / "cache.sqlite"))
        outcomes = runner.run_settled([good, bad, good.with_seed(52)])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].result is not None and outcomes[0].result.generations == 2
        assert "not-a-dataset" in outcomes[1].error
        assert outcomes[2].result is not None

    def test_run_raises_where_settled_reports(self):
        bad = ProtectionJob(dataset="not-a-dataset", generations=2, seed=1)
        with pytest.raises(Exception, match="not-a-dataset"):
            JobRunner(backend="serial").run([bad])

    def test_settled_empty(self):
        assert JobRunner().run_settled([]) == []
