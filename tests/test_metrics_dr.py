"""Unit tests for disclosure-risk measures: ID + linkage adapters."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics import (
    DistanceLinkageRisk,
    IntervalDisclosure,
    ProbabilisticLinkageRisk,
    RankSwappingLinkageRisk,
)
from repro.methods import Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestIntervalDisclosure:
    def test_identity_scores_hundred(self, adult):
        measure = IntervalDisclosure(adult, ATTRS)
        assert measure.compute(adult) == 100.0

    def test_masking_reduces_disclosure(self, adult):
        measure = IntervalDisclosure(adult, ATTRS, width=0.05)
        masked = Pram(theta=0.5).protect(adult, ATTRS, seed=0)
        assert measure.compute(masked) < 100.0

    def test_wider_interval_higher_disclosure(self, adult):
        masked = Pram(theta=0.4).protect(adult, ATTRS, seed=1)
        narrow = IntervalDisclosure(adult, ATTRS, width=0.02).compute(masked)
        wide = IntervalDisclosure(adult, ATTRS, width=0.5).compute(masked)
        assert wide >= narrow

    @pytest.mark.parametrize("width", [0.0, 1.5, -0.1])
    def test_bad_width(self, adult, width):
        with pytest.raises(MetricError):
            IntervalDisclosure(adult, ATTRS, width=width)

    def test_small_rank_moves_stay_inside_interval(self, adult):
        # Rank swapping with tiny p keeps values within a generous interval.
        masked = RankSwapping(p=1).protect(adult, ATTRS, seed=2)
        measure = IntervalDisclosure(adult, ATTRS, width=0.2)
        assert measure.compute(masked) > 80.0


class TestLinkageAdapters:
    def test_dbrl_adapter_bounds(self, small_adult):
        measure = DistanceLinkageRisk(small_adult, ATTRS)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        assert 0.0 <= measure.compute(masked) <= 100.0

    def test_prl_adapter_bounds(self, small_adult):
        measure = ProbabilisticLinkageRisk(small_adult, ATTRS)
        masked = Pram(theta=0.3).protect(small_adult, ATTRS, seed=0)
        assert 0.0 <= measure.compute(masked) <= 100.0

    def test_rsrl_adapter_bounds(self, small_adult):
        measure = RankSwappingLinkageRisk(small_adult, ATTRS, window=0.1)
        masked = RankSwapping(p=4).protect(small_adult, ATTRS, seed=0)
        assert 0.0 <= measure.compute(masked) <= 100.0

    def test_rsrl_bad_window(self, small_adult):
        with pytest.raises(MetricError):
            RankSwappingLinkageRisk(small_adult, ATTRS, window=0.0)

    def test_stronger_masking_reduces_all_linkage_risks(self, small_adult):
        mild = Pram(theta=0.05).protect(small_adult, ATTRS, seed=1)
        strong = Pram(theta=0.7).protect(small_adult, ATTRS, seed=1)
        for cls in (DistanceLinkageRisk, ProbabilisticLinkageRisk):
            measure = cls(small_adult, ATTRS)
            assert measure.compute(strong) < measure.compute(mild)

    def test_incompatible_masked_rejected(self, small_adult, adult):
        measure = DistanceLinkageRisk(small_adult, ATTRS)
        with pytest.raises(Exception):
            measure.compute(adult)

    def test_empty_attributes_rejected(self, small_adult):
        with pytest.raises(MetricError):
            DistanceLinkageRisk(small_adult, [])
