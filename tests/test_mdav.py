"""Unit tests for MDAV multivariate microaggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtectionError
from repro.methods import MdavMicroaggregation, Microaggregation
from repro.methods.mdav import _centroid, _pairwise_distance_to

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestHelpers:
    def test_distance_zero_to_self(self):
        codes = np.array([[1, 2], [3, 4]])
        sizes = np.array([5, 5])
        ordinal = np.array([True, False])
        distances = _pairwise_distance_to(codes, codes[0], sizes, ordinal)
        assert distances[0] == 0.0
        assert distances[1] > 0.0

    def test_distance_mixes_ordinal_and_nominal(self):
        codes = np.array([[0, 0], [4, 1]])
        sizes = np.array([5, 2])
        ordinal = np.array([True, False])
        distances = _pairwise_distance_to(codes, codes[0], sizes, ordinal)
        # Ordinal span 4/4 = 1.0, nominal mismatch = 1.0 -> mean 1.0.
        assert distances[1] == pytest.approx(1.0)

    def test_centroid_median_and_mode(self):
        codes = np.array([[0, 1], [2, 1], [9, 0]])
        sizes = np.array([10, 2])
        ordinal = np.array([True, False])
        center = _centroid(codes, ordinal, sizes)
        assert center[0] == 2  # median of 0, 2, 9
        assert center[1] == 1  # mode of 1, 1, 0


class TestMdav:
    def test_k_validation(self):
        with pytest.raises(ProtectionError):
            MdavMicroaggregation(k=1)

    def test_joint_k_anonymity_over_protected_tuple(self, adult):
        from repro.metrics import k_anonymity_level

        masked = MdavMicroaggregation(k=4).protect(adult, ATTRS)
        # MDAV groups records jointly: every published QI tuple covers a
        # whole group, so the tuple-level k is at least 4.
        assert k_anonymity_level(masked, ATTRS) >= 4

    def test_groups_at_least_k_per_attribute(self, adult):
        masked = MdavMicroaggregation(k=5).protect(adult, ATTRS)
        for attribute in ATTRS:
            counts = masked.value_counts(attribute)
            used = counts[counts > 0]
            assert used.min() >= 5

    def test_deterministic(self, adult):
        a = MdavMicroaggregation(k=3).protect(adult, ATTRS)
        b = MdavMicroaggregation(k=3).protect(adult, ATTRS)
        assert a.equals(b)

    def test_differs_from_univariate(self, adult):
        mdav = MdavMicroaggregation(k=4).protect(adult, ATTRS)
        univariate = Microaggregation(k=4).protect(adult, ATTRS)
        assert not mdav.equals(univariate)

    def test_untouched_attributes_identical(self, adult):
        masked = MdavMicroaggregation(k=3).protect(adult, ATTRS)
        for attribute in adult.attribute_names:
            if attribute in ATTRS:
                continue
            assert np.array_equal(masked.column(attribute), adult.column(attribute))

    def test_larger_k_coarser_tuples(self, adult):
        def distinct_tuples(dataset):
            columns = [dataset.schema.index_of(a) for a in ATTRS]
            return np.unique(dataset.codes[:, columns], axis=0).shape[0]

        small = MdavMicroaggregation(k=3).protect(adult, ATTRS)
        large = MdavMicroaggregation(k=20).protect(adult, ATTRS)
        assert distinct_tuples(large) <= distinct_tuples(small)

    def test_small_file_single_group(self, small_adult):
        from repro.data import CategoricalDataset

        tiny = CategoricalDataset(small_adult.codes[:5], small_adult.schema, name="tiny5")
        masked = MdavMicroaggregation(k=4).protect(tiny, ATTRS)
        # 5 records < 2k: one group, one published tuple.
        columns = [tiny.schema.index_of(a) for a in ATTRS]
        assert np.unique(masked.codes[:, columns], axis=0).shape[0] == 1

    def test_registered(self):
        from repro.methods import registry

        assert "mdav" in registry.names()

    def test_protect_column_single_attribute(self, small_adult):
        method = MdavMicroaggregation(k=4)
        masked = method.protect(small_adult, ["EDUCATION"])
        counts = masked.value_counts("EDUCATION")
        assert counts[counts > 0].min() >= 4
