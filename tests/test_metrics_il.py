"""Unit tests for the information-loss measures: CTBIL, DBIL, EBIL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics import ContingencyTableLoss, DistanceBasedLoss, EntropyBasedLoss
from repro.metrics.contingency import contingency_counts
from repro.metrics.entropy_il import conditional_entropy_bits
from repro.methods import GlobalRecoding, Pram, RankSwapping

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestContingencyCounts:
    def test_univariate_counts_match_value_counts(self, adult):
        column = adult.schema.index_of("EDUCATION")
        counts = contingency_counts(adult, [column])
        assert np.array_equal(counts, adult.value_counts("EDUCATION"))

    def test_bivariate_counts_sum_to_n(self, adult):
        columns = [adult.schema.index_of(a) for a in ("EDUCATION", "SEX")]
        counts = contingency_counts(adult, columns)
        assert counts.sum() == adult.n_records
        assert counts.shape == (16 * 2,)

    def test_cell_limit_enforced(self, adult):
        columns = [adult.schema.index_of(a) for a in adult.attribute_names]
        # 16*7*14*8*6*5*2*41 cells > limit
        with pytest.raises(MetricError, match="cells"):
            contingency_counts(adult, columns * 3)


class TestCTBIL:
    def test_identity_scores_zero(self, adult):
        measure = ContingencyTableLoss(adult, ATTRS)
        assert measure.compute(adult) == 0.0

    def test_rank_swapping_preserves_marginals_not_joints(self, adult):
        masked = RankSwapping(p=10).protect(adult, ATTRS, seed=0)
        order1 = ContingencyTableLoss(adult, ATTRS, max_order=1)
        order2 = ContingencyTableLoss(adult, ATTRS, max_order=2)
        # Marginal tables unchanged -> order-1 CTBIL exactly 0.
        assert order1.compute(masked) == 0.0
        # Joint structure broken -> order-2 CTBIL positive.
        assert order2.compute(masked) > 0.0

    def test_monotone_in_masking_strength(self, adult):
        measure = ContingencyTableLoss(adult, ATTRS)
        mild = Pram(theta=0.05).protect(adult, ATTRS, seed=1)
        strong = Pram(theta=0.5).protect(adult, ATTRS, seed=1)
        assert measure.compute(strong) > measure.compute(mild)

    def test_bad_max_order(self, adult):
        with pytest.raises(MetricError):
            ContingencyTableLoss(adult, ATTRS, max_order=0)

    def test_bounded(self, adult):
        measure = ContingencyTableLoss(adult, ATTRS)
        masked = Pram(theta=0.8).protect(adult, ATTRS, seed=2)
        assert 0.0 <= measure.compute(masked) <= 100.0


class TestDBIL:
    def test_identity_scores_zero(self, adult):
        assert DistanceBasedLoss(adult, ATTRS).compute(adult) == 0.0

    def test_all_nominal_changed_scores_hundred(self, adult):
        # Change every OCCUPATION value (nominal) -> per-attribute distance 1.
        codes = adult.codes_copy()
        column = adult.schema.index_of("OCCUPATION")
        codes[:, column] = (codes[:, column] + 1) % adult.domain("OCCUPATION").size
        masked = adult.with_codes(codes)
        assert DistanceBasedLoss(adult, ["OCCUPATION"]).compute(masked) == 100.0

    def test_ordinal_changes_weighted_by_distance(self, adult):
        column = adult.schema.index_of("EDUCATION")
        near = adult.codes_copy()
        near[:, column] = np.clip(near[:, column] + 1, 0, 15)
        far = adult.codes_copy()
        far[:, column] = 15 - far[:, column]
        measure = DistanceBasedLoss(adult, ["EDUCATION"])
        assert measure.compute(adult.with_codes(near)) < measure.compute(adult.with_codes(far))


class TestEBIL:
    def test_identity_scores_zero(self, adult):
        assert EntropyBasedLoss(adult, ATTRS).compute(adult) == 0.0

    def test_deterministic_bijective_recoding_scores_zero(self, adult):
        # A bijection leaks no information: conditional entropy is 0.
        column = adult.schema.index_of("EDUCATION")
        codes = adult.codes_copy()
        codes[:, column] = 15 - codes[:, column]
        masked = adult.with_codes(codes)
        assert EntropyBasedLoss(adult, ["EDUCATION"]).compute(masked) == pytest.approx(0.0)

    def test_constant_masking_scores_marginal_entropy(self, adult):
        # Publishing one constant category makes masked useless: conditional
        # entropy equals the marginal entropy of the original attribute.
        column = adult.schema.index_of("EDUCATION")
        codes = adult.codes_copy()
        codes[:, column] = 0
        masked = adult.with_codes(codes)
        counts = adult.value_counts("EDUCATION").astype(float)
        p = counts[counts > 0] / counts.sum()
        marginal_entropy = float(-(p * np.log2(p)).sum())
        expected = 100.0 * marginal_entropy / np.log2(16)
        assert EntropyBasedLoss(adult, ["EDUCATION"]).compute(masked) == pytest.approx(
            expected, rel=1e-9
        )

    def test_monotone_in_pram_strength(self, adult):
        measure = EntropyBasedLoss(adult, ATTRS)
        mild = Pram(theta=0.1).protect(adult, ATTRS, seed=3)
        strong = Pram(theta=0.6).protect(adult, ATTRS, seed=3)
        assert measure.compute(strong) > measure.compute(mild)

    def test_conditional_entropy_helper_uniform(self):
        # Joint uniform over 2x2: H(row|col) = 1 bit per record.
        joint = np.full((2, 2), 25.0)
        assert conditional_entropy_bits(joint) == pytest.approx(100.0)

    def test_recoding_loses_information(self, adult):
        masked = GlobalRecoding(level=2).protect(adult, ["EDUCATION"])
        assert EntropyBasedLoss(adult, ["EDUCATION"]).compute(masked) > 0.0
