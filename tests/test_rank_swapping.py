"""Unit tests for rank swapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtectionError
from repro.methods import RankSwapping


class TestValidation:
    @pytest.mark.parametrize("p", [0, -1, 101])
    def test_bad_p(self, p):
        with pytest.raises(ProtectionError):
            RankSwapping(p=p)

    def test_describe(self):
        assert RankSwapping(p=5).describe() == "rankswap(p=5)"


class TestMarginalPreservation:
    """Rank swapping permutes values: marginals are preserved exactly."""

    @pytest.mark.parametrize("p", [1, 5, 20])
    def test_value_counts_unchanged(self, adult, p):
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        masked = RankSwapping(p=p).protect(adult, attrs, seed=3)
        for attribute in attrs:
            assert np.array_equal(
                masked.value_counts(attribute), adult.value_counts(attribute)
            )

    def test_column_is_permutation(self, adult):
        masked = RankSwapping(p=10).protect(adult, ("EDUCATION",), seed=1)
        assert sorted(masked.column("EDUCATION")) == sorted(adult.column("EDUCATION"))


class TestWindow:
    def test_small_window_small_moves(self, adult):
        # Ordinal attribute: with p=1 the swapped value's rank moves by at
        # most ~1% of records, so code distance should stay tiny.
        masked = RankSwapping(p=1).protect(adult, ("EDUCATION",), seed=2)
        moved = np.abs(masked.column("EDUCATION") - adult.column("EDUCATION"))
        assert moved.max() <= 2

    def test_larger_p_changes_more(self, adult):
        small = RankSwapping(p=1).protect(adult, ("EDUCATION",), seed=4)
        large = RankSwapping(p=30).protect(adult, ("EDUCATION",), seed=4)
        dist_small = np.abs(small.column("EDUCATION") - adult.column("EDUCATION")).sum()
        dist_large = np.abs(large.column("EDUCATION") - adult.column("EDUCATION")).sum()
        assert dist_large > dist_small

    def test_seed_reproducible(self, adult):
        a = RankSwapping(p=5).protect(adult, ("EDUCATION",), seed=9)
        b = RankSwapping(p=5).protect(adult, ("EDUCATION",), seed=9)
        assert a.equals(b)

    def test_different_seeds_differ(self, adult):
        a = RankSwapping(p=5).protect(adult, ("EDUCATION",), seed=1)
        b = RankSwapping(p=5).protect(adult, ("EDUCATION",), seed=2)
        assert not a.equals(b)

    def test_untouched_attributes_identical(self, adult):
        masked = RankSwapping(p=5).protect(adult, ("EDUCATION",), seed=1)
        assert np.array_equal(masked.column("SEX"), adult.column("SEX"))
