"""SqliteJobStore specifics the backend-agnostic contract cannot cover.

The conformance battery (``test_store_contract.py``) already runs
verbatim against the sqlite store, directly and behind the live HTTP
server.  What belongs here is what is *particular* to a transactional
database backend: crash rollback mid-claim (a killed claimer strands
nothing), cross-process claim exclusivity decided by ``BEGIN
IMMEDIATE``, checkpoint blobs riding in the database, worker fleets
partitioning an sqlite-backed queue byte-identically to a serial run,
and the ``store_from_spec`` / ``migrate_store`` plumbing around it all.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    JobRunner,
    JobStore,
    ProtectionJob,
    RemoteJobStore,
    SqliteJobStore,
    Worker,
    migrate_store,
    store_from_spec,
)
from repro.service.store import STORE_PROTOCOL


def _job(seed: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=1, seed=seed)


@pytest.fixture
def store(tmp_path) -> SqliteJobStore:
    return SqliteJobStore(tmp_path / "state" / "jobs.sqlite")


class TestCrashMidClaim:
    """A claimer killed inside the claim transaction strands nothing."""

    def _crash_claimer(self, store: SqliteJobStore, job_id: str,
                       after_commit: bool) -> None:
        """Run a claim in a subprocess that dies with the transaction
        open (``after_commit=False``) or right after it commits but
        before any mark/heartbeat (``after_commit=True``).  ``os._exit``
        skips every destructor, like a SIGKILL would."""
        commit = "conn.execute('COMMIT')" if after_commit else "pass"
        script = (
            "import os, sqlite3, sys, time\n"
            "conn = sqlite3.connect(sys.argv[1], isolation_level=None)\n"
            "conn.execute('PRAGMA busy_timeout=10000')\n"
            "conn.execute('BEGIN IMMEDIATE')\n"
            "now = time.time()\n"
            "conn.execute('INSERT INTO claims "
            "(job_id, owner, pid, claimed_at, last_seen) "
            "VALUES (?, ?, ?, ?, ?)', "
            "(sys.argv[2], 'doomed-worker', os.getpid(), now, now))\n"
            f"{commit}\n"
            "os._exit(0)\n"
        )
        subprocess.run([sys.executable, "-c", script,
                        str(store.path), job_id], check=True, timeout=30)

    def test_death_before_commit_leaves_job_cleanly_queued(self, store):
        record = store.submit(_job())
        self._crash_claimer(store, record.job_id, after_commit=False)
        # The open transaction died with the process: rolled back.
        assert store.claim_info(record.job_id) is None
        assert store.get(record.job_id).status == "queued"
        # Nothing is stranded half-claimed: the next worker wins cleanly.
        assert store.claim(record.job_id, owner="survivor") is True
        assert store.recover_stale_claims(max_age_seconds=3600) == []

    def test_death_after_commit_leaves_job_cleanly_claimed(self, store):
        record = store.submit(_job())
        self._crash_claimer(store, record.job_id, after_commit=True)
        # The commit landed: the job is claimed by the dead worker,
        # exactly as if it crashed a moment later — the normal stale
        # path recovers it once the claim goes silent.
        assert store.claim_info(record.job_id)["owner"] == "doomed-worker"
        assert store.claim(record.job_id, owner="survivor") is False
        with store._lock:
            store._conn.execute(
                "UPDATE claims SET last_seen = last_seen - 7200 WHERE job_id = ?",
                (record.job_id,),
            )
        assert store.recover_stale_claims(max_age_seconds=3600) == [record.job_id]
        assert store.get(record.job_id).status == "queued"
        assert store.claim(record.job_id, owner="survivor") is True


class TestCrossProcessExclusivity:
    def test_claims_from_other_processes_are_mutually_exclusive(self, store):
        # Eight subprocesses — real processes, not threads, so SQLite's
        # own locking is what serializes them — contend for one job.
        record = store.submit(_job())
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[3])\n"
            "from repro.service import SqliteJobStore\n"
            "store = SqliteJobStore(sys.argv[1])\n"
            "won = store.claim(sys.argv[2], owner=f'proc-{sys.argv[4]}')\n"
            "sys.exit(0 if won else 7)\n"
        )
        import repro

        src = str(Path(repro.__file__).parents[1])
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(store.path),
                              record.job_id, src, str(i)])
            for i in range(8)
        ]
        codes = [proc.wait(timeout=60) for proc in procs]
        assert codes.count(0) == 1
        assert codes.count(7) == 7
        assert store.claim_info(record.job_id)["owner"].startswith("proc-")


class TestTransactionalBatch:
    def test_racing_claim_batches_partition_exactly(self, store):
        for seed in range(12):
            store.submit(_job(seed))
        wins: dict[str, list[str]] = {}
        barrier = threading.Barrier(4)

        def contend(name: str) -> None:
            barrier.wait()
            batch: list[str] = []
            while True:
                won = store.claim_batch(owner=name, limit=2)
                if not won:
                    break
                batch.extend(r.job_id for r in won)
            wins[name] = batch

        threads = [threading.Thread(target=contend, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        all_wins = [job_id for batch in wins.values() for job_id in batch]
        assert len(all_wins) == len(set(all_wins)) == 12


class TestCheckpointBlobsInDatabase:
    def test_put_checkpoint_lands_in_table_and_file(self, store):
        store.put_checkpoint("job-x", {"generation": 5})
        with store._lock:
            (payload,) = store._conn.execute(
                "SELECT payload FROM checkpoints WHERE job_id = 'job-x'"
            ).fetchone()
        assert json.loads(payload) == {"generation": 5}
        assert json.loads(
            store.checkpoint_path("job-x").read_text(encoding="utf-8")
        ) == {"generation": 5}

    def test_winning_a_claim_restores_the_file_from_the_table(self, store):
        store.put_checkpoint("job-y", {"generation": 9})
        store.checkpoint_path("job-y").unlink()  # a fresh machine
        assert store.claim("job-y", owner="w") is True
        assert json.loads(
            store.checkpoint_path("job-y").read_text(encoding="utf-8")
        ) == {"generation": 9}

    def test_heartbeat_syncs_a_changed_file_into_the_table(self, store):
        store.claim("job-z", owner="w")
        store.checkpoint_path("job-z").write_text(
            json.dumps({"generation": 2}), encoding="utf-8"
        )
        assert store.heartbeat("job-z", owner="w") is True
        with store._lock:
            (payload,) = store._conn.execute(
                "SELECT payload FROM checkpoints WHERE job_id = 'job-z'"
            ).fetchone()
        assert json.loads(payload) == {"generation": 2}

    def test_release_syncs_the_final_checkpoint(self, store):
        store.claim("job-r", owner="w")
        store.checkpoint_path("job-r").write_text(
            json.dumps({"generation": 7}), encoding="utf-8"
        )
        assert store.release("job-r", owner="w") is True
        assert store.get_checkpoint("job-r") == {"generation": 7}


class TestWorkerFleet:
    def test_two_workers_partition_sqlite_queue_byte_identical_to_serial(
        self, store
    ):
        jobs = [_job(seed) for seed in (1, 2, 3, 4)]
        for job in jobs:
            store.submit(job)
        executed: dict[str, list[str]] = {"w1": [], "w2": []}
        errors: list[Exception] = []
        barrier = threading.Barrier(2)

        def drain(name: str) -> None:
            worker = Worker(SqliteJobStore(store.path), worker_id=name,
                            use_cache=False)
            barrier.wait()
            try:
                executed[name] = [out.job_id for out in worker.run_once()]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drain, args=(n,)) for n in executed]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert set(executed["w1"]).isdisjoint(executed["w2"])
        assert sorted(executed["w1"] + executed["w2"]) == sorted(
            job.job_id for job in jobs
        )
        serial = JobRunner(backend="serial").run(jobs)
        for job, expected in zip(jobs, serial):
            record = store.get(job.job_id)
            assert record.status == "completed"
            assert record.result.final_scores == expected.final_scores
            assert record.result.best_score == expected.best_score
        assert store.claimed_job_ids() == []


class TestStoreFromSpec:
    def test_sqlite_spec_opens_the_database(self, tmp_path):
        path = tmp_path / "fleet" / "jobs.sqlite"
        opened = store_from_spec(f"sqlite:{path}")
        assert isinstance(opened, SqliteJobStore)
        assert opened.path == path
        assert opened.spec == f"sqlite:{path}"

    def test_file_spec_and_bare_path_open_directories(self, tmp_path):
        prefixed = store_from_spec(f"file:{tmp_path / 'a'}")
        bare = store_from_spec(str(tmp_path / "b"))
        assert isinstance(prefixed, JobStore) and prefixed.root == tmp_path / "a"
        assert isinstance(bare, JobStore) and bare.root == tmp_path / "b"

    def test_empty_spec_uses_state_dir(self, tmp_path):
        opened = store_from_spec("", state_dir=tmp_path / "home")
        assert isinstance(opened, JobStore)
        assert opened.root == tmp_path / "home"

    def test_tilde_paths_expand_to_home(self, tmp_path, monkeypatch):
        # Shells do not tilde-expand after the colon, so `file:~/x`
        # arrives verbatim; opening a literal ./~ directory would make
        # a migration look successful while copying nothing.
        monkeypatch.setenv("HOME", str(tmp_path))
        assert store_from_spec("file:~/state").root == tmp_path / "state"
        assert store_from_spec(
            "sqlite:~/db/jobs.sqlite"
        ).path == tmp_path / "db" / "jobs.sqlite"

    def test_http_spec_builds_a_remote_client(self, tmp_path):
        opened = store_from_spec("http://127.0.0.1:9", token="t",
                                 state_dir=tmp_path / "spool")
        assert isinstance(opened, RemoteJobStore)
        assert opened.base_url == "http://127.0.0.1:9"
        assert opened.root == tmp_path / "spool"

    def test_every_spec_satisfies_the_protocol(self, tmp_path):
        for spec in (f"file:{tmp_path / 'f'}",
                     f"sqlite:{tmp_path / 'db' / 'jobs.sqlite'}",
                     "http://127.0.0.1:9"):
            opened = store_from_spec(spec, state_dir=tmp_path / "spool")
            for name in STORE_PROTOCOL:
                assert callable(getattr(opened, name)), (spec, name)


class TestMigration:
    def _populate(self, source) -> dict[str, str]:
        queued = source.submit(_job(1))
        failed = source.submit(_job(2))
        source.mark_failed(failed, "boom")
        running = source.submit(_job(3))
        source.mark_running(running)
        source.put_checkpoint(running.job_id, {"generation": 11})
        return {"queued": queued.job_id, "failed": failed.job_id,
                "running": running.job_id}

    def _assert_mirrored(self, source, target, ids) -> None:
        assert {r.job_id for r in target.records()} == set(ids.values())
        for record in source.records():
            mirrored = target.get(record.job_id)
            assert mirrored.status == record.status
            assert mirrored.submitted_at == record.submitted_at
            assert mirrored.error == record.error
        assert target.get_checkpoint(ids["running"]) == {"generation": 11}
        # Claims never migrate; the stranded running record is exactly
        # what the first recovery pass on the target repairs.
        assert target.claimed_job_ids() == []
        assert target.recover_stale_claims() == [ids["running"]]
        assert target.get(ids["running"]).status == "queued"

    def test_file_to_sqlite_roundtrip(self, tmp_path):
        source = JobStore(tmp_path / "dir")
        ids = self._populate(source)
        target = SqliteJobStore(tmp_path / "db" / "jobs.sqlite")
        counts = migrate_store(source, target)
        assert counts == {"records": 3, "checkpoints": 1, "traces": 0,
                          "migrants": 0}
        self._assert_mirrored(source, target, ids)

    def test_sqlite_to_file_roundtrip(self, tmp_path):
        source = SqliteJobStore(tmp_path / "db" / "jobs.sqlite")
        ids = self._populate(source)
        target = JobStore(tmp_path / "dir")
        counts = migrate_store(source, target)
        assert counts == {"records": 3, "checkpoints": 1, "traces": 0,
                          "migrants": 0}
        self._assert_mirrored(source, target, ids)


class TestSqliteStoreBasics:
    def test_unknown_job_error_names_the_database(self, store):
        with pytest.raises(ServiceError, match="unknown job"):
            store.get("nope")

    def test_reopening_sees_persisted_state(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        first = SqliteJobStore(path)
        record = first.submit(_job())
        first.claim(record.job_id, owner="w")
        first.close()
        second = SqliteJobStore(path)
        assert second.get(record.job_id).status == "queued"
        assert second.claim_info(record.job_id)["owner"] == "w"

    def test_wal_mode_is_active(self, store):
        with store._lock:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
