"""Unit tests for the synthetic paper datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PAPER_SPECS,
    AttributeSpec,
    SyntheticSpec,
    dataset_names,
    generate,
    load_dataset,
    protected_attributes,
)
from repro.exceptions import ExperimentError, SchemaError


class TestPaperSchemas:
    """The paper's §3 dataset descriptions, pinned exactly."""

    def test_dataset_names(self):
        assert dataset_names() == ("housing", "german", "flare", "adult")

    @pytest.mark.parametrize(
        "name,n_records,n_attributes",
        [("housing", 1000, 11), ("german", 1000, 13), ("flare", 1066, 13), ("adult", 1000, 8)],
    )
    def test_shapes(self, name, n_records, n_attributes):
        dataset = load_dataset(name)
        assert dataset.n_records == n_records
        assert dataset.n_attributes == n_attributes

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("housing", {"BUILT": 25, "DEGREE": 8, "GRADE1": 21}),
            ("german", {"EXISTACC": 5, "SAVINGS": 6, "PRESEMPLOY": 6}),
            ("flare", {"CLASS": 8, "LARGSPOT": 7, "SPOTDIST": 5}),
            ("adult", {"EDUCATION": 16, "MARITAL-STATUS": 7, "OCCUPATION": 14}),
        ],
    )
    def test_protected_attribute_cardinalities(self, name, expected):
        dataset = load_dataset(name)
        assert set(protected_attributes(name)) == set(expected)
        for attribute, cardinality in expected.items():
            assert dataset.domain(attribute).size == cardinality

    def test_deterministic(self):
        a = load_dataset("adult")
        b = load_dataset("adult")
        assert a.equals(b)

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError):
            load_dataset("nope")
        with pytest.raises(ExperimentError):
            protected_attributes("nope")

    @pytest.mark.parametrize("name", ["housing", "german", "flare", "adult"])
    def test_every_category_of_protected_attrs_plausible(self, name):
        # Protected attributes should have realistically skewed but not
        # degenerate marginals: at least 40% of categories observed.
        dataset = load_dataset(name)
        for attribute in protected_attributes(name):
            counts = dataset.value_counts(attribute)
            observed = (counts > 0).mean()
            assert observed >= 0.4, f"{name}.{attribute} uses only {observed:.0%} of categories"


class TestGenerator:
    def test_spec_validation_records(self):
        with pytest.raises(SchemaError):
            SyntheticSpec(name="x", n_records=0, attributes=(AttributeSpec("A", 2),))

    def test_spec_validation_duplicate_attrs(self):
        with pytest.raises(SchemaError):
            SyntheticSpec(
                name="x", n_records=1, attributes=(AttributeSpec("A", 2), AttributeSpec("A", 3))
            )

    def test_spec_validation_protected_subset(self):
        with pytest.raises(SchemaError):
            SyntheticSpec(
                name="x",
                n_records=1,
                attributes=(AttributeSpec("A", 2),),
                protected_attributes=("Z",),
            )

    def test_attribute_spec_labels_length(self):
        with pytest.raises(SchemaError):
            AttributeSpec("A", 3, labels=("one",))

    def test_custom_labels_used(self):
        spec = SyntheticSpec(
            name="x",
            n_records=10,
            attributes=(AttributeSpec("A", 2, labels=("no", "yes")),),
            seed=1,
        )
        assert generate(spec).domain("A").categories == ("no", "yes")

    def test_ordinal_attributes_unimodalish(self):
        # Ordinal class-conditional distributions should concentrate mass:
        # the top third of categories by frequency should hold most records.
        spec = SyntheticSpec(
            name="x",
            n_records=3000,
            attributes=(AttributeSpec("A", 9, ordinal=True),),
            n_latent_classes=1,
            seed=5,
        )
        counts = np.sort(generate(spec).value_counts("A"))[::-1]
        assert counts[:3].sum() > 0.5 * counts.sum()

    def test_latent_classes_induce_association(self):
        # With shared latent classes, two attributes should be measurably
        # associated (mutual information > 0 by a margin).
        spec = SyntheticSpec(
            name="x",
            n_records=4000,
            attributes=(AttributeSpec("A", 4), AttributeSpec("B", 4)),
            n_latent_classes=3,
            concentration=0.3,
            seed=9,
        )
        dataset = generate(spec)
        joint = np.zeros((4, 4))
        for a, b in zip(dataset.column("A"), dataset.column("B")):
            joint[a, b] += 1
        joint /= joint.sum()
        pa = joint.sum(axis=1, keepdims=True)
        pb = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(joint > 0, joint * np.log(joint / (pa * pb)), 0.0)
        mutual_information = terms.sum()
        assert mutual_information > 0.01

    def test_seed_changes_output(self):
        base = PAPER_SPECS["adult"]
        other = SyntheticSpec(
            name=base.name,
            n_records=base.n_records,
            attributes=base.attributes,
            n_latent_classes=base.n_latent_classes,
            seed=base.seed + 1,
            protected_attributes=base.protected_attributes,
        )
        assert not generate(base).equals(generate(other))
