"""Claim-file protocol: atomic exclusivity, races, and worker partitioning."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.service import JobStore, ProtectionJob, Worker


def _job(seed: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=1, seed=seed)


class TestClaimProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.claim("j1", owner="a") is True
        assert store.claim("j1", owner="b") is False
        store.release("j1")
        assert store.claim("j1", owner="b") is True

    def test_claim_info_records_owner(self, tmp_path):
        store = JobStore(tmp_path)
        store.claim("j1", owner="worker-7")
        info = store.claim_info("j1")
        assert info["owner"] == "worker-7"
        assert info["claimed_at"] > 0
        assert store.claim_info("unclaimed") is None

    def test_release_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        store.release("never-claimed")
        store.claim("j1")
        store.release("j1")
        store.release("j1")
        assert store.claimed_job_ids() == []

    def test_claimed_job_ids_lists_holders(self, tmp_path):
        store = JobStore(tmp_path)
        store.claim("b")
        store.claim("a")
        assert store.claimed_job_ids() == ["a", "b"]

    def test_racing_claims_have_one_winner(self, tmp_path):
        store = JobStore(tmp_path)
        winners = []
        barrier = threading.Barrier(8)

        def contend(worker: int) -> None:
            barrier.wait()
            if store.claim("contested", owner=str(worker)):
                winners.append(worker)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestRandomizedClaimRace:
    """Seeded fuzz of the claim race, against both store backends.

    N threads contend for one queue of claims, each visiting the jobs in
    its own RNG-derived order with RNG-derived pauses — a different
    interleaving per seed, reproducible for any given seed.  Whatever
    the interleaving, the invariant is total partition: every job
    claimed exactly once, none lost, none double-claimed.
    """

    SEED = 0xC1A17

    def test_threads_partition_queue_without_double_claims(self, store_harness):
        store = store_harness.store
        rng = random.Random(self.SEED)
        job_ids = [f"job-{i:02d}" for i in range(24)]
        n_threads = 6
        orders = [rng.sample(job_ids, len(job_ids)) for _ in range(n_threads)]
        pauses = [[rng.uniform(0, 0.002) for _ in job_ids] for _ in range(n_threads)]
        wins: list[list[str]] = [[] for _ in range(n_threads)]
        errors: list[Exception] = []
        barrier = threading.Barrier(n_threads)

        def contend(slot: int) -> None:
            barrier.wait()
            try:
                for job_id, pause in zip(orders[slot], pauses[slot]):
                    if store.claim(job_id, owner=f"w{slot}"):
                        wins[slot].append(job_id)
                    time.sleep(pause)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        all_wins = [job_id for slot in wins for job_id in slot]
        # No double-claims, and no lost jobs: an exact partition.
        assert len(all_wins) == len(set(all_wins))
        assert sorted(all_wins) == sorted(job_ids)
        # Each claim on disk names the thread that won it.
        for slot, won in enumerate(wins):
            for job_id in won:
                assert store_harness.backing.claim_info(job_id)["owner"] == f"w{slot}"


@pytest.mark.stress
class TestClaimRaceStress:
    """The nightly-scale claim-race battery (deselected by default).

    Same invariant as :class:`TestRandomizedClaimRace` — exact
    partition, no double-claims, no lost jobs — but at fleet scale and
    with mixed claim styles: half the contenders walk the queue with
    single ``claim()`` calls in RNG-derived orders, the other half pull
    ``claim_batch`` capacity batches, against every store backend.
    Gated behind ``-m stress`` (CI runs it on the nightly schedule).
    """

    SEED = 0x57E55
    N_JOBS = 120
    N_THREADS = 12

    def test_mixed_claimers_partition_large_queue(self, store_harness):
        store = store_harness.store
        rng = random.Random(self.SEED)
        records = [
            store.submit(ProtectionJob(dataset="adult", generations=1, seed=seed))
            for seed in range(self.N_JOBS)
        ]
        job_ids = [record.job_id for record in records]
        orders = [rng.sample(job_ids, len(job_ids))
                  for _ in range(self.N_THREADS)]
        pauses = [[rng.uniform(0, 0.001) for _ in range(8)]
                  for _ in range(self.N_THREADS)]
        wins: list[list[str]] = [[] for _ in range(self.N_THREADS)]
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_THREADS)

        def claim_one_by_one(slot: int) -> None:
            for i, job_id in enumerate(orders[slot]):
                if store.claim(job_id, owner=f"w{slot}"):
                    wins[slot].append(job_id)
                time.sleep(pauses[slot][i % len(pauses[slot])])

        def claim_in_batches(slot: int) -> None:
            while True:
                batch = store.claim_batch(owner=f"w{slot}", limit=5)
                if not batch:
                    return
                wins[slot].extend(record.job_id for record in batch)
                time.sleep(pauses[slot][len(wins[slot]) % len(pauses[slot])])

        def contend(slot: int) -> None:
            barrier.wait()
            try:
                if slot % 2:
                    claim_in_batches(slot)
                else:
                    claim_one_by_one(slot)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        all_wins = [job_id for slot in wins for job_id in slot]
        assert len(all_wins) == len(set(all_wins))
        assert sorted(all_wins) == sorted(job_ids)
        for slot, won in enumerate(wins):
            for job_id in won:
                info = store_harness.backing.claim_info(job_id)
                assert info["owner"] == f"w{slot}"


class TestConcurrentWorkers:
    def test_two_workers_partition_one_queue(self, tmp_path):
        # The acceptance invariant: two workers draining a shared state
        # directory never execute the same job, and together they drain
        # the whole queue.
        store = JobStore(tmp_path)
        jobs = [_job(seed) for seed in (1, 2, 3, 4)]
        for job in jobs:
            store.submit(job)

        executed: dict[str, list[str]] = {"w1": [], "w2": []}
        barrier = threading.Barrier(2)

        def drain(name: str) -> None:
            worker = Worker(JobStore(tmp_path), worker_id=name)
            barrier.wait()
            executed[name] = [out.job_id for out in worker.run_once()]

        threads = [threading.Thread(target=drain, args=(n,)) for n in executed]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert set(executed["w1"]).isdisjoint(executed["w2"])
        assert sorted(executed["w1"] + executed["w2"]) == sorted(j.job_id for j in jobs)
        for job in jobs:
            assert store.get(job.job_id).status == "completed"
        assert store.claimed_job_ids() == []
