"""Claim-file protocol: atomic exclusivity, races, and worker partitioning."""

from __future__ import annotations

import threading

from repro.service import JobStore, ProtectionJob, Worker


def _job(seed: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=1, seed=seed)


class TestClaimProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.claim("j1", owner="a") is True
        assert store.claim("j1", owner="b") is False
        store.release("j1")
        assert store.claim("j1", owner="b") is True

    def test_claim_info_records_owner(self, tmp_path):
        store = JobStore(tmp_path)
        store.claim("j1", owner="worker-7")
        info = store.claim_info("j1")
        assert info["owner"] == "worker-7"
        assert info["claimed_at"] > 0
        assert store.claim_info("unclaimed") is None

    def test_release_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        store.release("never-claimed")
        store.claim("j1")
        store.release("j1")
        store.release("j1")
        assert store.claimed_job_ids() == []

    def test_claimed_job_ids_lists_holders(self, tmp_path):
        store = JobStore(tmp_path)
        store.claim("b")
        store.claim("a")
        assert store.claimed_job_ids() == ["a", "b"]

    def test_racing_claims_have_one_winner(self, tmp_path):
        store = JobStore(tmp_path)
        winners = []
        barrier = threading.Barrier(8)

        def contend(worker: int) -> None:
            barrier.wait()
            if store.claim("contested", owner=str(worker)):
                winners.append(worker)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestConcurrentWorkers:
    def test_two_workers_partition_one_queue(self, tmp_path):
        # The acceptance invariant: two workers draining a shared state
        # directory never execute the same job, and together they drain
        # the whole queue.
        store = JobStore(tmp_path)
        jobs = [_job(seed) for seed in (1, 2, 3, 4)]
        for job in jobs:
            store.submit(job)

        executed: dict[str, list[str]] = {"w1": [], "w2": []}
        barrier = threading.Barrier(2)

        def drain(name: str) -> None:
            worker = Worker(JobStore(tmp_path), worker_id=name)
            barrier.wait()
            executed[name] = [out.job_id for out in worker.run_once()]

        threads = [threading.Thread(target=drain, args=(n,)) for n in executed]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert set(executed["w1"]).isdisjoint(executed["w2"])
        assert sorted(executed["w1"] + executed["w2"]) == sorted(j.job_id for j in jobs)
        for job in jobs:
            assert store.get(job.job_id).status == "completed"
        assert store.claimed_job_ids() == []
